#!/usr/bin/env python
"""Run the benchmark suite and record the engine perf trajectory.

Ten stages:

1. (optional) the repo's experiment regenerators at ``REPRO_BENCH_SCALE``
   (default ``tiny`` - a smoke pass over every ``benchmarks/bench_*.py``);
2. a chunked-vs-pure-Python engine comparison on the E9 BA-family sweep,
   asserting seed-for-seed identical estimates while timing both engines;
3. a sharded-vs-serial comparison of the pass executor: the E9 sweep's
   largest sizes end to end plus a synthetic single-pass degree scan,
   serial chunked against a worker pool (results asserted identical);
4. a fused-vs-per-plan comparison of the sweep engine at matched worker
   count: identical estimates asserted, strictly fewer physical tape
   sweeps asserted, wall-clock speedup recorded;
5. a sequential-vs-speculative comparison of the guessing-loop driver on
   full multi-round estimates: bit-identical estimates and trajectories
   asserted, the speculative run's physical sweeps (committed + wasted)
   asserted to never exceed - and on multi-round estimates to beat - the
   sequential sweep count, wall-clock speedup recorded;
6. a speculation *depth* sweep on a file-backed multi-round workload:
   physical sweeps and wall clock at depths 1 (sequential), 2, 3, and 4,
   bit-identity asserted at every depth and deeper windows asserted to
   never perform more sweeps than the depth-2 pair driver;
7. a fault-recovery overhead measurement: the canonical sharded
   multi-round estimate run clean and again with the deterministic fault
   harness crashing a worker on each of the first few sweeps -
   bit-identical results and an unchanged physical sweep count asserted
   (recovery retries tasks, it never re-sweeps the tape), the wall-clock
   overhead of the pool respawns recorded;
8. a text-vs-binary tape format comparison: the canonical file-backed
   workload read as a text edge list and as its ``.etape`` conversion
   (mmap zero-copy ingest) - raw sweep throughput (edges/sec) measured
   for both formats, then full multi-round estimates timed end to end
   with bit-identical results asserted (the storage format must be
   invisible to the sampling layer);
9. a durable-snapshot overhead measurement: the canonical file-backed
   workload run clean, run again with round-boundary ``.esnap``
   snapshots enabled (atomic tmp + fsync + rename per committed round),
   and resumed from a mid-run snapshot - all three asserted
   bit-identical (estimate, trajectory, logical passes), with the
   snapshotting wall overhead recorded;
10. a serve-throughput measurement: several concurrent estimate requests
   for the same tape (distinct seeds) served by one ``repro serve``
   daemon over its unix socket, each response asserted bit-identical to
   its solo run (estimate, pass/sweep totals, root-RNG digest) and the
   tape's physical sweep count asserted strictly under the solo runs'
   sum - the cross-job sweep-sharing payoff, measured deterministically.

The results are *appended* to ``BENCH_engine.json`` at the repo root (a
JSON array, one record per run), so successive PRs accumulate the speedup
trajectory instead of overwriting it.  The history file is written
atomically (tmp + fsync + rename, the same helper the snapshot layer
uses) so a crash mid-append can never truncate it; if a previous crash
*did* leave it unreadable, the corrupt file is backed up alongside and
the history restarts rather than aborting the run.

``--smoke`` is the CI regression gate: it reruns stages 2-10 at tiny scale,
appends nothing, and exits non-zero if the measured chunked speedup (or
the sharded speedup, when the box has the cores for it) regressed to
below half of the last committed ``BENCH_engine.json`` entry, if the
fused engine came out slower than the unfused sharded engine on the same
sweep, if the speculative driver's multi-round physical sweep count
failed to come in under the sequential driver's, if depth-3 windows
performed more physical sweeps than depth-2 pairs on the canonical
workload, if recovering from injected worker crashes cost more than
2x the clean run's physical sweeps, or if the mmap tape's raw sweep
throughput fell below the text parser's, or if round-boundary
snapshotting failed resume parity or cost more than 2x the clean wall
clock, or if concurrently-served same-tape jobs failed to come in under
the solo runs' summed sweep count - wired into the tier-1 flow as an
opt-in pytest
(``tests/test_bench_smoke.py``, ``REPRO_SMOKE=1``).

Usage::

    python scripts/run_bench_suite.py             # tiny benchmarks + engine compare
    python scripts/run_bench_suite.py --scale small
    python scripts/run_bench_suite.py --skip-pytest   # engine compare only
    python scripts/run_bench_suite.py --smoke         # regression gate, no append
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import __version__  # noqa: E402
from repro.core import engine_overrides  # noqa: E402
from repro.core.engine import HAVE_NUMPY  # noqa: E402
from repro.core.estimator import run_single_estimate  # noqa: E402
from repro.core.params import ParameterPlan  # noqa: E402
from repro.generators import barabasi_albert_graph  # noqa: E402
from repro.graph import count_triangles  # noqa: E402
from repro.streams import InMemoryEdgeStream  # noqa: E402
from repro.streams.transforms import shuffled  # noqa: E402


def _bench_sizes() -> dict:
    """The E9 size table, loaded from the benchmark itself (single source)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_passes_runtime", REPO / "benchmarks" / "bench_passes_runtime.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SIZES


ENGINE_SIZES = _bench_sizes()

#: Synthetic tape length for the sharded single-pass scan benchmark.
SCAN_EDGES = {"tiny": 200_000, "small": 600_000, "medium": 2_000_000}


def run_pytest_benchmarks(scale: str) -> dict:
    """Run the experiment regenerators; return a summary dict."""
    env = dict(os.environ, REPRO_BENCH_SCALE=scale)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"[bench-suite] pytest benchmarks ({scale}): {tail} in {elapsed:.1f}s")
    return {
        "scale": scale,
        "returncode": proc.returncode,
        "summary": tail,
        "seconds": round(elapsed, 3),
    }


def _e9_instance(n: int):
    graph = barabasi_albert_graph(n, 5, random.Random(1))
    t = count_triangles(graph)
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
    plan = ParameterPlan.build(
        graph.num_vertices, graph.num_edges, 5, float(max(1, t)), 0.25
    )
    return graph, t, stream, plan


def run_engine_comparison(scale: str, repeats: int = 3) -> dict:
    """Time both engines on the E9 sweep; identical results are asserted."""
    rows = []
    totals = {"python": 0.0, "chunked": 0.0}
    for n in ENGINE_SIZES[scale]:
        graph, t, stream, plan = _e9_instance(n)
        times = {}
        results = {}
        for mode in ("python", "chunked") if HAVE_NUMPY else ("python",):
            # Pin workers=1: a REPRO_WORKERS environment must not silently
            # turn the serial-chunked baseline into a sharded run.
            with engine_overrides(mode, None, 1):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    results[mode] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            times[mode] = best
            totals[mode] += best
        if HAVE_NUMPY:
            assert results["python"] == results["chunked"], "engine parity violated"
        speedup = times["python"] / times["chunked"] if HAVE_NUMPY else None
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "triangles": t,
                "python_sec": round(times["python"], 5),
                "chunked_sec": round(times.get("chunked", float("nan")), 5) if HAVE_NUMPY else None,
                "speedup": round(speedup, 2) if speedup else None,
            }
        )
        print(f"[bench-suite] n={n}: {rows[-1]}")
    total_speedup = (
        round(totals["python"] / totals["chunked"], 2) if HAVE_NUMPY and totals["chunked"] else None
    )
    print(f"[bench-suite] engine sweep total speedup: {total_speedup}x")
    return {
        "scale": scale,
        "have_numpy": HAVE_NUMPY,
        "rows": rows,
        "total_python_sec": round(totals["python"], 4),
        "total_chunked_sec": round(totals["chunked"], 4) if HAVE_NUMPY else None,
        "total_speedup": total_speedup,
    }


def _sharded_scan_bench(scale: str, workers: int, repeats: int = 3) -> dict:
    """One heavy degree-count pass, serial vs sharded (results asserted equal).

    This isolates the executor itself: a synthetic tape long enough that
    per-chunk kernel work dominates, scanned by the pass-2 plan with a
    large tracked-id table.
    """
    import numpy as np

    from repro.core.executor import run_plan
    from repro.core.kernels import DegreeCountPlan
    from repro.streams.multipass import PassScheduler

    m = SCAN_EDGES[scale]
    rng = np.random.default_rng(0)
    raw = rng.integers(0, 1 << 20, size=(m, 2), dtype=np.int64)
    raw[:, 1] += 1 + raw[:, 0]  # u < v, no self-loops
    stream = InMemoryEdgeStream([tuple(row) for row in raw.tolist()], validate=False)
    tracked = np.unique(rng.integers(0, 1 << 20, size=50_000, dtype=np.int64))

    times = {}
    results = {}
    for label, w in (("serial", 1), ("sharded", workers)):
        best = float("inf")
        for _ in range(repeats):
            scheduler = PassScheduler(stream)
            start = time.perf_counter()
            results[label] = run_plan(
                scheduler, DegreeCountPlan(tracked), chunk_size=65536, workers=w
            )
            best = min(best, time.perf_counter() - start)
        times[label] = best
    assert results["serial"].tolist() == results["sharded"].tolist(), "shard merge parity violated"
    return {
        "edges": m,
        "tracked_ids": int(len(tracked)),
        "serial_sec": round(times["serial"], 5),
        "sharded_sec": round(times["sharded"], 5),
        "speedup": round(times["serial"] / times["sharded"], 2),
    }


def run_sharded_comparison(scale: str, repeats: int = 3) -> dict:
    """Serial-chunked vs sharded executor: E9 end-to-end plus a scan bench."""
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    # Always exercise a real pool (>= 2 workers), even on a single-core box
    # where that can only show overhead - the recorded cpu_count says which
    # regime the numbers came from, and the smoke gate only arms the
    # sharded regression check on multi-core machines.
    workers = max(2, min(4, os.cpu_count() or 1))
    rows = []
    totals = {"serial": 0.0, "sharded": 0.0}
    for n in ENGINE_SIZES[scale][-2:]:  # the two largest sweep sizes
        graph, t, stream, plan = _e9_instance(n)
        times = {}
        results = {}
        for label, w in (("serial", 1), ("sharded", workers)):
            with engine_overrides("chunked", None, w):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    results[label] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            times[label] = best
            totals[label] += best
        assert results["serial"] == results["sharded"], "sharded parity violated"
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "serial_sec": round(times["serial"], 5),
                "sharded_sec": round(times["sharded"], 5),
                "speedup": round(times["serial"] / times["sharded"], 2),
            }
        )
        print(f"[bench-suite] sharded n={n}: {rows[-1]}")
    scan = _sharded_scan_bench(scale, workers, repeats)
    print(f"[bench-suite] sharded scan bench: {scan}")
    return {
        "scale": scale,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "total_serial_sec": round(totals["serial"], 4),
        "total_sharded_sec": round(totals["sharded"], 4),
        "total_speedup": round(totals["serial"] / totals["sharded"], 2),
        "scan": scan,
    }


def run_fused_comparison(scale: str, repeats: int = 3) -> dict:
    """Unfused vs fused sweep engine at matched worker count (E9 sweep).

    Both columns run the sharded executor; the fused column additionally
    groups each round's independent pass plans (closure watch + assignment
    incident collection) into shared tape sweeps.  Estimates are asserted
    bit-identical and the fused runs are asserted to perform strictly
    fewer physical sweeps; the speedup is per-plan (unfused) time over
    fused time, so >= 1.0 means fusing paid for its bookkeeping.
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    workers = max(2, min(4, os.cpu_count() or 1))
    rows = []
    totals = {"per_plan": 0.0, "fused": 0.0}
    sweep_counts = {}
    for n in ENGINE_SIZES[scale][-2:]:  # the two largest sweep sizes
        graph, t, stream, plan = _e9_instance(n)
        times = {}
        results = {}
        for label, fused in (("per_plan", False), ("fused", True)):
            with engine_overrides("chunked", None, workers, fused):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    results[label] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            times[label] = best
            totals[label] += best
        assert results["per_plan"].estimate == results["fused"].estimate, (
            "fused parity violated"
        )
        assert results["fused"].sweeps_used <= results["per_plan"].sweeps_used, (
            "fused mode increased stream sweeps"
        )
        if results["fused"].distinct_candidate_triangles:
            # Rounds that find candidate triangles are where the fused
            # pass-4/5 group saves its sweep; candidate-free runs tie.
            assert results["fused"].sweeps_used < results["per_plan"].sweeps_used, (
                "fused mode did not reduce stream sweeps"
            )
        sweep_counts = {
            "per_plan": results["per_plan"].sweeps_used,
            "fused": results["fused"].sweeps_used,
        }
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "per_plan_sec": round(times["per_plan"], 5),
                "fused_sec": round(times["fused"], 5),
                "speedup": round(times["per_plan"] / times["fused"], 2),
                "sweeps_per_plan": results["per_plan"].sweeps_used,
                "sweeps_fused": results["fused"].sweeps_used,
            }
        )
        print(f"[bench-suite] fused n={n}: {rows[-1]}")
    return {
        "scale": scale,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "sweeps": sweep_counts,
        "total_per_plan_sec": round(totals["per_plan"], 4),
        "total_fused_sec": round(totals["fused"], 4),
        "total_speedup": round(totals["per_plan"] / totals["fused"], 2),
    }


def run_speculative_comparison(scale: str, repeats: int = 3) -> dict:
    """Sequential vs speculative guessing loop on multi-round estimates.

    Both columns run the full unknown-``T`` driver (no ``t_hint``), so the
    geometric guessing loop walks several rounds before accepting - the
    regime round-pair speculation was built for.  The tape is a
    **file-backed** stream: every sweep re-parses the edge list, so the
    sweep count is what wall-clock time is made of (an in-memory tape at
    tiny scale measures only bookkeeping).  Estimates, trajectories, and
    logical-pass totals are asserted bit-identical; the speculative run's
    *physical* sweeps (committed + wasted) are asserted to never exceed
    the sequential run's, and to be strictly fewer whenever the estimate
    took more than one round.
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import tempfile

    from repro.core.driver import EstimatorConfig, TriangleCountEstimator
    from repro.io import write_edgelist
    from repro.streams.file import FileEdgeStream

    rows = []
    totals = {"sequential": 0.0, "speculative": 0.0}
    sweep_counts = {}
    for n in ENGINE_SIZES[scale][-2:]:  # the two largest sweep sizes
        graph, t, _memory_stream, plan = _e9_instance(n)
        handle = tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False)
        handle.close()
        write_edgelist(graph, handle.name)
        stream = FileEdgeStream(handle.name)
        times = {}
        results = {}
        for label, speculate in (("sequential", False), ("speculative", True)):
            config = EstimatorConfig(
                seed=3,
                repetitions=3,
                engine_mode="chunked",
                workers=1,
                fuse=True,
                speculate=speculate,
            )
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results[label] = TriangleCountEstimator(config).estimate(
                    stream, kappa=5
                )
                best = min(best, time.perf_counter() - start)
            times[label] = best
            totals[label] += best
        sequential, speculative = results["sequential"], results["speculative"]
        assert sequential.estimate == speculative.estimate, "speculative parity violated"
        assert [
            (r.t_guess, r.median_estimate, r.accepted) for r in sequential.rounds
        ] == [
            (r.t_guess, r.median_estimate, r.accepted) for r in speculative.rounds
        ], "speculative trajectory drifted"
        assert sequential.passes_total == speculative.passes_total, (
            "speculation changed the logical-pass total"
        )
        physical = speculative.sweeps_total + speculative.sweeps_wasted
        assert physical <= sequential.sweeps_total, (
            "speculative driver performed more sweeps than sequential"
        )
        if len(sequential.rounds) > 1:
            assert physical < sequential.sweeps_total, (
                "speculation failed to reduce sweeps on a multi-round estimate"
            )
        sweep_counts = {
            "sequential": sequential.sweeps_total,
            "speculative_committed": speculative.sweeps_total,
            "speculative_wasted": speculative.sweeps_wasted,
            "speculative_physical": physical,
        }
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "rounds": len(sequential.rounds),
                "sequential_sec": round(times["sequential"], 5),
                "speculative_sec": round(times["speculative"], 5),
                "speedup": round(times["sequential"] / times["speculative"], 2),
                **sweep_counts,
            }
        )
        print(f"[bench-suite] speculative n={n}: {rows[-1]}")
        os.unlink(handle.name)
    return {
        "scale": scale,
        "workers": 1,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "sweeps": sweep_counts,
        "total_sequential_sec": round(totals["sequential"], 4),
        "total_speculative_sec": round(totals["speculative"], 4),
        "total_speedup": round(totals["sequential"] / totals["speculative"], 2),
    }


def run_speculative_depth_sweep(scale: str, repeats: int = 3) -> dict:
    """Physical sweeps and wall clock as a function of speculation depth.

    One canonical multi-round workload - the E9 sweep's largest size,
    written to disk so every sweep re-parses the tape - estimated by the
    sequential driver (depth 1) and by speculative windows of depth 2, 3,
    and 4.  Estimates, trajectories, and logical-pass totals are asserted
    bit-identical at every depth, and no deeper window may perform more
    physical sweeps (committed + wasted) than the depth-2 pair driver.
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import tempfile

    from repro.core.driver import EstimatorConfig, TriangleCountEstimator
    from repro.io import write_edgelist
    from repro.streams.file import FileEdgeStream

    n = ENGINE_SIZES[scale][-1]
    graph, t, _memory_stream, _plan = _e9_instance(n)
    handle = tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False)
    handle.close()
    write_edgelist(graph, handle.name)
    stream = FileEdgeStream(handle.name)
    rows = []
    results = {}
    try:
        for depth in (1, 2, 3, 4):
            config = EstimatorConfig(
                seed=3,
                repetitions=3,
                engine_mode="chunked",
                workers=1,
                fuse=True,
                speculate=depth > 1,
                speculate_depth=max(2, depth),
            )
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results[depth] = TriangleCountEstimator(config).estimate(
                    stream, kappa=5
                )
                best = min(best, time.perf_counter() - start)
            result = results[depth]
            baseline = results[1]
            assert result.estimate == baseline.estimate, "depth parity violated"
            assert [
                (r.t_guess, r.median_estimate, r.accepted) for r in result.rounds
            ] == [
                (r.t_guess, r.median_estimate, r.accepted) for r in baseline.rounds
            ], "depth sweep trajectory drifted"
            assert result.passes_total == baseline.passes_total, (
                "speculation depth changed the logical-pass total"
            )
            rows.append(
                {
                    "depth": depth,
                    "n": n,
                    "m": graph.num_edges,
                    "rounds": len(result.rounds),
                    "committed": result.sweeps_total,
                    "wasted": result.sweeps_wasted,
                    "physical": result.sweeps_total + result.sweeps_wasted,
                    "sec": round(best, 5),
                }
            )
            rows[-1]["speedup_vs_sequential"] = round(rows[0]["sec"] / best, 2)
            print(f"[bench-suite] depth {depth}: {rows[-1]}")
        by_depth = {row["depth"]: row for row in rows}
        for depth in (3, 4):
            assert by_depth[depth]["physical"] <= by_depth[2]["physical"], (
                f"depth-{depth} windows performed more sweeps than depth-2 pairs"
            )
        assert by_depth[2]["physical"] <= by_depth[1]["physical"], (
            "pair speculation performed more sweeps than sequential"
        )
    finally:
        os.unlink(handle.name)
    return {
        "scale": scale,
        "workers": 1,
        "cpu_count": os.cpu_count(),
        "rows": rows,
        "total_speedup": rows[-1]["speedup_vs_sequential"] if rows else None,
    }


def run_fault_recovery(scale: str, repeats: int = 3) -> dict:
    """Recovery overhead: a clean sharded run vs one worker crash per sweep.

    The canonical multi-round workload (file-backed, fused, workers=2) is
    estimated twice: once clean, once with the fault harness crashing a
    worker on each of the first few sweeps (every sweep at tiny scale is
    a single pool task, so ``worker.crash@k`` kills sweep ``k``'s first
    attempt; the cap keeps the pool-respawn bill bounded on slow boxes).
    Estimates, trajectories, and logical-pass totals are asserted
    bit-identical, and no degradation may be recorded - this measures
    *recovery*, not the ladder.  The wall-clock overhead is dominated by
    pool respawns; the sweep counts show recovery costs no extra tape
    traversals beyond the retried rounds' waste (gated at <= 2x clean).
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import tempfile

    from repro.core.driver import EstimatorConfig, TriangleCountEstimator
    from repro.io import write_edgelist
    from repro.streams.file import FileEdgeStream

    n = ENGINE_SIZES[scale][-1]
    graph, t, _memory_stream, _plan = _e9_instance(n)
    handle = tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False)
    handle.close()
    write_edgelist(graph, handle.name)
    stream = FileEdgeStream(handle.name)
    stream.stats()  # prime the cache so both columns pay the same passes
    base = dict(
        seed=3, repetitions=3, engine_mode="sharded", workers=2, fuse=True
    )
    try:
        clean_config = EstimatorConfig(**base)
        clean_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            clean = TriangleCountEstimator(clean_config).estimate(stream, kappa=5)
            clean_best = min(clean_best, time.perf_counter() - start)
        clean_physical = clean.sweeps_total + clean.sweeps_wasted
        crashes = min(clean_physical, 4)
        spec = "worker.crash@" + ",".join(str(i) for i in range(crashes))
        faulted_config = EstimatorConfig(**base, faults=spec)
        start = time.perf_counter()
        faulted = TriangleCountEstimator(faulted_config).estimate(stream, kappa=5)
        faulted_sec = time.perf_counter() - start
        assert faulted.estimate == clean.estimate, "recovery parity violated"
        assert [
            (r.t_guess, r.median_estimate, r.accepted) for r in faulted.rounds
        ] == [
            (r.t_guess, r.median_estimate, r.accepted) for r in clean.rounds
        ], "recovery trajectory drifted"
        assert faulted.passes_total == clean.passes_total, (
            "recovery changed the logical-pass total"
        )
        assert not faulted.degradations, (
            f"recovery run degraded a tier: {faulted.degradations}"
        )
        faulted_physical = faulted.sweeps_total + faulted.sweeps_wasted
        row = {
            "n": n,
            "m": graph.num_edges,
            "rounds": len(clean.rounds),
            "crashes_injected": crashes,
            "clean_sec": round(clean_best, 5),
            "faulted_sec": round(faulted_sec, 5),
            "overhead_x": round(faulted_sec / clean_best, 2) if clean_best else None,
            "clean_sweeps": clean_physical,
            "faulted_sweeps": faulted_physical,
        }
        print(f"[bench-suite] fault recovery: {row}")
    finally:
        os.unlink(handle.name)
    return {
        "scale": scale,
        "workers": 2,
        "cpu_count": os.cpu_count(),
        "rows": [row],
        "recovered_identical": True,
    }


def run_tape_format_comparison(scale: str, repeats: int = 3) -> dict:
    """Text edge list vs binary ``.etape`` tape on the canonical workload.

    The E9 sweep's largest size is written to disk twice - once as the
    text format every sweep re-parses, once converted to the packed
    binary tape the mmap stream slices zero-copy - and measured two ways:

    * **raw sweep throughput**: one full chunked pass over each format
      (every chunk's column sums reduced, so mapped pages are actually
      touched), reported as edges/sec;
    * **end-to-end estimates**: the full multi-round driver on each
      format, asserted bit-identical (estimate, trajectory, logical
      passes) - the storage format must be invisible to the sampling
      layer - with the wall-clock speedup recorded.
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import tempfile

    import numpy as np

    from repro.core.driver import EstimatorConfig, TriangleCountEstimator
    from repro.io import write_edgelist
    from repro.streams.file import FileEdgeStream
    from repro.streams.tape import MmapEdgeStream, write_tape

    n = ENGINE_SIZES[scale][-1]
    graph, t, _memory_stream, _plan = _e9_instance(n)
    handle = tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False)
    handle.close()
    tape_path = handle.name + ".etape"
    write_edgelist(graph, handle.name)
    try:
        write_tape(handle.name, tape_path)
        streams = {
            "text": FileEdgeStream(handle.name),
            "mmap": MmapEdgeStream(tape_path),
        }
        streams["text"].stats()  # prime: the stats sweep is not under test

        def sweep_once(stream):
            total = np.int64(0)
            edges = 0
            for chunk in stream.iter_chunks(65536):
                total += chunk.sum()  # touch every mapped page
                edges += len(chunk)
            return edges, total

        sweep = {}
        checks = {}
        for label, stream in streams.items():
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                edges, total = sweep_once(stream)
                best = min(best, time.perf_counter() - start)
            sweep[label] = {
                "sec": round(best, 5),
                "edges": edges,
                "edges_per_sec": round(edges / best),
            }
            checks[label] = (edges, int(total))
        assert checks["text"] == checks["mmap"], "formats swept different tapes"

        config = EstimatorConfig(
            seed=3, repetitions=3, engine_mode="chunked", workers=1, fuse=True
        )
        times = {}
        results = {}
        for label, stream in streams.items():
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                results[label] = TriangleCountEstimator(config).estimate(
                    stream, kappa=5
                )
                best = min(best, time.perf_counter() - start)
            times[label] = best
        text_result, mmap_result = results["text"], results["mmap"]
        assert mmap_result.estimate == text_result.estimate, "format parity violated"
        assert [
            (r.t_guess, r.median_estimate, r.accepted) for r in mmap_result.rounds
        ] == [
            (r.t_guess, r.median_estimate, r.accepted) for r in text_result.rounds
        ], "format trajectory drifted"
        assert mmap_result.passes_total == text_result.passes_total, (
            "storage format changed the logical-pass total"
        )
        row = {
            "n": n,
            "m": graph.num_edges,
            "rounds": len(text_result.rounds),
            "text_sweep_eps": sweep["text"]["edges_per_sec"],
            "mmap_sweep_eps": sweep["mmap"]["edges_per_sec"],
            "sweep_speedup": round(sweep["text"]["sec"] / sweep["mmap"]["sec"], 2),
            "text_estimate_sec": round(times["text"], 5),
            "mmap_estimate_sec": round(times["mmap"], 5),
            "estimate_speedup": round(times["text"] / times["mmap"], 2),
        }
        print(f"[bench-suite] tape format: {row}")
    finally:
        os.unlink(handle.name)
        if os.path.exists(tape_path):
            os.unlink(tape_path)
    return {
        "scale": scale,
        "workers": 1,
        "cpu_count": os.cpu_count(),
        "rows": [row],
        "sweep": sweep,
        "total_speedup": row["estimate_speedup"],
    }


def run_snapshot_overhead(scale: str, repeats: int = 3) -> dict:
    """Durable-snapshot overhead and kill-at-round-k resume parity.

    The canonical multi-round workload (file-backed, sharded workers=2,
    fused, speculation depth 3) is estimated three ways:

    * **clean**: no checkpoint dir - the baseline wall clock;
    * **snapshotted**: a checkpoint dir configured, an atomic ``.esnap``
      snapshot (tmp + fsync + rename) after every committed round -
      asserted bit-identical to the clean run (snapshotting must be
      invisible to the trajectory), wall overhead recorded;
    * **resumed**: the run restarted from a *mid-run* snapshot - exactly
      what a crash at that round boundary leaves behind - asserted
      bit-identical to the clean run (estimate, trajectory, logical-pass
      total; the kill -9 subprocess variant is pinned in
      ``tests/test_snapshot.py``).
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import shutil
    import tempfile

    from repro.core.driver import EstimatorConfig, TriangleCountEstimator, resume_from
    from repro.io import write_edgelist
    from repro.streams.file import FileEdgeStream

    n = ENGINE_SIZES[scale][-1]
    graph, t, _memory_stream, _plan = _e9_instance(n)
    handle = tempfile.NamedTemporaryFile("w", suffix=".edges", delete=False)
    handle.close()
    write_edgelist(graph, handle.name)
    stream = FileEdgeStream(handle.name)
    stream.stats()  # prime the cache so all columns pay the same passes
    checkpoint_dir = tempfile.mkdtemp(prefix="esnap-bench-")
    base = dict(
        seed=3,
        repetitions=3,
        engine_mode="sharded",
        workers=2,
        fuse=True,
        speculate=True,
        speculate_depth=3,
    )

    def trajectory(result):
        return [(r.t_guess, r.median_estimate, r.accepted) for r in result.rounds]

    try:
        clean_config = EstimatorConfig(**base)
        clean_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            clean = TriangleCountEstimator(clean_config).estimate(stream, kappa=5)
            clean_best = min(clean_best, time.perf_counter() - start)
        snap_config = EstimatorConfig(
            **base, checkpoint_dir=checkpoint_dir, snapshot_every=1, snapshot_keep=64
        )
        snap_best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            snapped = TriangleCountEstimator(snap_config).estimate(stream, kappa=5)
            snap_best = min(snap_best, time.perf_counter() - start)
        assert snapped.estimate == clean.estimate, "snapshotting parity violated"
        assert trajectory(snapped) == trajectory(clean), "snapshotting drifted the trajectory"
        assert snapped.passes_total == clean.passes_total, (
            "snapshotting changed the logical-pass total"
        )
        snapshots = sorted(
            name for name in os.listdir(checkpoint_dir) if name.endswith(".esnap")
        )
        assert snapshots, "no snapshots were written"
        # Resume from a mid-run boundary - the state a kill between rounds
        # leaves on disk - and demand the clean run's exact result.
        mid = snapshots[len(snapshots) // 2]
        resumed = resume_from(os.path.join(checkpoint_dir, mid), stream)
        assert resumed.estimate == clean.estimate, "resume parity violated"
        assert trajectory(resumed) == trajectory(clean), "resume trajectory drifted"
        assert resumed.passes_total == clean.passes_total, (
            "resume changed the logical-pass total"
        )
        row = {
            "n": n,
            "m": graph.num_edges,
            "rounds": len(clean.rounds),
            "snapshots_written": len(snapshots),
            "resumed_from": mid,
            "clean_sec": round(clean_best, 5),
            "snapshot_sec": round(snap_best, 5),
            "overhead_x": round(snap_best / clean_best, 3) if clean_best else None,
        }
        print(f"[bench-suite] snapshot overhead: {row}")
    finally:
        os.unlink(handle.name)
        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    return {
        "scale": scale,
        "workers": 2,
        "cpu_count": os.cpu_count(),
        "rows": [row],
        "resumed_identical": True,
    }


def run_serve_throughput(scale: str, repeats: int = 1, jobs: int = 3) -> dict:
    """Cross-job sweep sharing through the serving daemon vs. solo runs.

    ``jobs`` concurrent estimate requests for the same tape (distinct
    seeds, so nothing is cacheable) are served by one daemon over its
    unix socket, with a batch window wide enough that they co-ride from
    the first traversal.  Each response is asserted bit-identical to its
    solo :func:`~repro.core.driver.run_estimate_program` run (estimate,
    trajectory totals, final root-RNG digest), and the tape's physical
    sweep count must come in strictly under the solo runs' sum - the
    daemon's whole value proposition, gated deterministically on sweep
    counts rather than wall clock.
    """
    if not HAVE_NUMPY:  # pragma: no cover - the CI image bakes NumPy in
        return {"scale": scale, "have_numpy": False}
    import shutil
    import tempfile
    import threading

    from repro.core.driver import EstimatorConfig, run_estimate_program
    from repro.io import write_edgelist
    from repro.serve.daemon import background_server
    from repro.serve.protocol import request_unix, root_rng_digest
    from repro.streams import open_edge_stream

    n = ENGINE_SIZES[scale][-1]
    graph, _t, _memory_stream, _plan = _e9_instance(n)
    workdir = tempfile.mkdtemp(prefix="serve-bench-")
    tape_path = os.path.join(workdir, "tape.edges")
    write_edgelist(graph, tape_path)
    configs = [
        EstimatorConfig(seed=seed, repetitions=3) for seed in (3, 9, 21)[:jobs]
    ]

    try:
        solo = []
        solo_best = float("inf")
        for _ in range(repeats):
            outcomes = []
            start = time.perf_counter()
            for config in configs:
                outcomes.append(
                    run_estimate_program(open_edge_stream(tape_path), 5, config)
                )
            solo_best = min(solo_best, time.perf_counter() - start)
            solo = outcomes
        solo_sweeps = sum(o.result.sweeps_total for o in solo)

        socket_path = os.path.join(workdir, "serve.sock")
        responses = [None] * len(configs)

        def _request(index: int, config: EstimatorConfig) -> None:
            responses[index] = request_unix(
                socket_path,
                {
                    "op": "estimate",
                    "path": tape_path,
                    "kappa": 5,
                    "config": {"seed": config.seed, "repetitions": config.repetitions},
                },
            )

        with background_server(socket_path=socket_path, batch_window=0.25):
            threads = [
                threading.Thread(target=_request, args=(i, config))
                for i, config in enumerate(configs)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            served_sec = time.perf_counter() - start
            stats = request_unix(socket_path, {"op": "stats"})

        shared_sweeps = stats["tapes"][0]["sweeps_physical"]
        for outcome, response in zip(solo, responses):
            assert response is not None and response["ok"], f"serve failed: {response}"
            assert response["estimate"] == outcome.result.estimate, "serve parity violated"
            assert response["passes_total"] == outcome.result.passes_total
            assert response["sweeps_total"] == outcome.result.sweeps_total
            assert response["root_rng_sha256"] == root_rng_digest(outcome.root_state), (
                "served root-RNG state diverged from the solo run"
            )
        assert shared_sweeps < solo_sweeps, (
            f"shared serving did not save sweeps: {shared_sweeps} vs {solo_sweeps}"
        )
        row = {
            "n": n,
            "m": graph.num_edges,
            "jobs": len(configs),
            "solo_sweeps": solo_sweeps,
            "shared_sweeps": shared_sweeps,
            "sweep_reduction_x": round(solo_sweeps / shared_sweeps, 3)
            if shared_sweeps
            else None,
            "solo_sec": round(solo_best, 5),
            "served_sec": round(served_sec, 5),
            "shared_per_job": [r["accounting"]["sweeps_shared"] for r in responses],
        }
        print(f"[bench-suite] serve throughput: {row}")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {"scale": scale, "rows": [row], "parity": True}


def _load_history(path: pathlib.Path) -> list:
    """Load the ``BENCH_engine.json`` run history, surviving corruption.

    A crash during an earlier (pre-atomic-write) append could leave a
    truncated or half-written file behind.  Losing the perf trajectory is
    preferable to refusing every future benchmark run: an unreadable
    history is backed up next to the original (``.corrupt-<epoch>``) and
    the history restarts empty.  Earlier revisions wrote a single record
    instead of an array; those are folded into a one-element list.
    """
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError):
        backup = path.with_name(f"{path.name}.corrupt-{int(time.time())}")
        os.replace(path, backup)
        print(f"[bench-suite] WARNING: {path.name} was unreadable; backed up to {backup.name}")
        return []
    return existing if isinstance(existing, list) else [existing]


def _last_speedup(path: pathlib.Path, section: str, scale: str):
    """Newest recorded ``total_speedup`` for ``section`` measured at ``scale``.

    Speedups are only comparable between runs of the same sweep sizes, so
    the gate baselines against the most recent record whose comparison was
    taken at the same scale (records from other scales are skipped).
    """
    for record in reversed(_load_history(path)):
        comparison = record.get(section) or {}
        if comparison.get("scale") == scale:
            return comparison.get("total_speedup")
    return None


def run_smoke(output: pathlib.Path) -> int:
    """Tiny-scale regression gate against the last ``BENCH_engine.json`` entry.

    Parity is asserted unconditionally (any drift fails loudly).  Speedups
    are compared - at matching scale only - with a 2x slack factor
    (machine noise and shared CI boxes make tighter gates flaky), and the
    sharded gate only arms on multi-core machines where fan-out can win
    at all.
    """
    current_engine = run_engine_comparison("tiny")
    current_sharded = run_sharded_comparison("tiny")
    current_fused = run_fused_comparison("tiny")
    current_speculative = run_speculative_comparison("tiny")
    current_depth_sweep = run_speculative_depth_sweep("tiny")
    current_fault_recovery = run_fault_recovery("tiny")
    current_tape_format = run_tape_format_comparison("tiny")
    current_snapshot = run_snapshot_overhead("tiny")
    current_serve = run_serve_throughput("tiny")
    failures = []
    baseline = _last_speedup(output, "engine_comparison", "tiny")
    measured = current_engine.get("total_speedup")
    # `is not None` (not truthiness): a measured speedup of 0.0 is the
    # *largest* regression and must trip the gate, not disable it.
    if baseline is not None and measured is not None and measured < 0.5 * baseline:
        failures.append(
            f"chunked speedup regressed: {measured}x vs last recorded {baseline}x"
        )
    last_sharded = _last_speedup(output, "sharded_comparison", "tiny")
    measured_sharded = current_sharded.get("total_speedup")
    multicore = (os.cpu_count() or 1) > 1
    if (
        multicore
        and last_sharded is not None
        and measured_sharded is not None
        and measured_sharded < 0.5 * last_sharded
    ):
        failures.append(
            f"sharded speedup regressed: {measured_sharded}x vs last recorded {last_sharded}x"
        )
    # The fused engine must not lose to unfused sharded execution on the
    # same sweep: it runs the identical kernels on strictly fewer tape
    # traversals, so any deficit beyond measurement noise (10% slack on a
    # shared box) is a regression in the fused executor itself.  Parity
    # and the sweep-count reduction are asserted inside the comparison.
    measured_fused = current_fused.get("total_speedup")
    if measured_fused is not None and measured_fused < 0.9:
        failures.append(
            f"fused engine slower than unfused sharded: {measured_fused}x (< 0.9x floor)"
        )
    # The speculation gate is deterministic (sweep counts, not wall clock):
    # a speculative multi-round run must not exceed the sequential sweep
    # count even including the physically-performed wasted sweeps.  Parity
    # and the strict multi-round reduction are asserted inside the
    # comparison; this re-checks the recorded counts per row so a
    # silently-empty comparison cannot pass the gate.
    speculative_rows = current_speculative.get("rows", [])
    for row in speculative_rows:
        physical = row["speculative_physical"]
        sequential_sweeps = row["sequential"]
        multi_round = row.get("rounds", 1) > 1
        if physical > sequential_sweeps or (multi_round and physical >= sequential_sweeps):
            failures.append(
                f"speculative driver sweeps not under sequential at n={row['n']}: "
                f"{physical} vs {sequential_sweeps}"
            )
    if not speculative_rows and current_speculative.get("have_numpy", True):
        failures.append("speculative comparison produced no sweep counts")
    # The depth gate is likewise deterministic: on the canonical workload
    # a depth-3 window must come in at or under the depth-2 pair driver's
    # physical sweep count (committed + wasted).  Parity across depths is
    # asserted inside the sweep; this re-checks the recorded counts so a
    # silently-empty sweep cannot pass the gate.
    depth_rows = {row["depth"]: row for row in current_depth_sweep.get("rows", [])}
    if depth_rows:
        if 2 not in depth_rows or 3 not in depth_rows:
            failures.append("speculative depth sweep missing depth 2/3 rows")
        elif depth_rows[3]["physical"] > depth_rows[2]["physical"]:
            failures.append(
                "depth-3 speculation regressed: "
                f"{depth_rows[3]['physical']} physical sweeps vs depth-2's "
                f"{depth_rows[2]['physical']}"
            )
    elif current_depth_sweep.get("have_numpy", True):
        failures.append("speculative depth sweep produced no rows")
    # The fault-recovery gate is deterministic: recovery from injected
    # worker crashes must complete with bit-identical results (asserted
    # inside the stage) and cost at most 2x the clean run's physical
    # sweeps - recovery is retried tasks and pool respawns, not re-sweeps,
    # so anything past that slack means retries are re-reading the tape.
    recovery_rows = current_fault_recovery.get("rows", [])
    for row in recovery_rows:
        if row["faulted_sweeps"] > 2 * row["clean_sweeps"]:
            failures.append(
                "fault recovery swept the tape too often: "
                f"{row['faulted_sweeps']} vs clean {row['clean_sweeps']}"
            )
    if not recovery_rows and current_fault_recovery.get("have_numpy", True):
        failures.append("fault recovery stage produced no rows")
    # The tape-format gate: the whole point of the binary format is that a
    # mapped sweep skips parsing entirely, so its raw sweep throughput
    # must never fall below the text parser's.  Bit-identical estimates
    # across the formats are asserted inside the comparison.
    tape_rows = current_tape_format.get("rows", [])
    for row in tape_rows:
        if row["mmap_sweep_eps"] < row["text_sweep_eps"]:
            failures.append(
                "mmap tape sweep slower than text parsing: "
                f"{row['mmap_sweep_eps']} vs {row['text_sweep_eps']} edges/sec"
            )
    if not tape_rows and current_tape_format.get("have_numpy", True):
        failures.append("tape format comparison produced no rows")
    # The snapshot gate: resume parity is asserted inside the stage (a
    # non-identical resume raises); here we re-check the recorded flag so
    # a silently-empty stage cannot pass, and bound the wall overhead -
    # one small atomic write per committed round must not dominate the
    # round itself (2x slack for fsync latency on shared CI disks).
    snapshot_rows = current_snapshot.get("rows", [])
    if not current_snapshot.get("resumed_identical", False) and current_snapshot.get(
        "have_numpy", True
    ):
        failures.append("snapshot stage did not verify a bit-identical resume")
    for row in snapshot_rows:
        overhead = row.get("overhead_x")
        if overhead is not None and overhead > 2.0:
            failures.append(
                f"round-boundary snapshotting too expensive: {overhead}x clean wall clock"
            )
    if not snapshot_rows and current_snapshot.get("have_numpy", True):
        failures.append("snapshot overhead stage produced no rows")
    # The serving gate is deterministic: concurrent same-tape jobs must be
    # bit-identical to their solo runs (asserted inside the stage) AND
    # physically cheaper than running them solo - shared sweeps strictly
    # under the solo sum, re-checked here per row so a silently-empty
    # stage cannot pass.
    serve_rows = current_serve.get("rows", [])
    for row in serve_rows:
        if row["shared_sweeps"] >= row["solo_sweeps"]:
            failures.append(
                "serving daemon saved no sweeps: "
                f"{row['shared_sweeps']} shared vs {row['solo_sweeps']} solo"
            )
    if not serve_rows and current_serve.get("have_numpy", True):
        failures.append("serve throughput stage produced no rows")
    if serve_rows and not current_serve.get("parity", False):
        failures.append("serve throughput stage did not verify parity")
    for failure in failures:
        print(f"[bench-suite] SMOKE FAIL: {failure}")
    if not failures:
        print("[bench-suite] smoke gate passed")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "tiny"),
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--skip-pytest", action="store_true",
                        help="only run the engine comparisons")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-scale regression gate vs the last recorded entry; appends nothing")
    parser.add_argument("--output", default=str(REPO / "BENCH_engine.json"))
    args = parser.parse_args()

    if args.smoke:
        return run_smoke(pathlib.Path(args.output))

    record = {
        "version": __version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if not args.skip_pytest:
        record["benchmarks"] = run_pytest_benchmarks(args.scale)
    record["engine_comparison"] = run_engine_comparison(args.scale)
    record["sharded_comparison"] = run_sharded_comparison(args.scale)
    record["fused_comparison"] = run_fused_comparison(args.scale)
    record["speculative_comparison"] = run_speculative_comparison(args.scale)
    record["speculative_depth_sweep"] = run_speculative_depth_sweep(args.scale)
    record["fault_recovery"] = run_fault_recovery(args.scale)
    record["tape_format_comparison"] = run_tape_format_comparison(args.scale)
    record["snapshot_overhead"] = run_snapshot_overhead(args.scale)
    record["serve_throughput"] = run_serve_throughput(args.scale)

    out = pathlib.Path(args.output)
    history = _load_history(out)
    history.append(record)
    from repro.core.snapshot import atomic_write_text

    atomic_write_text(out, json.dumps(history, indent=2) + "\n")
    print(f"[bench-suite] appended run {len(history)} to {out}")
    failed = record.get("benchmarks", {}).get("returncode", 0) != 0
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
