#!/usr/bin/env python
"""Run the benchmark suite and record the engine perf trajectory.

Two stages:

1. (optional) the repo's experiment regenerators at ``REPRO_BENCH_SCALE``
   (default ``tiny`` - a smoke pass over every ``benchmarks/bench_*.py``);
2. a chunked-vs-pure-Python engine comparison on the E9 BA-family sweep,
   asserting seed-for-seed identical estimates while timing both engines.

The results are *appended* to ``BENCH_engine.json`` at the repo root (a
JSON array, one record per run), so successive PRs accumulate the speedup
trajectory instead of overwriting it.

Usage::

    python scripts/run_bench_suite.py             # tiny benchmarks + engine compare
    python scripts/run_bench_suite.py --scale small
    python scripts/run_bench_suite.py --skip-pytest   # engine compare only
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import __version__  # noqa: E402
from repro.core import engine_overrides  # noqa: E402
from repro.core.engine import HAVE_NUMPY  # noqa: E402
from repro.core.estimator import run_single_estimate  # noqa: E402
from repro.core.params import ParameterPlan  # noqa: E402
from repro.generators import barabasi_albert_graph  # noqa: E402
from repro.graph import count_triangles  # noqa: E402
from repro.streams import InMemoryEdgeStream  # noqa: E402
from repro.streams.transforms import shuffled  # noqa: E402


def _bench_sizes() -> dict:
    """The E9 size table, loaded from the benchmark itself (single source)."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "bench_passes_runtime", REPO / "benchmarks" / "bench_passes_runtime.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.SIZES


ENGINE_SIZES = _bench_sizes()


def run_pytest_benchmarks(scale: str) -> dict:
    """Run the experiment regenerators; return a summary dict."""
    env = dict(os.environ, REPRO_BENCH_SCALE=scale)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"],
        cwd=REPO,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - start
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"[bench-suite] pytest benchmarks ({scale}): {tail} in {elapsed:.1f}s")
    return {
        "scale": scale,
        "returncode": proc.returncode,
        "summary": tail,
        "seconds": round(elapsed, 3),
    }


def run_engine_comparison(scale: str, repeats: int = 3) -> dict:
    """Time both engines on the E9 sweep; identical results are asserted."""
    rows = []
    totals = {"python": 0.0, "chunked": 0.0}
    for n in ENGINE_SIZES[scale]:
        graph = barabasi_albert_graph(n, 5, random.Random(1))
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))
        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 5, float(max(1, t)), 0.25
        )
        times = {}
        results = {}
        for mode in ("python", "chunked") if HAVE_NUMPY else ("python",):
            with engine_overrides(mode):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    results[mode] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            times[mode] = best
            totals[mode] += best
        if HAVE_NUMPY:
            assert results["python"] == results["chunked"], "engine parity violated"
        speedup = times["python"] / times["chunked"] if HAVE_NUMPY else None
        rows.append(
            {
                "n": n,
                "m": graph.num_edges,
                "triangles": t,
                "python_sec": round(times["python"], 5),
                "chunked_sec": round(times.get("chunked", float("nan")), 5) if HAVE_NUMPY else None,
                "speedup": round(speedup, 2) if speedup else None,
            }
        )
        print(f"[bench-suite] n={n}: {rows[-1]}")
    total_speedup = (
        round(totals["python"] / totals["chunked"], 2) if HAVE_NUMPY and totals["chunked"] else None
    )
    print(f"[bench-suite] engine sweep total speedup: {total_speedup}x")
    return {
        "scale": scale,
        "have_numpy": HAVE_NUMPY,
        "rows": rows,
        "total_python_sec": round(totals["python"], 4),
        "total_chunked_sec": round(totals["chunked"], 4) if HAVE_NUMPY else None,
        "total_speedup": total_speedup,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default=os.environ.get("REPRO_BENCH_SCALE", "tiny"),
                        choices=("tiny", "small", "medium"))
    parser.add_argument("--skip-pytest", action="store_true",
                        help="only run the engine comparison")
    parser.add_argument("--output", default=str(REPO / "BENCH_engine.json"))
    args = parser.parse_args()

    record = {
        "version": __version__,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    if not args.skip_pytest:
        record["benchmarks"] = run_pytest_benchmarks(args.scale)
    record["engine_comparison"] = run_engine_comparison(args.scale)

    out = pathlib.Path(args.output)
    history = []
    if out.exists():
        existing = json.loads(out.read_text(encoding="utf-8"))
        # Earlier revisions wrote a single record; fold it into the array.
        history = existing if isinstance(existing, list) else [existing]
    history.append(record)
    out.write_text(json.dumps(history, indent=2) + "\n", encoding="utf-8")
    print(f"[bench-suite] appended run {len(history)} to {out}")
    failed = record.get("benchmarks", {}).get("returncode", 0) != 0
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
