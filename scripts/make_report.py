"""Regenerate the full experiment report in one command.

Runs every experiment's ``run_*`` function (the same code the pytest
benchmarks wrap) at a chosen scale and captures the printed tables into a
single Markdown file, so EXPERIMENTS.md can be refreshed mechanically:

    python scripts/make_report.py --scale small --out report.md

The benchmark modules live outside the installed package (they are pytest
targets), so they are loaded by file path.
"""

from __future__ import annotations

import argparse
import contextlib
import importlib.util
import io
import pathlib
import sys
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_DIR = REPO / "benchmarks"

# Experiment id -> (bench file, run-function name), in report order.
EXPERIMENTS = [
    ("E0", "bench_workloads.py", "run_workload_characterization"),
    ("E1", "bench_table1.py", "run_table1"),
    ("E2a", "bench_main_accuracy.py", "run_suite_accuracy"),
    ("E2b", "bench_main_accuracy.py", "run_epsilon_sweep"),
    ("E3", "bench_wheel_scaling.py", "run_wheel_scaling"),
    ("E4", "bench_crossover.py", "run_crossover"),
    ("E5", "bench_chiba_nishizeki.py", "run_chiba_nishizeki"),
    ("E6", "bench_assignment.py", "run_assignment_ledger"),
    ("E7", "bench_ideal_estimator.py", "run_ideal_estimator"),
    ("E8", "bench_lowerbound.py", "run_lowerbound_game"),
    ("E9", "bench_passes_runtime.py", "run_passes_runtime"),
    ("E10", "bench_cliques.py", "run_cliques"),
    ("E11", "bench_ablation.py", "run_ablation"),
    ("E12", "bench_dynamic.py", "run_dynamic"),
    ("E13", "bench_stream_orders.py", "run_stream_orders"),
]

SEEDS = {"tiny": range(2), "small": range(3), "medium": range(5)}


def load_run_function(filename: str, function: str):
    """Import a benchmark module by path and return its run function."""
    path = BENCH_DIR / filename
    spec = importlib.util.spec_from_file_location(path.stem, path)
    if spec is None or spec.loader is None:
        raise ImportError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, function)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    parser.add_argument("--out", default="report.md")
    parser.add_argument(
        "--only", nargs="*", default=None, help="experiment ids to run (default: all)"
    )
    args = parser.parse_args(argv)
    seeds = SEEDS[args.scale]

    sections = [f"# Experiment report (scale={args.scale})\n"]
    for exp_id, filename, function in EXPERIMENTS:
        if args.only and exp_id not in args.only:
            continue
        run = load_run_function(filename, function)
        buffer = io.StringIO()
        start = time.perf_counter()
        with contextlib.redirect_stdout(buffer):
            run(args.scale, seeds)
        elapsed = time.perf_counter() - start
        print(f"{exp_id}: {filename}::{function} done in {elapsed:.1f}s", file=sys.stderr)
        sections.append(f"## {exp_id} ({filename})\n")
        sections.append("```")
        sections.append(buffer.getvalue().strip())
        sections.append("```")
        sections.append(f"_({elapsed:.1f}s)_\n")
    pathlib.Path(args.out).write_text("\n".join(sections) + "\n", encoding="utf-8")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
