"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a wheel, which this offline environment
cannot (no ``wheel`` distribution is installed).  ``python setup.py develop``
performs the equivalent editable install through setuptools directly.  All
real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
