"""E5 - Lemma 3.1 and Corollary 3.2: ``d_E <= 2 m kappa`` and ``T <= 2 m kappa``.

Evaluates both inequalities on every workload family and prints the
realized ratios ``d_E / (2 m kappa)`` and ``T / (2 m kappa)``.

Reproduction target: every ratio is <= 1 (the inequalities hold), with the
clique-like families approaching the constant and the tree-like families
far below it - the slack profile the Chiba-Nishizeki argument predicts.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.generators import complete_graph, standard_suite
from repro.graph import count_triangles, degeneracy, edge_degree_sum


def run_chiba_nishizeki(scale: str, seeds: range) -> None:
    rows = []
    graphs = [(w.name, w.instantiate(seed=0)) for w in standard_suite(scale)]
    graphs.append(("clique-64", complete_graph(64)))  # near-tight case
    for name, graph in graphs:
        m = graph.num_edges
        kappa = degeneracy(graph)
        if m == 0 or kappa == 0:
            continue
        d_e = edge_degree_sum(graph)
        t = count_triangles(graph)
        bound = 2 * m * kappa
        rows.append([name, m, kappa, d_e, d_e / bound, t, t / bound])
        assert d_e <= bound, name
        assert t <= bound, name
    print()
    print(
        format_table(
            ["workload", "m", "kappa", "d_E", "d_E/(2mk)", "T", "T/(2mk)"],
            rows,
            caption="E5: Lemma 3.1 + Corollary 3.2 across families (ratios must be <= 1)",
        )
    )


def test_chiba_nishizeki(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_chiba_nishizeki, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
