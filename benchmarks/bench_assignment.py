"""E6 - Definition 5.2 / Lemma 5.12: the assignment rule, measured.

Runs the streaming ``Assignment`` (Algorithm 3) over *all* triangles of
each workload and reports the Definition 5.2 ledger: fraction assigned,
``tau_max`` vs the ``kappa/eps`` budget, and how the exact rule's loss
(heavy + costly triangles, Lemma 5.12's ``<= 3 eps T``) compares.

Reproduction target: assigned fraction >= 1 - O(eps); tau_max <= kappa/eps;
the book graph (the paper's worst case) keeps its spine edge empty.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.core.assignment import StreamingAssigner
from repro.core.params import ParameterPlan
from repro.graph import count_triangles, degeneracy, enumerate_triangles, per_edge_triangle_counts
from repro.generators import standard_suite
from repro.streams.memory import InMemoryEdgeStream
from repro.streams.multipass import PassScheduler

EPSILON = 0.25


def run_assignment_ledger(scale: str, seeds: range) -> None:
    rows = []
    for workload in standard_suite(scale):
        graph = workload.instantiate(seed=0)
        t = count_triangles(graph)
        if t == 0:
            continue
        kappa = degeneracy(graph)
        triangles = list(enumerate_triangles(graph))
        plan = ParameterPlan.build(
            num_vertices=graph.num_vertices,
            num_edges=graph.num_edges,
            kappa=max(1, kappa),
            t_guess=float(t),
            epsilon=EPSILON,
        )
        stream = InMemoryEdgeStream.from_graph(graph)
        scheduler = PassScheduler(stream)
        assigner = StreamingAssigner(plan, random.Random(1))
        out = assigner.assign(scheduler, triangles)
        assigned = {tri: e for tri, e in out.items() if e is not None}
        per_edge: dict = {}
        for e in assigned.values():
            per_edge[e] = per_edge.get(e, 0) + 1
        tau_max = max(per_edge.values(), default=0)
        te = per_edge_triangle_counts(graph)
        heavy_cut = kappa / EPSILON
        exact_heavy_triangles = sum(
            1
            for tri in triangles
            if all(te[e2] > heavy_cut for e2 in ((tri[0], tri[1]), (tri[0], tri[2]), (tri[1], tri[2])))
        )
        rows.append(
            [
                workload.name,
                t,
                len(assigned) / t,
                tau_max,
                heavy_cut,
                tau_max <= heavy_cut + 1,
                exact_heavy_triangles / t,
            ]
        )
    print()
    print(
        format_table(
            [
                "workload",
                "T",
                "assigned frac",
                "tau_max",
                "kappa/eps",
                "tau_max ok",
                "exact heavy frac",
            ],
            rows,
            caption=f"E6: Definition 5.2 ledger at eps={EPSILON} "
            "(assigned frac >= 1-O(eps); tau_max <= kappa/eps)",
        )
    )


def test_assignment_ledger(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_assignment_ledger, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
