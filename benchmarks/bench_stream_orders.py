"""E13 - "arbitrary order": accuracy must not depend on the stream order.

Theorem 1.2 is stated for arbitrary-order streams.  This experiment runs
the estimator on the *same* graphs under four orderings - sorted
(deterministic), shuffled, heavy-edges-last (adversarial for pass-1
samplers), and vertex-grouped (adjacency-list order, the friendliest) -
and reports per-order median errors.

Reproduction target: the error band is statistically indistinguishable
across orders; no ordering breaks the estimator.
"""

from __future__ import annotations

import random

from repro import EstimatorConfig, TriangleCountEstimator
from repro.analysis import format_table
from repro.generators import workload_by_name
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, VertexArrivalStream
from repro.streams.transforms import (
    adversarial_heavy_edge_last_order,
    shuffled,
    sorted_order,
)

FAMILIES = ["wheel", "book", "ba"]


def _orderings(graph, seed):
    yield "sorted", InMemoryEdgeStream.from_graph(graph, sorted_order(graph))
    yield "shuffled", InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(seed)))
    yield "heavy-last", InMemoryEdgeStream.from_graph(
        graph, adversarial_heavy_edge_last_order(graph)
    )
    yield "vertex-grouped", VertexArrivalStream.from_graph(graph, rng=random.Random(seed))


def run_stream_orders(scale: str, seeds: range) -> None:
    rows = []
    for family in FAMILIES:
        workload = workload_by_name(family, scale=scale)
        graph = workload.instantiate(seed=0)
        t = count_triangles(graph)
        if t == 0:
            continue
        for order_name, _probe in _orderings(graph, 0):
            errors = []
            for seed in seeds:
                for name, stream in _orderings(graph, seed):
                    if name != order_name:
                        continue
                    cfg = EstimatorConfig(seed=seed + 1, repetitions=5, t_hint=float(t))
                    estimate = TriangleCountEstimator(cfg).estimate(
                        stream, kappa=workload.kappa_bound
                    ).estimate
                    errors.append(abs(estimate - t) / t)
            errors.sort()
            rows.append([family, order_name, t, errors[len(errors) // 2], max(errors)])
    print()
    print(
        format_table(
            ["workload", "stream order", "T", "median |err|", "max |err|"],
            rows,
            caption="E13: arbitrary-order robustness (error band ~constant across orders)",
        )
    )


def test_stream_orders(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_stream_orders, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
