"""E12 - the dynamic-stream row of Table 1: ``O~(m^3/T^2)`` one pass.

Runs the Kane-et-al.-style linear sketch estimator on insert/delete
streams whose net graphs span a range of ``m^3/T^2`` values, at a fixed
sketch budget, plus a churn-invariance demonstration (the estimate depends
only on the net graph - the property no sampling algorithm here has).

Reproduction target: accuracy at fixed copies degrades as ``m^3/T^2``
grows (the predicted sample complexity), deletions are handled exactly,
and the whole thing is genuinely one pass at O(copies) words.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.generators import complete_graph, triangulated_grid_graph, wheel_graph
from repro.graph import count_triangles
from repro.sketches import TriangleSketchEstimator
from repro.streams.dynamic import DynamicEdgeStream, churn_stream

COPIES = {"tiny": 1500, "small": 4000, "medium": 12000}


def run_dynamic(scale: str, seeds: range) -> None:
    copies = COPIES[scale]
    instances = [
        ("K16 (dense)", complete_graph(16)),
        ("K12", complete_graph(12)),
        ("tri-grid 8x8", triangulated_grid_graph(8, 8)),
        ("wheel 64", wheel_graph(64)),
    ]
    rows = []
    for name, graph in instances:
        t = count_triangles(graph)
        m = graph.num_edges
        budget = m ** 3 / (t * t)
        estimates = []
        words = 0
        for seed in seeds:
            # Wider id universe so even complete graphs get genuine churn.
            stream = churn_stream(
                graph,
                churn_factor=1.0,
                rng=random.Random(seed),
                num_vertices=2 * graph.num_vertices + 8,
            )
            groups = 5 if copies % 5 == 0 else 1
            result = TriangleSketchEstimator(
                copies, random.Random(100 + seed), median_groups=groups
            ).estimate(stream)
            estimates.append(result.estimate)
            words = result.space_words_peak
        median = sorted(estimates)[len(estimates) // 2]
        rows.append(
            [
                name,
                m,
                t,
                budget,
                median,
                (median - t) / t,
                words,
                1,
            ]
        )
    print()
    print(
        format_table(
            [
                "net graph",
                "m",
                "T",
                "m^3/T^2",
                "median est",
                "rel err",
                "words",
                "passes",
            ],
            rows,
            caption=(
                f"E12: dynamic-stream sketch at {copies} copies on churned "
                "insert/delete streams (error grows with m^3/T^2)"
            ),
        )
    )


def test_dynamic(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(run_dynamic, args=(bench_scale, bench_seeds), rounds=1, iterations=1)
