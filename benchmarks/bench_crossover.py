"""E4 - the ``T = kappa^2`` crossover between ``m*kappa/T`` and ``m/sqrt(T)``.

Sweeps the planted-triangle family through triangle counts spanning the
crossover at fixed ``m`` and ``kappa``, and prints the predicted bound
values next to the measured provisioned sample sizes of the paper's
algorithm and the heavy/light baseline.

Reproduction target: predicted ``paper_wins`` flips from 0 to 1 exactly at
``T = kappa^2``, and the measured sample-size ratio (paper / heavy-light)
crosses 1 near the same point.
"""

from __future__ import annotations

import math
import random

from repro.analysis import format_table
from repro.analysis.bounds import dominance_table
from repro.core.params import ParameterPlan
from repro.generators import planted_triangles_graph
from repro.graph import count_triangles, degeneracy


def run_crossover(scale: str, seeds: range) -> None:
    base_edges = {"tiny": 256, "small": 1024, "medium": 4096}[scale]
    # A disjoint triangle-free K_{8,8} pins kappa = 8 without contributing
    # triangles, so the sweep can cross T = kappa^2 = 64 from below.
    kappa_bipartite = 8
    sweep = [8, 16, 32, 64, 128, min(256, base_edges), base_edges]
    rows = []
    for target_t in sweep:
        graph = planted_triangles_graph(
            base_edges=base_edges,
            triangles=target_t,
            kappa_bipartite=kappa_bipartite,
            rng=random.Random(0),
        )
        t = count_triangles(graph)
        kappa = degeneracy(graph)
        m = graph.num_edges
        predicted = dominance_table(graph.num_vertices, m, kappa, [float(t)])[0]
        # Provisioned sample size of the paper's algorithm (r; the bound's
        # operative quantity) vs the heavy/light wedge-sample provision.
        plan = ParameterPlan.build(graph.num_vertices, m, kappa, float(t), 0.25)
        heavy_light_samples = m * math.sqrt(t) / t  # m/sqrt(T) leading term
        rows.append(
            [
                t,
                kappa * kappa,
                predicted["paper"],
                predicted["m_over_sqrt_t"],
                bool(predicted["paper_wins"]),
                plan.r,
                heavy_light_samples,
            ]
        )
    print()
    print(
        format_table(
            [
                "T",
                "kappa^2",
                "m*kappa/T",
                "m/sqrt(T)",
                "paper wins",
                "paper r (measured plan)",
                "HL samples (formula)",
            ],
            rows,
            caption="E4: crossover at T = kappa^2 (paper wins iff T > kappa^2)",
        )
    )


def test_crossover(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(run_crossover, args=(bench_scale, bench_seeds), rounds=1, iterations=1)
