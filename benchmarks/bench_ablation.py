"""E11 - design-choice ablation: what the assignment rule buys.

Three estimator variants on the paper's motivating pair of graphs:

* ``third-split`` - Algorithm 2's sampling with the assignment rule
  ablated (every triangle credited 1/3 from any edge);
* ``exact-rule``  - Algorithm 2 with the ground-truth min-``t_e`` rule;
* ``streaming``   - the full paper pipeline (Algorithm 3's sampled rule).

Reproduction target (the Section 1.2 argument, measured): on the *book*
graph the third-split variant's relative spread explodes (all triangles
sit on one edge) while both rule-based variants stay tight; on the
*friendship* control (every ``t_e = 1``) all three variants behave alike.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.analysis.variance import empirical_moments
from repro.core.ablation import (
    run_single_estimate_exact_assigner,
    run_single_estimate_third_split,
)
from repro.core.estimator import run_single_estimate
from repro.core.params import ParameterPlan
from repro.graph import count_triangles
from repro.generators import book_graph, friendship_graph
from repro.streams.memory import InMemoryEdgeStream

RUNS = {"tiny": 15, "small": 30, "medium": 60}


def run_ablation(scale: str, seeds: range) -> None:
    runs = RUNS[scale]
    size = {"tiny": 120, "small": 400, "medium": 1200}[scale]
    instances = [
        ("book (worst case)", book_graph(size), 2),
        ("friendship (control)", friendship_graph(size), 2),
    ]
    rows = []
    for name, graph, kappa in instances:
        t = count_triangles(graph)
        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, kappa, float(t), 0.25
        )
        stream = InMemoryEdgeStream.from_graph(graph)
        variants = {
            "third-split": lambda s: run_single_estimate_third_split(
                stream, plan, random.Random(s)
            ),
            "exact-rule": lambda s: run_single_estimate_exact_assigner(
                stream, plan, random.Random(s), graph
            ),
            "streaming": lambda s: run_single_estimate(stream, plan, random.Random(s)),
        }
        for variant, runner in variants.items():
            estimates = [runner(s).estimate for s in range(runs)]
            moments = empirical_moments(estimates)
            rows.append(
                [
                    name,
                    variant,
                    t,
                    moments.mean,
                    (moments.mean - t) / t,
                    moments.relative_std,
                ]
            )
    print()
    print(
        format_table(
            ["graph", "variant", "T", "mean est", "mean rel err", "rel std"],
            rows,
            caption=f"E11: assignment-rule ablation over {runs} runs "
            "(rule tames the book graph; neutral on the control)",
        )
    )


def test_ablation(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(run_ablation, args=(bench_scale, bench_seeds), rounds=1, iterations=1)
