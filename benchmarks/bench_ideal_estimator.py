"""E7 - Section 4: the ideal (degree-oracle) estimator's moments.

Runs many parallel copies of Algorithm 1 and compares the empirical mean
and variance of the basic estimator ``X`` against the paper's identities
``E[X] = T`` and ``Var[X] <= d_E * T``, on the book graph (the variance
worst case), the wheel, and a BA graph.

Reproduction target: |empirical mean - T| within a few standard errors;
empirical variance <= the ``d_E * T`` envelope; the implied sample
complexity ``Var/(eps^2 T^2)`` matches the ``O~(d_E/T) = O~(m*kappa/T)``
story.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.analysis.variance import empirical_moments, ideal_estimator_variance_bound
from repro.core import DegreeOracle, IdealEstimator
from repro.graph import count_triangles, edge_degree_sum
from repro.generators import barabasi_albert_graph, book_graph, wheel_graph
from repro.streams.memory import InMemoryEdgeStream

COPIES = {"tiny": 800, "small": 2500, "medium": 8000}


def run_ideal_estimator(scale: str, seeds: range) -> None:
    copies = COPIES[scale]
    base = {"tiny": 60, "small": 150, "medium": 400}[scale]
    instances = [
        ("book", book_graph(base)),
        ("wheel", wheel_graph(base)),
        ("ba", barabasi_albert_graph(base, 4, random.Random(7))),
    ]
    rows = []
    for name, graph in instances:
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        estimator = IdealEstimator(DegreeOracle(graph), copies=copies, rng=random.Random(3))
        result = estimator.estimate(stream)
        moments = empirical_moments(result.raw_estimates)
        bound = ideal_estimator_variance_bound(graph)
        relative_variance = moments.variance / (t * t) if t else float("inf")
        rows.append(
            [
                name,
                t,
                moments.mean,
                (moments.mean - t) / t if t else 0.0,
                moments.variance,
                bound,
                moments.variance / bound if bound else 0.0,
                relative_variance,
                edge_degree_sum(graph) / t if t else float("inf"),
            ]
        )
    print()
    print(
        format_table(
            [
                "graph",
                "T",
                "emp mean",
                "mean rel err",
                "emp Var[X]",
                "d_E * T bound",
                "Var/bound",
                "Var/T^2",
                "d_E/T",
            ],
            rows,
            caption=f"E7: ideal estimator moments over {copies} copies "
            "(unbiased; Var <= d_E*T; samples needed ~ Var/T^2 ~ d_E/T)",
        )
    )


def test_ideal_estimator(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_ideal_estimator, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
