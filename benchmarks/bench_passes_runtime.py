"""E9 - pass structure and runtime scaling.

Confirms the constant-pass discipline measured end to end (6 passes per
Algorithm 2 run, 3 with the degree oracle, 1 for the exact counter) and
times the estimator across a size sweep of the BA family - once per
execution engine, so the table doubles as the chunked-vs-pure-Python
speedup report (the two engines produce bit-identical estimates; see
``tests/test_kernels_parity.py``).

Reproduction target: per-run passes never exceed their stated constants;
wall time grows near-linearly in m (each pass is one sweep; sample sizes at
fixed T/m ratio stay bounded); the chunked engine beats the pure-Python
path by >= 5x on the sweep total.
"""

from __future__ import annotations

import random
import time

from repro import EstimatorConfig
from repro.analysis import format_table
from repro.core import DegreeOracle, IdealEstimator, engine_overrides
from repro.core.engine import HAVE_NUMPY
from repro.core.exact_reference import ExactStreamingCounter
from repro.core.params import ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.graph import count_triangles
from repro.generators import barabasi_albert_graph
from repro.streams.memory import InMemoryEdgeStream
from repro.streams.transforms import shuffled

SIZES = {"tiny": [250, 500], "small": [500, 1000, 2000, 4000], "medium": [1000, 2000, 4000, 8000, 16000]}


def run_passes_runtime(scale: str, seeds: range) -> None:
    rows = []
    totals = {"python": 0.0, "chunked": 0.0}
    for n in SIZES[scale]:
        graph = barabasi_albert_graph(n, 5, random.Random(1))
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))

        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 5, float(max(1, t)), 0.25
        )
        engine_times = {}
        results = {}
        modes = ("python", "chunked") if HAVE_NUMPY else ("python",)
        for mode in modes:
            with engine_overrides(mode):
                best = float("inf")
                for _ in seeds:
                    start = time.perf_counter()
                    results[mode] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            engine_times[mode] = best
            totals[mode] += best
        if HAVE_NUMPY:
            # Same seed, same answer: the engines differ only in speed.
            assert results["python"] == results["chunked"]
        else:  # pragma: no cover - degrade to a single-engine table
            engine_times["chunked"] = engine_times["python"]
            totals["chunked"] += engine_times["python"]
        single = results[modes[-1]]

        oracle_result = IdealEstimator(
            DegreeOracle(graph), copies=200, rng=random.Random(4)
        ).estimate(stream)
        exact_result = ExactStreamingCounter().count(stream)

        rows.append(
            [
                n,
                graph.num_edges,
                t,
                single.passes_used,
                oracle_result.passes_used,
                exact_result.passes_used,
                engine_times["python"],
                engine_times["chunked"],
                engine_times["python"] / max(engine_times["chunked"], 1e-9),
                graph.num_edges / max(engine_times["chunked"], 1e-9),
            ]
        )
        assert single.passes_used <= 6
        assert oracle_result.passes_used == 3
        assert exact_result.passes_used == 1
    print()
    print(
        format_table(
            [
                "n",
                "m",
                "T",
                "alg2 passes",
                "oracle passes",
                "exact passes",
                "python sec",
                "chunked sec",
                "speedup",
                "edges/sec",
            ],
            rows,
            caption=(
                "E9: pass constants and runtime scaling (BA family, one Algorithm 2 "
                "run per engine; identical estimates)"
            ),
        )
    )
    print(
        f"sweep total: python {totals['python']:.3f}s, chunked {totals['chunked']:.3f}s, "
        f"speedup {totals['python'] / max(totals['chunked'], 1e-9):.1f}x"
    )


def test_passes_runtime(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_passes_runtime, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
