"""E9 - pass structure and runtime scaling.

Confirms the constant-pass discipline measured end to end (6 passes per
Algorithm 2 run, 3 with the degree oracle, 1 for the exact counter) and
times the estimator across a size sweep of the BA family - once per
execution engine (pure Python, chunked NumPy, the sharded pass executor,
and the fused sweep engine on top of sharding), so the table doubles as
the engine speedup report.  All engines produce bit-identical estimates
(``tests/test_kernels_parity.py``, ``tests/test_executor_sharded.py``,
and ``tests/test_executor_fused.py``), so the columns differ only in
speed - the fused column additionally performs strictly fewer physical
tape sweeps (pass 4 and pass 5 share one traversal).

Reproduction target: per-run passes never exceed their stated constants;
wall time grows near-linearly in m (each pass is one sweep; sample sizes at
fixed T/m ratio stay bounded); the chunked engine beats the pure-Python
path by >= 5x on the sweep total.  The sharded column reports the
worker-pool win over serial chunked - process fan-out only pays off on a
multi-core box and at sizes where kernel work dominates task shipping, so
at small scales (or one core) expect ratios at or below 1x.
"""

from __future__ import annotations

import os
import random
import time

from repro import EstimatorConfig
from repro.analysis import format_table
from repro.core import DegreeOracle, IdealEstimator, engine_overrides
from repro.core.engine import HAVE_NUMPY
from repro.core.exact_reference import ExactStreamingCounter
from repro.core.params import ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.graph import count_triangles
from repro.generators import barabasi_albert_graph
from repro.streams.memory import InMemoryEdgeStream
from repro.streams.transforms import shuffled

SIZES = {"tiny": [250, 500], "small": [500, 1000, 2000, 4000], "medium": [1000, 2000, 4000, 8000, 16000]}

#: Worker processes for the sharded engine column.
SHARD_WORKERS = min(4, os.cpu_count() or 1)


def run_passes_runtime(scale: str, seeds: range) -> None:
    rows = []
    totals = {"python": 0.0, "chunked": 0.0, "sharded": 0.0, "fused": 0.0}
    # (label, engine mode, worker count, fused); sharded = chunked kernels
    # fanned across the process pool by the shared executor, fused = the
    # same sharded engine with each round's independent plans grouped into
    # shared tape sweeps (identical estimates, fewer sweeps).
    engines = [("python", "python", None, False), ("chunked", "chunked", 1, False)]
    if HAVE_NUMPY:
        engines.append(("sharded", "chunked", SHARD_WORKERS, False))
        engines.append(("fused", "chunked", SHARD_WORKERS, True))
    for n in SIZES[scale]:
        graph = barabasi_albert_graph(n, 5, random.Random(1))
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))

        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 5, float(max(1, t)), 0.25
        )
        engine_times = {}
        results = {}
        for label, mode, workers, fused in engines if HAVE_NUMPY else engines[:1]:
            with engine_overrides(mode, None, workers, fused):
                best = float("inf")
                for _ in seeds:
                    start = time.perf_counter()
                    results[label] = run_single_estimate(stream, plan, random.Random(3))
                    best = min(best, time.perf_counter() - start)
            engine_times[label] = best
            totals[label] += best
        if HAVE_NUMPY:
            # Same seed, same answer: the engines differ only in speed.
            assert results["python"] == results["chunked"] == results["sharded"]
            # The fused engine differs only in sweep/space accounting.
            assert results["fused"].estimate == results["sharded"].estimate
            assert results["fused"].sweeps_used <= results["sharded"].sweeps_used
            if results["fused"].distinct_candidate_triangles:
                # A round with candidates is where fusing saves its sweep.
                assert results["fused"].sweeps_used < results["sharded"].sweeps_used
        else:  # pragma: no cover - degrade to a single-engine table
            for label in ("chunked", "sharded", "fused"):
                engine_times[label] = engine_times["python"]
                totals[label] += engine_times["python"]
        single = results["python" if not HAVE_NUMPY else "sharded"]

        oracle_result = IdealEstimator(
            DegreeOracle(graph), copies=200, rng=random.Random(4)
        ).estimate(stream)
        exact_result = ExactStreamingCounter().count(stream)

        rows.append(
            [
                n,
                graph.num_edges,
                t,
                single.passes_used,
                oracle_result.passes_used,
                exact_result.passes_used,
                engine_times["python"],
                engine_times["chunked"],
                engine_times["sharded"],
                engine_times["fused"],
                engine_times["python"] / max(engine_times["chunked"], 1e-9),
                engine_times["chunked"] / max(engine_times["sharded"], 1e-9),
                engine_times["sharded"] / max(engine_times["fused"], 1e-9),
                graph.num_edges / max(engine_times["chunked"], 1e-9),
            ]
        )
        assert single.passes_used <= 6
        assert oracle_result.passes_used == 3
        assert exact_result.passes_used == 1
    print()
    print(
        format_table(
            [
                "n",
                "m",
                "T",
                "alg2 passes",
                "oracle passes",
                "exact passes",
                "python sec",
                "chunked sec",
                f"sharded sec (w={SHARD_WORKERS})",
                f"fused sec (w={SHARD_WORKERS})",
                "chunk speedup",
                "shard speedup",
                "fuse speedup",
                "edges/sec",
            ],
            rows,
            caption=(
                "E9: pass constants and runtime scaling (BA family, one Algorithm 2 "
                "run per engine; identical estimates)"
            ),
        )
    )
    print(
        f"sweep total: python {totals['python']:.3f}s, chunked {totals['chunked']:.3f}s, "
        f"sharded {totals['sharded']:.3f}s, fused {totals['fused']:.3f}s "
        f"(workers={SHARD_WORKERS}), "
        f"chunk speedup {totals['python'] / max(totals['chunked'], 1e-9):.1f}x, "
        f"shard speedup {totals['chunked'] / max(totals['sharded'], 1e-9):.2f}x, "
        f"fuse speedup {totals['sharded'] / max(totals['fused'], 1e-9):.2f}x"
    )


def test_passes_runtime(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_passes_runtime, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
