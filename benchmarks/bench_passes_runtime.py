"""E9 - pass structure and runtime scaling.

Confirms the constant-pass discipline measured end to end (6 passes per
Algorithm 2 run, 3 with the degree oracle, 1 for the exact counter) and
times the estimator across a size sweep of the BA family.

Reproduction target: per-run passes never exceed their stated constants;
wall time grows near-linearly in m (each pass is one sweep; sample sizes at
fixed T/m ratio stay bounded).
"""

from __future__ import annotations

import random
import time

from repro import EstimatorConfig
from repro.analysis import format_table
from repro.core import DegreeOracle, IdealEstimator
from repro.core.exact_reference import ExactStreamingCounter
from repro.core.params import ParameterPlan
from repro.core.estimator import run_single_estimate
from repro.graph import count_triangles
from repro.generators import barabasi_albert_graph
from repro.streams.memory import InMemoryEdgeStream
from repro.streams.transforms import shuffled

SIZES = {"tiny": [250, 500], "small": [500, 1000, 2000, 4000], "medium": [1000, 2000, 4000, 8000, 16000]}


def run_passes_runtime(scale: str, seeds: range) -> None:
    rows = []
    for n in SIZES[scale]:
        graph = barabasi_albert_graph(n, 5, random.Random(1))
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(2)))

        plan = ParameterPlan.build(
            graph.num_vertices, graph.num_edges, 5, float(max(1, t)), 0.25
        )
        start = time.perf_counter()
        single = run_single_estimate(stream, plan, random.Random(3))
        single_time = time.perf_counter() - start

        oracle_result = IdealEstimator(
            DegreeOracle(graph), copies=200, rng=random.Random(4)
        ).estimate(stream)
        exact_result = ExactStreamingCounter().count(stream)

        rows.append(
            [
                n,
                graph.num_edges,
                t,
                single.passes_used,
                oracle_result.passes_used,
                exact_result.passes_used,
                single_time,
                graph.num_edges / max(single_time, 1e-9),
            ]
        )
        assert single.passes_used <= 6
        assert oracle_result.passes_used == 3
        assert exact_result.passes_used == 1
    print()
    print(
        format_table(
            [
                "n",
                "m",
                "T",
                "alg2 passes",
                "oracle passes",
                "exact passes",
                "alg2 sec",
                "edges/sec",
            ],
            rows,
            caption="E9: pass constants and runtime scaling (BA family, one Algorithm 2 run)",
        )
    )


def test_passes_runtime(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_passes_runtime, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
