"""E2 - Theorem 1.2 / 5.1: accuracy vs. provisioned space of the main
algorithm across the full workload suite and an epsilon sweep.

Reproduction target: on every triangle-rich low-degeneracy family the
median estimate lands within the target epsilon band (practical constants),
and tightening epsilon tightens the error while inflating space by the
predicted ``1/eps^2``-ish factor.
"""

from __future__ import annotations

from repro import EstimatorConfig
from repro.analysis import format_table
from repro.graph import count_triangles
from repro.generators import standard_suite
from repro.harness import aggregate, print_report_table, run_paper_estimator_on_graph, sweep_seeds

EPSILONS = (0.4, 0.25, 0.15)


def run_suite_accuracy(scale: str, seeds: range) -> None:
    aggregates = []
    for workload in standard_suite(scale):
        graph = workload.instantiate(seed=0)
        t = count_triangles(graph)
        if t == 0:
            continue
        reports = sweep_seeds(
            lambda s: run_paper_estimator_on_graph(
                graph,
                kappa=workload.kappa_bound,
                seed=s,
                workload=workload.name,
                exact=t,
            ),
            seeds,
        )
        aggregates.append(aggregate(reports))
    print()
    print_report_table(aggregates, caption="E2: main algorithm across the workload suite")


def run_epsilon_sweep(scale: str, seeds: range) -> None:
    from repro.generators import workload_by_name

    workload = workload_by_name("wheel", scale=scale)
    graph = workload.instantiate(seed=0)
    t = count_triangles(graph)
    rows = []
    for epsilon in EPSILONS:
        reports = sweep_seeds(
            lambda s: run_paper_estimator_on_graph(
                graph,
                kappa=workload.kappa_bound,
                seed=s,
                workload=f"wheel eps={epsilon}",
                config=EstimatorConfig(epsilon=epsilon, seed=s, t_hint=float(t)),
                exact=t,
            ),
            seeds,
        )
        agg = aggregate(reports)
        rows.append(
            [epsilon, agg.median_abs_error, agg.max_abs_error, agg.mean_space_words]
        )
    print()
    print(
        format_table(
            ["epsilon", "median |err|", "max |err|", "mean words"],
            rows,
            caption="E2: epsilon sweep on the wheel (space ~ 1/eps^2-ish)",
        )
    )


def test_suite_accuracy(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_suite_accuracy, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )


def test_epsilon_sweep(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_epsilon_sweep, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
