"""E0 - workload characterization: the instances behind every other table.

Prints the vital signs of the full named suite: sizes, exact ``T``,
measured degeneracy vs the certified promise, ``d_E``, skew statistics,
and the two derived quantities the paper's narrative runs on -
``m*kappa/T`` and the crossover ratio ``T/kappa^2``.

Reproduction target: the suite spans the regimes the paper talks about -
triangle-rich constant-degeneracy families with ``T >> kappa^2`` (where
the paper's bound is the best known) and a sparse control below the
crossover.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.harness.characterization import characterize_suite


def run_workload_characterization(scale: str, seeds: range) -> None:
    rows = characterize_suite(scale)
    print()
    print(
        format_table(
            [
                "workload",
                "n",
                "m",
                "T",
                "kappa",
                "promise",
                "d_E",
                "max deg",
                "max t_e",
                "transitivity",
                "m*kappa/T",
                "T/kappa^2",
            ],
            [
                [
                    c.name,
                    c.num_vertices,
                    c.num_edges,
                    c.triangles,
                    c.kappa,
                    c.kappa_promise,
                    c.d_e_sum,
                    c.max_degree,
                    c.max_te,
                    c.transitivity,
                    c.paper_bound,
                    c.crossover_ratio,
                ]
                for c in rows
            ],
            caption=f"E0: workload suite characterization (scale={scale}, seed=0)",
        )
    )
    for c in rows:
        assert c.kappa <= c.kappa_promise, f"{c.name}: promise violated"


def test_workload_characterization(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_workload_characterization, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
