"""E3 - the Section 1.1 wheel example: polylog vs Omega(sqrt(n)).

Grows wheels over a factor-of-8 size range and reports measured peak words
for the paper's estimator and the two worst-case-optimal baselines, plus
each algorithm's *growth factor* relative to its smallest instance.

Reproduction target: the paper's growth factor stays ~1 (its space is
independent of n on wheels: m*kappa/T = Theta(1)); the baselines' growth
factors track sqrt(n) (sample counts m^{3/2}/T, m/sqrt(T) = Theta(sqrt(n))).
Absolute words favor the baselines at these laptop sizes - constants, not
scaling; EXPERIMENTS.md discusses this.
"""

from __future__ import annotations

from repro import EstimatorConfig
from repro.analysis import fit_power_law, format_table
from repro.generators import wheel_graph
from repro.harness import run_baseline_on_graph, run_paper_estimator_on_graph

SIZES = {"tiny": [256, 512, 1024], "small": [512, 1024, 2048, 4096], "medium": [1024, 2048, 4096, 8192, 16384]}


def run_wheel_scaling(scale: str, seeds: range) -> None:
    rows = []
    base: dict = {}
    for n in SIZES[scale]:
        graph = wheel_graph(n)
        exact = n - 1
        cells = {"n": n, "T": exact}
        paper_words = []
        mvv_words = []
        hl_words = []
        for seed in seeds:
            paper = run_paper_estimator_on_graph(
                graph,
                kappa=3,
                seed=seed,
                config=EstimatorConfig(seed=seed, t_hint=float(exact)),
                exact=exact,
            )
            paper_words.append(paper.space_words_peak)
            mvv_words.append(
                run_baseline_on_graph("mvv-neighbor", graph, seed=seed, exact=exact).space_words_peak
            )
            hl_words.append(
                run_baseline_on_graph(
                    "mvv-heavy-light", graph, seed=seed, exact=exact
                ).space_words_peak
            )
        for name, words in (("paper", paper_words), ("mvv-neighbor", mvv_words), ("mvv-heavy-light", hl_words)):
            mean_words = sum(words) / len(words)
            base.setdefault(name, mean_words)
            cells[f"{name} words"] = mean_words
            cells[f"{name} growth"] = mean_words / base[name]
        rows.append(cells)
    headers = list(rows[0].keys())
    print()
    print(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            caption="E3: wheel scaling - growth factors (paper flat, baselines ~sqrt(n))",
        )
    )
    # Fitted space-growth exponents: theory says 0 for the paper (polylog),
    # 1/2 for both baselines.
    ns = [float(row["n"]) for row in rows]
    exponent_rows = []
    for name, theory in (("paper", 0.0), ("mvv-neighbor", 0.5), ("mvv-heavy-light", 0.5)):
        fit = fit_power_law(ns, [row[f"{name} words"] for row in rows])
        exponent_rows.append([name, fit.exponent, theory, fit.r_squared])
    print(
        format_table(
            ["algorithm", "fitted exponent", "theory exponent", "R^2"],
            exponent_rows,
            caption="E3: fitted space-growth exponents (words ~ n^alpha)",
        )
    )


def test_wheel_scaling(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_wheel_scaling, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
