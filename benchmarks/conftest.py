"""Shared benchmark configuration.

Benchmarks are the experiment regenerators (DESIGN.md, Section 3): each file
reproduces one paper claim and prints the paper-style table to stdout.
``pytest benchmarks/ --benchmark-only -s`` shows the tables; timings are the
pytest-benchmark side dish, the tables are the dish.

Scale is controlled by the ``REPRO_BENCH_SCALE`` environment variable
(``tiny`` | ``small`` | ``medium``, default ``small``): ``tiny`` for smoke
runs, ``medium`` for the EXPERIMENTS.md headline numbers.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    if scale not in ("tiny", "small", "medium"):
        raise ValueError(f"REPRO_BENCH_SCALE must be tiny|small|medium, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def bench_seeds(bench_scale) -> range:
    """Number of repeated runs per table cell, by scale."""
    return range({"tiny": 2, "small": 3, "medium": 5}[bench_scale])
