"""E10 - Conjecture 7.1: clique counting at ``O~(m * kappa^{ell-2} / T)``.

Runs the degree-oracle ``k``-clique estimator (the Section 4 analogue) for
``k`` in {3, 4, 5} on clique-rich low-degeneracy workloads and compares the
measured relative variance ``Var[X] / T^2`` - which equals the number of
basic estimators needed for constant relative error - against the
conjectured budget ``m * kappa^{k-2} / T``.

Reproduction target: the measured ratio (relative variance / conjectured
budget) stays bounded by a modest constant across ``k`` and families,
which is exactly the evidence pattern the conjecture predicts.
"""

from __future__ import annotations

import random

from repro.analysis import format_table
from repro.analysis.variance import empirical_moments
from repro.cliques import CliqueOracleEstimator, count_cliques
from repro.graph import degeneracy
from repro.generators import barabasi_albert_graph, complete_graph, watts_strogatz_graph
from repro.streams.memory import InMemoryEdgeStream

COPIES = {"tiny": 2000, "small": 6000, "medium": 20000}


def run_cliques(scale: str, seeds: range) -> None:
    copies = COPIES[scale]
    base = {"tiny": 40, "small": 80, "medium": 200}[scale]
    instances = [
        ("ba", barabasi_albert_graph(base, 6, random.Random(3))),
        ("ws", watts_strogatz_graph(base, 5, 0.05, random.Random(3))),
        ("clique-16", complete_graph(16)),
    ]
    rows = []
    for name, graph in instances:
        kappa = degeneracy(graph)
        m = graph.num_edges
        stream = InMemoryEdgeStream.from_graph(graph)
        for k in (3, 4, 5):
            t = count_cliques(graph, k)
            if t == 0:
                continue
            estimator = CliqueOracleEstimator(graph, k=k, copies=copies, rng=random.Random(11))
            result = estimator.estimate(stream)
            moments = empirical_moments(result.raw_estimates)
            relative_variance = moments.variance / (t * t)
            budget = m * (kappa ** (k - 2)) / t
            rows.append(
                [
                    name,
                    k,
                    t,
                    moments.mean,
                    (moments.mean - t) / t,
                    relative_variance,
                    budget,
                    relative_variance / budget,
                ]
            )
    print()
    print(
        format_table(
            [
                "graph",
                "k",
                "T_k",
                "emp mean",
                "mean rel err",
                "Var/T^2",
                "m*kappa^{k-2}/T",
                "ratio",
            ],
            rows,
            caption=f"E10: Conjecture 7.1 evidence over {copies} copies "
            "(ratio bounded => conjectured budget suffices)",
        )
    )


def test_cliques(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(run_cliques, args=(bench_scale, bench_seeds), rounds=1, iterations=1)
