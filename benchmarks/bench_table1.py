"""E1 - Table 1 regenerated: predicted bounds and measured algorithms.

Two tables per workload family:

1. the paper's Table 1 *predicted* leading terms evaluated on the instance
   (``analysis.bounds``), and
2. the *measured* estimate / error / passes / peak words of every
   implemented algorithm (exact counter, all six baselines, and the paper's
   estimator) at matched target accuracy.

Reproduction target: the paper bound ``m*kappa/T`` sits at (or near) the
bottom of the predicted table on every triangle-rich low-degeneracy family,
and the measured paper estimator meets its accuracy target within six
passes per run.
"""

from __future__ import annotations

import random

from repro import EstimatorConfig
from repro.analysis import format_table, predicted_bounds
from repro.analysis.bounds import lower_bound_rows
from repro.baselines import available_baselines
from repro.core.exact_reference import ExactStreamingCounter
from repro.graph import count_triangles, degeneracy, per_edge_triangle_counts
from repro.generators import workload_by_name
from repro.harness import (
    aggregate,
    print_report_table,
    run_baseline_on_graph,
    run_paper_estimator_on_graph,
    sweep_seeds,
)
from repro.streams.memory import InMemoryEdgeStream

FAMILIES = ["wheel", "ba", "triangulated-grid"]


def run_table1(scale: str, seeds: range) -> None:
    for family in FAMILIES:
        workload = workload_by_name(family, scale=scale)
        graph = workload.instantiate(seed=0)
        t = count_triangles(graph)
        if t == 0:
            continue
        kappa = degeneracy(graph)
        max_te = max(per_edge_triangle_counts(graph).values(), default=0)
        rows = predicted_bounds(
            graph.num_vertices,
            graph.num_edges,
            float(t),
            kappa=kappa,
            max_degree=graph.max_degree(),
            max_te=max_te,
        )
        print()
        print(
            format_table(
                ["algorithm", "source", "formula", "passes", "predicted words"],
                [[r.name, r.source, r.formula, r.passes, r.value] for r in rows],
                caption=(
                    f"E1/{family}: Table 1 predicted leading terms "
                    f"(n={graph.num_vertices} m={graph.num_edges} T={t} kappa={kappa})"
                ),
            )
        )

        lower = lower_bound_rows(graph.num_vertices, graph.num_edges, float(t), kappa=kappa)
        print(
            format_table(
                ["lower bound", "source", "formula", "passes", "predicted words"],
                [[r.name, r.source, r.formula, r.passes, r.value] for r in lower],
                caption=f"E1/{family}: Table 1 lower-bound rows",
            )
        )

        aggregates = []
        exact = ExactStreamingCounter().count(InMemoryEdgeStream.from_graph(graph))
        # exact counter row, built by hand (it is not a RunReport producer)
        print(
            f"exact reference: T={exact.triangles}, 1 pass, "
            f"{exact.space_words_peak} words"
        )
        for name in available_baselines():
            reports = sweep_seeds(
                lambda s, n=name: run_baseline_on_graph(
                    n, graph, seed=s, workload=family, exact=t
                ),
                seeds,
            )
            aggregates.append(aggregate(reports))
        paper_reports = sweep_seeds(
            lambda s: run_paper_estimator_on_graph(
                graph,
                kappa=workload.kappa_bound,
                seed=s,
                workload=family,
                config=EstimatorConfig(seed=s, t_hint=float(t)),
                exact=t,
            ),
            seeds,
        )
        aggregates.append(aggregate(paper_reports))
        print_report_table(aggregates, caption=f"E1/{family}: measured at matched accuracy")


def test_table1(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(run_table1, args=(bench_scale, bench_seeds), rounds=1, iterations=1)
