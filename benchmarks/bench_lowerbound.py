"""E8 - Theorem 6.3: the distinguishing game vs. space budget.

Plays the YES/NO distinguishing game on the reduction family at budget
factors sweeping two decades, for two (kappa, r) settings.

Reproduction target: success rate ~1 at the nominal ``m*kappa/T`` budget,
collapsing toward chance as the budget factor shrinks - the runnable face
of the Omega(m*kappa/T) bound.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.lowerbound import instance_parameters, run_distinguishing_experiment

FACTORS = (1.0, 0.3, 0.1, 0.03, 0.01)


def run_lowerbound_game(scale: str, seeds: range) -> None:
    trials = {"tiny": 4, "small": 8, "medium": 16}[scale]
    universe = {"tiny": 12, "small": 30, "medium": 60}[scale]
    settings = [(3, 3), (4, 3)]
    rows = []
    for kappa, exponent_r in settings:
        instance = instance_parameters(kappa=kappa, exponent_r=exponent_r, universe=universe)
        for factor in FACTORS:
            outcome = run_distinguishing_experiment(
                instance, budget_factor=factor, trials=trials, seed=17
            )
            rows.append(
                [
                    f"kappa={kappa},r={exponent_r}",
                    instance.planted_triangles,
                    factor,
                    outcome.success_rate,
                    sum(outcome.no_estimates) / trials,
                    outcome.space_words_peak,
                ]
            )
    print()
    print(
        format_table(
            ["family", "planted T", "budget factor", "success rate", "mean NO est", "peak words"],
            rows,
            caption="E8: Theorem 6.3 distinguishing game "
            "(success collapses below the m*kappa/T budget)",
        )
    )


def test_lowerbound_game(benchmark, bench_scale, bench_seeds):
    benchmark.pedantic(
        run_lowerbound_game, args=(bench_scale, bench_seeds), rounds=1, iterations=1
    )
