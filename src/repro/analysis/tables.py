"""Plain-text table rendering for benchmark output.

The benchmark harness prints paper-style tables to stdout; this module is
the one place that knows how to align columns, format numbers compactly
(engineering-style for the wide dynamic ranges space bounds span), and emit
a caption.  Kept dependency-free on purpose - output must render in any
terminal and diff cleanly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Sequence


def format_number(value: object, precision: int = 3) -> str:
    """Compact human-readable rendering of ints/floats/strings."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        if magnitude >= 100:
            return f"{value:,.1f}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    caption: str | None = None,
) -> str:
    """Render an aligned monospace table; numbers right-aligned.

    Raises ``ValueError`` if any row's width disagrees with the header.
    """
    width = len(headers)
    for i, row in enumerate(rows):
        if len(row) != width:
            raise ValueError(f"row {i} has {len(row)} cells, expected {width}")
    rendered: List[List[str]] = [[format_number(cell) for cell in row] for row in rows]
    numeric = [
        all(isinstance(row[col], (int, float)) and not isinstance(row[col], bool) for row in rows)
        if rows
        else False
        for col in range(width)
    ]
    col_width = [
        max(len(headers[col]), *(len(r[col]) for r in rendered)) if rendered else len(headers[col])
        for col in range(width)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if numeric[col]:
                parts.append(cell.rjust(col_width[col]))
            else:
                parts.append(cell.ljust(col_width[col]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if caption:
        lines.append(caption)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in col_width))
    lines.extend(fmt_row(r) for r in rendered)
    return "\n".join(lines)
