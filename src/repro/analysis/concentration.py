"""Concentration-inequality calculators (Theorems 3.3 and 3.4).

These are the two tools every proof in the paper uses; the calculators
expose them in both directions (samples needed for a target failure
probability, and failure probability at a given sample count), so tests can
check that the empirical failure rates of our estimators sit below the
theoretical envelopes.
"""

from __future__ import annotations

import math

from ..errors import ParameterError


def _check_epsilon(epsilon: float) -> None:
    if not 0 < epsilon < 1:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")


def chernoff_failure_probability(samples: int, mean: float, epsilon: float) -> float:
    """Theorem 3.3: ``Pr[|avg - mu| >= eps*mu] <= 2*exp(-eps^2 * r * mu / 3)``.

    ``mean`` is the common expectation ``mu`` of the indicator variables.
    """
    _check_epsilon(epsilon)
    if samples < 1:
        raise ParameterError(f"samples must be >= 1, got {samples}")
    if not 0 <= mean <= 1:
        raise ParameterError(f"indicator mean must be in [0, 1], got {mean}")
    return min(1.0, 2.0 * math.exp(-epsilon * epsilon * samples * mean / 3.0))


def chernoff_samples(mean: float, epsilon: float, delta: float) -> int:
    """Samples making the Theorem 3.3 bound at most ``delta``."""
    _check_epsilon(epsilon)
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    if not 0 < mean <= 1:
        raise ParameterError(f"indicator mean must be in (0, 1], got {mean}")
    return math.ceil(3.0 * math.log(2.0 / delta) / (epsilon * epsilon * mean))


def chebyshev_failure_probability(variance: float, mean: float, epsilon: float) -> float:
    """Theorem 3.4: ``Pr[|X - mu| >= eps*mu] <= Var[X] / (eps^2 * mu^2)``."""
    _check_epsilon(epsilon)
    if variance < 0:
        raise ParameterError(f"variance must be non-negative, got {variance}")
    if mean == 0:
        raise ParameterError("Chebyshev relative bound needs a non-zero mean")
    return min(1.0, variance / (epsilon * epsilon * mean * mean))


def chebyshev_samples(variance: float, mean: float, epsilon: float, delta: float) -> int:
    """Independent averages driving the Theorem 3.4 bound below ``delta``.

    Averaging ``k`` i.i.d. copies divides the variance by ``k``; solve for
    the smallest ``k`` with ``Var / (k * eps^2 * mu^2) <= delta``.
    """
    _check_epsilon(epsilon)
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    if variance < 0:
        raise ParameterError(f"variance must be non-negative, got {variance}")
    if mean == 0:
        raise ParameterError("Chebyshev relative bound needs a non-zero mean")
    return max(1, math.ceil(variance / (delta * epsilon * epsilon * mean * mean)))
