"""Variance identities from Section 4 and empirical moment tools.

The ideal estimator's second-moment calculation (Section 4) gives
``E[X] = T`` and ``Var[X] <= E[X^2] = d_E * T`` for *any* unique full
assignment rule.  Experiment E7 checks both empirically;
:func:`empirical_moments` is its measurement half and
:func:`ideal_estimator_variance_bound` its theoretical half.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError
from ..graph.adjacency import Graph
from ..graph.properties import edge_degree_sum
from ..graph.triangles import count_triangles


def ideal_estimator_variance_bound(graph: Graph) -> float:
    """Section 4's bound: ``Var[X] <= d_E * T`` for the ideal estimator."""
    return float(edge_degree_sum(graph)) * count_triangles(graph)


@dataclass(frozen=True)
class Moments:
    """Sample moments of a collection of estimator outputs."""

    count: int
    mean: float
    variance: float
    std: float

    @property
    def relative_std(self) -> float:
        """Coefficient of variation ``std / mean`` (inf for zero mean)."""
        if self.mean == 0:
            return float("inf")
        return self.std / abs(self.mean)


def empirical_moments(samples: Sequence[float]) -> Moments:
    """Unbiased sample mean/variance of estimator outputs (needs >= 2)."""
    n = len(samples)
    if n < 2:
        raise ParameterError(f"need at least 2 samples for moments, got {n}")
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return Moments(count=n, mean=mean, variance=variance, std=math.sqrt(variance))
