"""Table 1 space-bound formulas and the degeneracy crossover.

Each upper-bound row of the paper's Table 1 is encoded as a closed-form
function of the instance parameters, with the sources quoted.  The
``O~( )`` hides ``poly(log n, 1/eps)`` factors; the formulas here return
the *leading term only*, which is what the scaling experiments compare
against (measured space is fitted against these shapes, not their absolute
values).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ParameterError


@dataclass(frozen=True)
class BoundRow:
    """One Table 1 row: identifying name, source tag, and formula text."""

    name: str
    source: str
    formula: str
    passes: str
    value: float


def _require_positive(**kwargs: float) -> None:
    for key, value in kwargs.items():
        if value <= 0:
            raise ParameterError(f"{key} must be positive, got {value}")


def space_bound(
    name: str,
    num_vertices: int,
    num_edges: int,
    triangles: float,
    kappa: Optional[int] = None,
    max_degree: Optional[int] = None,
    max_te: Optional[int] = None,
) -> float:
    """Evaluate one named bound's leading term.

    Supported names: ``bar-yossef`` (``(mn/T)^2``), ``jowhari-ghodsi``
    (``m*Delta^2/T``), ``buriol`` (``mn/T``), ``kane`` (``m^3/T^2``),
    ``pavan`` (``m*Delta/T``), ``pagh-tsourakakis`` (``m*J/T + m/sqrt(T)``),
    ``cormode-jowhari`` (``m/sqrt(T)``), ``mvv-neighbor`` (``m^{3/2}/T``),
    ``mvv-heavy-light`` (``m/sqrt(T)``), ``paper`` (``m*kappa/T``).
    """
    m, n, t = float(num_edges), float(num_vertices), float(triangles)
    _require_positive(num_edges=m, num_vertices=n, triangles=t)
    if name == "bar-yossef":
        return (m * n / t) ** 2
    if name == "jowhari-ghodsi":
        if max_degree is None:
            raise ParameterError("jowhari-ghodsi needs max_degree")
        return m * max_degree * max_degree / t
    if name == "buriol":
        return m * n / t
    if name == "kane":
        return m ** 3 / (t * t)
    if name == "pavan":
        if max_degree is None:
            raise ParameterError("pavan needs max_degree")
        return m * max_degree / t
    if name == "pagh-tsourakakis":
        if max_te is None:
            raise ParameterError("pagh-tsourakakis needs max_te (J)")
        return m * max_te / t + m / math.sqrt(t)
    if name in ("cormode-jowhari", "mvv-heavy-light"):
        return m / math.sqrt(t)
    if name == "mvv-neighbor":
        return m ** 1.5 / t
    if name == "paper":
        if kappa is None:
            raise ParameterError("paper bound needs kappa")
        return m * kappa / t
    raise ParameterError(f"unknown bound name {name!r}")


def paper_bound(num_edges: int, triangles: float, kappa: int) -> float:
    """The paper's Theorem 1.2 leading term ``m * kappa / T``."""
    return space_bound("paper", 1, num_edges, triangles, kappa=kappa)


def predicted_bounds(
    num_vertices: int,
    num_edges: int,
    triangles: float,
    kappa: int,
    max_degree: int,
    max_te: int,
) -> List[BoundRow]:
    """All Table 1 upper-bound rows evaluated on one instance, paper last."""
    rows = [
        ("bar-yossef", "[9]", "(mn/T)^2", "1"),
        ("jowhari-ghodsi", "[38]", "m*Delta^2/T", "1"),
        ("buriol", "[14]", "mn/T", "1"),
        ("kane", "[41]", "m^3/T^2", "1"),
        ("pavan", "[48]", "m*Delta/T", "1"),
        ("pagh-tsourakakis", "[47]", "m*J/T + m/sqrt(T)", "1"),
        ("cormode-jowhari", "[22]", "m/sqrt(T)", "1"),
        ("mvv-neighbor", "[11,46]", "m^{3/2}/T", "multi"),
        ("mvv-heavy-light", "[46]", "m/sqrt(T)", "multi"),
        ("paper", "Thm 1.2", "m*kappa/T", "6"),
    ]
    return [
        BoundRow(
            name=name,
            source=source,
            formula=formula,
            passes=passes,
            value=space_bound(
                name,
                num_vertices,
                num_edges,
                triangles,
                kappa=kappa,
                max_degree=max_degree,
                max_te=max_te,
            ),
        )
        for name, source, formula, passes in rows
    ]


def lower_bound(
    name: str,
    num_vertices: int,
    num_edges: int,
    triangles: float,
    kappa: Optional[int] = None,
) -> float:
    """Evaluate one of Table 1's lower-bound rows (leading term).

    Supported names: ``bar-yossef-lb`` (``n^2``, one pass, ``T = 1``),
    ``jowhari-ghodsi-lb`` (``n/T``), ``braverman-onepass`` (``m``),
    ``braverman-multipass`` (``m/T``), ``kutzkov-pagh`` (``m^3/T^2``, one
    pass, dynamic), ``cormode-jowhari-lb`` (``m/T^{2/3}``),
    ``cormode-jowhari-sqrt`` (``m/sqrt(T)``), ``bera-chakrabarti``
    (``min(m/sqrt(T), m^{3/2}/T)``), ``paper-lb`` (``m*kappa/T``,
    Theorem 1.3).
    """
    m, n, t = float(num_edges), float(num_vertices), float(triangles)
    _require_positive(num_edges=m, num_vertices=n, triangles=t)
    if name == "bar-yossef-lb":
        return n * n
    if name == "jowhari-ghodsi-lb":
        return n / t
    if name == "braverman-onepass":
        return m
    if name == "braverman-multipass":
        return m / t
    if name == "kutzkov-pagh":
        return m ** 3 / (t * t)
    if name == "cormode-jowhari-lb":
        return m / (t ** (2.0 / 3.0))
    if name == "cormode-jowhari-sqrt":
        return m / math.sqrt(t)
    if name == "bera-chakrabarti":
        return min(m / math.sqrt(t), m ** 1.5 / t)
    if name == "paper-lb":
        if kappa is None:
            raise ParameterError("paper-lb needs kappa")
        return m * kappa / t
    raise ParameterError(f"unknown lower bound name {name!r}")


def lower_bound_rows(
    num_vertices: int, num_edges: int, triangles: float, kappa: int
) -> List[BoundRow]:
    """All Table 1 lower-bound rows evaluated on one instance, paper last."""
    rows = [
        ("bar-yossef-lb", "[9]", "n^2 (one pass, T=1)", "1"),
        ("jowhari-ghodsi-lb", "[38]", "n/T (T < n)", "multi"),
        ("braverman-onepass", "[13]", "m (one pass)", "1"),
        ("braverman-multipass", "[13]", "m/T", "multi"),
        ("kutzkov-pagh", "[44]", "m^3/T^2 (dynamic)", "1"),
        ("cormode-jowhari-lb", "[22]", "m/T^{2/3}", "multi"),
        ("cormode-jowhari-sqrt", "[22]", "m/sqrt(T)", "multi"),
        ("bera-chakrabarti", "[11]", "min(m/sqrt(T), m^{3/2}/T)", "multi"),
        ("paper-lb", "Thm 1.3", "m*kappa/T", "multi"),
    ]
    return [
        BoundRow(
            name=name,
            source=source,
            formula=formula,
            passes=passes,
            value=lower_bound(name, num_vertices, num_edges, triangles, kappa=kappa),
        )
        for name, source, formula, passes in rows
    ]


def crossover_t_for_kappa(kappa: int) -> float:
    """The ``T`` where ``m*kappa/T`` ties ``m/sqrt(T)``: exactly ``kappa^2``.

    For ``T > kappa^2`` the paper's bound wins (Section 1.1 notes that
    ``T = Omega(kappa^2)`` is "a naturally occurring phenomenon" in real
    graphs); experiment E4 sweeps ``T`` through this point.
    """
    if kappa < 1:
        raise ParameterError(f"kappa must be >= 1, got {kappa}")
    return float(kappa * kappa)


def dominance_table(
    num_vertices: int, num_edges: int, kappa: int, triangle_counts: List[float]
) -> List[Dict[str, float]]:
    """For each ``T``, the paper bound vs. the two worst-case-optimal terms.

    Returns one dict per ``T`` with keys ``T, paper, m32_over_t, m_over_sqrt_t,
    best_prior, paper_wins`` - the raw series behind experiment E4's plot.
    """
    rows: List[Dict[str, float]] = []
    for t in triangle_counts:
        paper = space_bound("paper", num_vertices, num_edges, t, kappa=kappa)
        m32 = space_bound("mvv-neighbor", num_vertices, num_edges, t)
        msq = space_bound("mvv-heavy-light", num_vertices, num_edges, t)
        best_prior = min(m32, msq)
        rows.append(
            {
                "T": t,
                "paper": paper,
                "m32_over_t": m32,
                "m_over_sqrt_t": msq,
                "best_prior": best_prior,
                "paper_wins": 1.0 if paper < best_prior else 0.0,
            }
        )
    return rows
