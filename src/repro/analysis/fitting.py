"""Scaling-law fitting for the growth experiments.

Experiment E3 claims *shapes*: the paper's space is flat in ``n`` on wheels
while the baselines grow like ``sqrt(n)``.  :func:`fit_power_law` turns a
measured ``(x, y)`` series into the least-squares exponent of
``y = c * x^alpha`` (ordinary linear regression in log-log space), so the
benchmark can print "fitted exponent 0.03 vs theory 0" instead of asking
the reader to eyeball a table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ParameterError


@dataclass(frozen=True)
class PowerLawFit:
    """Least-squares fit of ``y = c * x^alpha`` in log-log space."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Evaluate the fitted law at ``x``."""
        return self.prefactor * (x ** self.exponent)


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Fit ``y = c * x^alpha`` by linear regression on ``(log x, log y)``.

    Requires at least two points with positive coordinates and at least two
    distinct ``x`` values.
    """
    if len(xs) != len(ys):
        raise ParameterError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ParameterError("need at least two points to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ParameterError("power-law fitting needs positive coordinates")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((a - mean_x) ** 2 for a in lx)
    if sxx == 0:
        raise ParameterError("all x values identical; exponent undefined")
    sxy = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    # Coefficient of determination in log space.
    syy = sum((b - mean_y) ** 2 for b in ly)
    if syy == 0:
        r_squared = 1.0  # constant y: perfectly explained by slope ~ 0
    else:
        residual = sum(
            (b - (slope * a + intercept)) ** 2 for a, b in zip(lx, ly)
        )
        r_squared = 1.0 - residual / syy
    return PowerLawFit(exponent=slope, prefactor=math.exp(intercept), r_squared=r_squared)
