"""Closed-form theory: space bounds, crossovers, concentration calculators.

This package encodes the paper's formulas so experiments can print the
*predicted* column next to the *measured* one:

* :mod:`~repro.analysis.bounds` - every Table 1 row as a function of
  ``(n, m, T, kappa, Delta, ...)`` plus the paper's new ``m*kappa/T`` bound
  and the ``T = kappa^2`` crossover solver;
* :mod:`~repro.analysis.concentration` - Chernoff/Chebyshev sample-size
  calculators (Theorems 3.3 and 3.4 as used in the proofs);
* :mod:`~repro.analysis.variance` - the Section 4 variance identity
  ``Var[X] <= d_E * T`` and empirical moment tools;
* :mod:`~repro.analysis.tables` - plain-text table rendering for the
  benchmark harness.
"""

from .bounds import (
    BoundRow,
    crossover_t_for_kappa,
    paper_bound,
    predicted_bounds,
    space_bound,
)
from .concentration import (
    chebyshev_failure_probability,
    chebyshev_samples,
    chernoff_failure_probability,
    chernoff_samples,
)
from .fitting import PowerLawFit, fit_power_law
from .variance import empirical_moments, ideal_estimator_variance_bound
from .tables import format_table

__all__ = [
    "BoundRow",
    "space_bound",
    "paper_bound",
    "predicted_bounds",
    "crossover_t_for_kappa",
    "chernoff_samples",
    "chernoff_failure_probability",
    "chebyshev_samples",
    "chebyshev_failure_probability",
    "ideal_estimator_variance_bound",
    "empirical_moments",
    "format_table",
    "PowerLawFit",
    "fit_power_law",
]
