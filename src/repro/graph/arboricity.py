"""Arboricity bounds and their relation to degeneracy.

The paper remarks (Section 1.1) that all results can be stated in terms of
arboricity ``alpha``, since ``alpha <= kappa <= 2*alpha - 1`` for every graph
with at least one edge.  Computing arboricity exactly requires matroid-
partition machinery; the library only ever needs *bounds*, which are cheap:

* Nash-Williams: ``alpha = max over subgraphs H of ceil(m_H / (n_H - 1))``;
  evaluating the formula on the densest cores found by the peeling procedure
  gives a strong lower bound.
* Degeneracy sandwich: ``ceil((kappa + 1) / 2) <= alpha <= kappa``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .adjacency import Graph
from .degeneracy import core_decomposition


def nash_williams_lower_bound(graph: Graph) -> int:
    """Return a Nash-Williams lower bound on the arboricity.

    Evaluates ``ceil(m_H / (n_H - 1))`` on the whole graph and on every
    suffix of the degeneracy peeling order (the k-core shells), and returns
    the maximum.  This does not examine *all* subgraphs, so it is a lower
    bound, but the densest subgraph is always core-shaped enough for this to
    be tight on the families used in our experiments.
    """
    if graph.num_edges == 0:
        return 0
    decomposition = core_decomposition(graph)
    best = 0
    # Suffixes of the peeling order: vertices removed late live in dense cores.
    ordering = decomposition.ordering
    suffix: set[int] = set()
    suffix_edges = 0
    for v in reversed(ordering):
        for w in graph.neighbors(v):
            if w in suffix:
                suffix_edges += 1
        suffix.add(v)
        if len(suffix) >= 2:
            best = max(best, math.ceil(suffix_edges / (len(suffix) - 1)))
    return best


@dataclass(frozen=True)
class ArboricityBounds:
    """A certified interval ``[lower, upper]`` containing the arboricity."""

    lower: int
    upper: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"empty arboricity interval [{self.lower}, {self.upper}]")

    @property
    def is_exact(self) -> bool:
        """Whether the interval pins down the arboricity exactly."""
        return self.lower == self.upper


def arboricity_bounds(graph: Graph) -> ArboricityBounds:
    """Return certified arboricity bounds combining both techniques.

    Lower bound: max of Nash-Williams and ``ceil((kappa + 1) / 2)``.
    Upper bound: ``kappa`` (every ``kappa``-degenerate graph decomposes into
    ``kappa`` forests by orienting along a degeneracy ordering).
    """
    kappa = core_decomposition(graph).degeneracy
    if graph.num_edges == 0:
        return ArboricityBounds(lower=0, upper=0)
    lower = max(nash_williams_lower_bound(graph), math.ceil((kappa + 1) / 2))
    return ArboricityBounds(lower=lower, upper=max(kappa, lower))
