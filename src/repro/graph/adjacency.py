"""Adjacency-set graph representation and its CSR companion.

:class:`Graph` is an immutable-after-construction simple undirected graph
backed by one hash set per vertex.  It is the reference representation used
by generators, exact counters, and validation; streaming algorithms never
hold a full :class:`Graph`.

:class:`CSRAdjacency` is the vectorized view of the same graph: vertices
remapped to dense indices, neighbors in one flat sorted int64 array with
the standard compressed-sparse-row ``indptr`` offsets.  The exact counters
(:mod:`repro.graph.triangles`) and the core decomposition
(:mod:`repro.graph.degeneracy`) run over it with NumPy array operations
instead of per-edge dict/set work.  Built lazily via :meth:`Graph.csr` and
cached until the edge count changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import GraphError
from ..types import Edge, Vertex, canonical_edge

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy


class Graph:
    """A simple undirected graph with integer vertices.

    Parameters
    ----------
    edges:
        Iterable of vertex pairs.  Pairs are canonicalized; duplicates and
        self-loops raise :class:`~repro.errors.GraphError`.
    vertices:
        Optional extra isolated vertices to include beyond edge endpoints.

    Notes
    -----
    The constructor is O(m).  Neighbor queries, degree queries, and edge
    membership tests are O(1) expected.
    """

    __slots__ = ("_adj", "_m", "_csr_cache")

    def __init__(
        self,
        edges: Iterable[tuple[int, int]] = (),
        vertices: Iterable[int] = (),
    ) -> None:
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._m = 0
        self._csr_cache: Optional[Tuple[Tuple[int, int], "CSRAdjacency"]] = None
        for v in vertices:
            if v < 0:
                raise GraphError(f"negative vertex id {v}")
            self._adj.setdefault(v, set())
        for u, v in edges:
            self.add_edge_unchecked(u, v)

    # -- construction ------------------------------------------------------

    def add_edge_unchecked(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``; raises on duplicates and self-loops.

        Named "unchecked" because it bypasses any builder-level policy (see
        :class:`~repro.graph.builder.GraphBuilder`), not because it skips
        structural validation.
        """
        a, b = canonical_edge(u, v)
        nbrs = self._adj.setdefault(a, set())
        if b in nbrs:
            raise GraphError(f"duplicate edge ({a}, {b})")
        nbrs.add(b)
        self._adj.setdefault(b, set()).add(a)
        self._m += 1

    # -- basic queries -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices (including isolated vertices)."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._m

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices in insertion order."""
        return iter(self._adj)

    def has_vertex(self, v: int) -> bool:
        """Return whether ``v`` is a vertex of the graph."""
        return v in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """Return whether the undirected edge ``(u, v)`` is present."""
        if u == v:
            return False
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def degree(self, v: int) -> int:
        """Return the degree of vertex ``v``.

        Raises :class:`~repro.errors.GraphError` for unknown vertices, since
        silently returning 0 has historically masked generator bugs.
        """
        try:
            return len(self._adj[v])
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None

    def neighbors(self, v: int) -> Set[Vertex]:
        """Return the neighbor set of ``v`` (a live view; do not mutate)."""
        try:
            return self._adj[v]
        except KeyError:
            raise GraphError(f"vertex {v} not in graph") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in canonical form, each exactly once."""
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if u < v:
                    yield (u, v)

    def edge_list(self) -> List[Edge]:
        """Return all edges as a sorted list (deterministic order)."""
        return sorted(self.edges())

    def degrees(self) -> Dict[Vertex, int]:
        """Return a fresh ``{vertex: degree}`` mapping."""
        return {v: len(nbrs) for v, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        """Return the maximum degree (0 for an empty/edgeless graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    def csr(self) -> "CSRAdjacency":
        """Return the CSR view of this graph (built lazily, cached).

        The cache is invalidated whenever the vertex or edge count changes,
        so the usual build-then-query lifecycle pays the conversion once.
        """
        key = (self._m, len(self._adj))
        if self._csr_cache is None or self._csr_cache[0] != key:
            self._csr_cache = (key, CSRAdjacency.from_graph(self))
        return self._csr_cache[1]

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(self, keep: Iterable[int]) -> "Graph":
        """Return the subgraph induced by the vertex set ``keep``."""
        keep_set = set(keep)
        sub = Graph(vertices=(v for v in keep_set if v in self._adj))
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                sub.add_edge_unchecked(u, v)
        return sub

    def subgraph_of_edges(self, edges: Iterable[Edge]) -> "Graph":
        """Return the subgraph formed by a subset of this graph's edges.

        Raises :class:`~repro.errors.GraphError` if any requested edge is not
        present in this graph.
        """
        sub = Graph()
        for u, v in edges:
            if not self.has_edge(u, v):
                raise GraphError(f"edge ({u}, {v}) not in graph")
            sub.add_edge_unchecked(u, v)
        return sub

    def relabeled(self, mapping: Dict[int, int]) -> "Graph":
        """Return a copy with vertices renamed through ``mapping``.

        Every vertex must appear in ``mapping`` and the mapping must be
        injective (checked).
        """
        values = list(mapping.values())
        if len(set(values)) != len(values):
            raise GraphError("relabel mapping is not injective")
        out = Graph(vertices=(mapping[v] for v in self._adj))
        for u, v in self.edges():
            out.add_edge_unchecked(mapping[u], mapping[v])
        return out

    def copy(self) -> "Graph":
        """Return a deep copy."""
        out = Graph(vertices=self._adj)
        for u, v in self.edges():
            out.add_edge_unchecked(u, v)
        return out

    # -- dunder ------------------------------------------------------------

    def __contains__(self, v: object) -> bool:
        return v in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:  # Graphs are mutable during construction.
        raise TypeError("Graph objects are unhashable")


class CSRAdjacency:
    """Compressed-sparse-row view of a :class:`Graph` for vectorized kernels.

    Vertices are remapped to dense indices ``0..n-1`` in ascending id order;
    ``indices[indptr[i]:indptr[i+1]]`` are the (sorted, dense) neighbor
    indices of the ``i``-th vertex.  Undirected edges appear in both rows.

    Attributes
    ----------
    vertex_ids:
        Sorted int64 array mapping dense index -> original vertex id.
    indptr, indices:
        The CSR offsets and flat neighbor array (both int64).
    degrees:
        Per-vertex degree, aligned with ``vertex_ids``.
    """

    __slots__ = ("vertex_ids", "indptr", "indices", "degrees")

    def __init__(
        self,
        vertex_ids: "numpy.ndarray",
        indptr: "numpy.ndarray",
        indices: "numpy.ndarray",
    ) -> None:
        self.vertex_ids = vertex_ids
        self.indptr = indptr
        self.indices = indices
        self.degrees = indptr[1:] - indptr[:-1]

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRAdjacency":
        """Build the CSR view of ``graph`` (isolated vertices included).

        Reads the adjacency sets wholesale (one ``fromiter`` per vertex, the
        id remap and per-row sort fully vectorized), so the build costs
        O(n) interpreter steps rather than O(m).
        """
        import numpy as np

        adj = graph._adj
        n = len(adj)
        ids = np.fromiter(adj.keys(), dtype=np.int64, count=n)
        vertex_ids = np.sort(ids)
        total = 2 * graph.num_edges
        if total == 0:
            return cls(vertex_ids, np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64))
        counts = np.fromiter((len(nbrs) for nbrs in adj.values()), dtype=np.int64, count=n)
        flat = np.empty(total, dtype=np.int64)
        at = 0
        for nbrs in adj.values():
            c = len(nbrs)
            flat[at : at + c] = np.fromiter(nbrs, dtype=np.int64, count=c)
            at += c
        if int(vertex_ids[-1]) == n - 1:  # dense ids 0..n-1: remap is identity
            src = np.repeat(ids, counts)
            dst = flat
        else:
            src = np.searchsorted(vertex_ids, np.repeat(ids, counts))
            dst = np.searchsorted(vertex_ids, flat)
        # One radix-friendly packed-key sort orders rows and sorts each
        # row's neighbor block in a single pass (dense indices fit 32 bits).
        key = src.astype(np.uint64)
        key <<= np.uint64(32)
        key |= dst.astype(np.uint64)
        order = np.argsort(key)
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return cls(vertex_ids, indptr, dst)

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m``."""
        return len(self.indices) // 2

    def neighbors_of(self, dense_index: int) -> "numpy.ndarray":
        """Sorted dense neighbor indices of the ``dense_index``-th vertex."""
        return self.indices[self.indptr[dense_index] : self.indptr[dense_index + 1]]

    def dense_index(self, vertex_id: int) -> int:
        """Dense index of an original vertex id (raises if absent)."""
        import numpy as np

        i = int(np.searchsorted(self.vertex_ids, vertex_id))
        if i >= len(self.vertex_ids) or int(self.vertex_ids[i]) != vertex_id:
            raise GraphError(f"vertex {vertex_id} not in graph")
        return i
