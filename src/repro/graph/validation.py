"""Cross-validation of the graph substrate against networkx.

networkx is intentionally quarantined to this module (and the test suite);
no algorithm in the library imports it.  These helpers let tests and
benchmarks assert that our from-scratch degeneracy and triangle code agrees
with an independent, widely-trusted implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

from .adjacency import Graph

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import networkx


def to_networkx(graph: Graph) -> "networkx.Graph":
    """Convert a :class:`Graph` to a :class:`networkx.Graph`."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.vertices())
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph: "networkx.Graph") -> Graph:
    """Convert a :class:`networkx.Graph` to a :class:`Graph`.

    Vertices must be non-negative ints; self-loops are rejected by the
    :class:`Graph` constructor.
    """
    return Graph(edges=nx_graph.edges(), vertices=nx_graph.nodes())


def crosscheck_triangles(graph: Graph) -> Tuple[int, int]:
    """Return ``(ours, networkx)`` triangle counts for ``graph``."""
    import networkx as nx

    from .triangles import count_triangles

    ours = count_triangles(graph)
    theirs = sum(nx.triangles(to_networkx(graph)).values()) // 3
    return ours, theirs


def crosscheck_core_numbers(graph: Graph) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Return ``(ours, networkx)`` core-number mappings for ``graph``."""
    import networkx as nx

    from .degeneracy import core_decomposition

    ours = core_decomposition(graph).core_numbers
    theirs = nx.core_number(to_networkx(graph))
    return ours, dict(theirs)
