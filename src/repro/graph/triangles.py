"""Exact triangle counting and the ground-truth assignment rule.

Three exact counters are provided:

* :func:`count_triangles` - edge-iterator in the Chiba-Nishizeki style: for
  every edge, intersect the neighborhood of the lower-degree endpoint with
  the other endpoint's neighborhood.  Runs in ``O(sum_e d_e) = O(m * kappa)``
  (Lemma 3.1), which is the very bound the paper's space analysis rests on.
* :func:`count_triangles_node_iterator` - classic wedge-checking per vertex,
  kept as an independent implementation for cross-checking.
* :func:`enumerate_triangles` - compact-forward enumeration along a
  degeneracy ordering; yields each triangle exactly once.

The module also computes the per-edge triangle counts ``t_e`` and the
paper's *ideal assignment rule* (Section 4 / Section 5.1): assign every
triangle to its contained edge with the fewest triangles, breaking ties
consistently.  The streaming :class:`~repro.core.assignment.StreamingAssigner`
approximates this rule; tests compare against the exact one computed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..types import Edge, Triangle, canonical_edge, triangle_edges
from .adjacency import Graph
from .degeneracy import degeneracy_ordering


#: Flush wedge batches to the membership test once they reach this many
#: candidate pairs; bounds peak memory of the vectorized counter at a few
#: hundred MB-independent of graph size.
_WEDGE_BATCH = 1 << 22


def count_triangles(graph: Graph) -> int:
    """Exact triangle count via degree-oriented wedge checking (vectorized).

    Orients every edge from its lower-``(degree, id)`` endpoint to the
    higher one - the same orientation behind the Chiba-Nishizeki
    ``O(sum_e min(d_u, d_v)) = O(m * kappa)`` bound of Lemma 3.1 - so each
    triangle becomes exactly one out-wedge at its lowest-ranked vertex.
    The wedges are enumerated per out-degree class with NumPy (one
    ``triu_indices`` expansion per class) and closed by a packed-key
    membership test against the sorted edge array, replacing the
    per-edge Python set intersections of the reference implementation
    (kept below as the no-NumPy fallback).
    """
    if graph.num_edges == 0:
        return 0
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        return _count_triangles_setintersect(graph)

    csr = graph.csr()
    n = csr.num_vertices
    deg = csr.degrees
    rank = np.empty(n, dtype=np.int64)
    rank[np.lexsort((np.arange(n), deg))] = np.arange(n)

    src = np.repeat(np.arange(n, dtype=np.int64), deg)
    dst = csr.indices
    # CSR rows are sorted, so every undirected edge appears once with
    # src < dst; pack those canonical pairs as lo*n + hi (fits int64).
    undirected = src < dst
    edge_keys = src[undirected] * n + dst[undirected]
    edge_keys.sort()

    forward = rank[dst] > rank[src]
    out_src, out_dst = src[forward], dst[forward]
    out_counts = np.bincount(out_src, minlength=n)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_indptr[1:])

    total = 0
    for d in np.unique(out_counts):
        d = int(d)
        if d < 2:
            continue
        centers = np.flatnonzero(out_counts == d)
        pairs_per_center = d * (d - 1) // 2
        step = max(1, _WEDGE_BATCH // pairs_per_center)
        ii, jj = np.triu_indices(d, k=1)
        for at in range(0, len(centers), step):
            block = centers[at : at + step]
            gather = out_indptr[block][:, None] + np.arange(d)[None, :]
            mat = out_dst[gather]
            # Row blocks inherit the CSR sort, so mat[:, ii] < mat[:, jj]
            # elementwise - the wedge keys are already canonical.
            keys = (mat[:, ii] * n + mat[:, jj]).ravel()
            idx = np.searchsorted(edge_keys, keys)
            np.minimum(idx, len(edge_keys) - 1, out=idx)
            total += int(np.count_nonzero(edge_keys[idx] == keys))
    return total


def _count_triangles_setintersect(graph: Graph) -> int:
    """Reference edge-iterator counter (per-edge set intersections)."""
    total = 0
    for u, v in graph.edges():
        nu, nv = graph.neighbors(u), graph.neighbors(v)
        small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
        total += sum(1 for w in small if w in large)
    assert total % 3 == 0
    return total // 3


def count_triangles_node_iterator(graph: Graph) -> int:
    """Exact triangle count via per-vertex wedge checking.

    Independent of :func:`count_triangles`; used as a cross-check in tests.
    Each triangle ``{a, b, c}`` is counted once, at its lowest-id vertex,
    by checking adjacency of every neighbor pair with larger ids.
    """
    total = 0
    for v in graph.vertices():
        nbrs = [w for w in graph.neighbors(v) if w > v]
        for i, a in enumerate(nbrs):
            na = graph.neighbors(a)
            for b in nbrs[i + 1 :]:
                if b in na:
                    total += 1
    return total


def _iter_triangle_row_blocks(graph: Graph, np) -> Iterator["object"]:
    """Yield the graph's triangles as dense-index ``(B, 3)`` blocks.

    Orients every edge along a degeneracy ordering (each vertex then has at
    most ``kappa`` out-neighbors - the same ``O(m * kappa)`` bound as the
    reference compact-forward enumeration) and closes the out-wedges with a
    packed-key membership test against the sorted CSR edge array, batched
    per out-degree class exactly like :func:`count_triangles`.  Each yielded
    block is bounded by :data:`_WEDGE_BATCH` wedges, so consumers stream
    with bounded memory rather than holding all ``T`` triangles at once.
    Dense indices follow the cached :meth:`Graph.csr` view; rows are
    sorted, so mapping through ``csr.vertex_ids`` (monotone) yields
    canonical tuples.
    """
    csr = graph.csr()
    n = csr.num_vertices
    if graph.num_edges == 0:
        return
    rank = np.empty(n, dtype=np.int64)
    ordering = np.asarray(degeneracy_ordering(graph), dtype=np.int64)
    rank[np.searchsorted(csr.vertex_ids, ordering)] = np.arange(n)

    src = np.repeat(np.arange(n, dtype=np.int64), csr.degrees)
    dst = csr.indices
    # CSR rows are sorted, so every undirected edge appears once with
    # src < dst; pack those canonical pairs as lo*n + hi (sorted already).
    undirected = src < dst
    edge_keys = src[undirected] * n + dst[undirected]

    forward = rank[dst] > rank[src]
    out_src, out_dst = src[forward], dst[forward]
    out_counts = np.bincount(out_src, minlength=n)
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_indptr[1:])

    for d in np.unique(out_counts):
        d = int(d)
        if d < 2:
            continue
        centers = np.flatnonzero(out_counts == d)
        pairs_per_center = d * (d - 1) // 2
        step = max(1, _WEDGE_BATCH // pairs_per_center)
        ii, jj = np.triu_indices(d, k=1)
        for at in range(0, len(centers), step):
            block = centers[at : at + step]
            gather = out_indptr[block][:, None] + np.arange(d)[None, :]
            mat = out_dst[gather]
            # Row blocks inherit the CSR sort, so lo < hi elementwise - the
            # wedge keys are already canonical.
            lo, hi = mat[:, ii].ravel(), mat[:, jj].ravel()
            keys = lo * n + hi
            idx = np.searchsorted(edge_keys, keys)
            np.minimum(idx, len(edge_keys) - 1, out=idx)
            hit = edge_keys[idx] == keys
            if hit.any():
                wedge_centers = np.repeat(block, pairs_per_center)
                triple = np.column_stack((wedge_centers[hit], lo[hit], hi[hit]))
                yield np.sort(triple, axis=1)


def enumerate_triangles(graph: Graph) -> Iterator[Triangle]:
    """Yield each triangle exactly once, in canonical ``a < b < c`` form.

    With NumPy the triangles come from a vectorized out-wedge closure over
    the cached CSR view (:func:`_iter_triangle_row_blocks`, streamed in
    bounded blocks); the reference compact-forward enumeration along a
    degeneracy ordering is kept as the no-NumPy fallback.  Both run in
    ``O(m * kappa)``; only the yield order differs (neither is part of the
    contract - each triangle appears exactly once, canonically sorted).
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        yield from _enumerate_triangles_reference(graph)
        return
    ids = None
    for rows in _iter_triangle_row_blocks(graph, np):
        if ids is None:
            ids = graph.csr().vertex_ids
        for a, b, c in ids[rows].tolist():
            yield (a, b, c)


def _enumerate_triangles_reference(graph: Graph) -> Iterator[Triangle]:
    """Reference compact-forward enumeration (per-vertex set checks)."""
    ordering = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(ordering)}
    out_neighbors: Dict[int, List[int]] = {
        v: sorted((w for w in graph.neighbors(v) if position[w] > position[v]), key=position.__getitem__)
        for v in ordering
    }
    for v in ordering:
        outs = out_neighbors[v]
        for i, a in enumerate(outs):
            na = graph.neighbors(a)
            for b in outs[i + 1 :]:
                if b in na:
                    x, y, z = sorted((v, a, b))
                    yield (x, y, z)


def triangles_through_edge(graph: Graph, edge: Edge) -> int:
    """Return ``t_e``: the number of triangles containing ``edge``."""
    u, v = canonical_edge(*edge)
    nu, nv = graph.neighbors(u), graph.neighbors(v)
    small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
    return sum(1 for w in small if w in large)


def per_edge_triangle_counts(graph: Graph) -> Dict[Edge, int]:
    """Return ``{e: t_e}`` for every edge (zero entries included).

    With NumPy the counts are one vectorized fold over the CSR triangle
    array: each triangle's three edges are mapped to their rank in the
    sorted packed edge-key array (``searchsorted``) and accumulated with
    ``bincount`` - no per-triangle Python iteration.  Falls back to the
    reference per-triangle loop without NumPy.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        return _per_edge_triangle_counts_reference(graph)
    if graph.num_edges == 0:
        return {}
    csr = graph.csr()
    n = csr.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), csr.degrees)
    dst = csr.indices
    undirected = src < dst
    edge_lo, edge_hi = src[undirected], dst[undirected]
    edge_keys = edge_lo * n + edge_hi  # sorted by CSR construction
    totals = np.zeros(len(edge_keys), dtype=np.int64)
    for rows in _iter_triangle_row_blocks(graph, np):
        for i, j in ((0, 1), (0, 2), (1, 2)):
            keys = rows[:, i] * n + rows[:, j]
            totals += np.bincount(
                np.searchsorted(edge_keys, keys), minlength=len(edge_keys)
            )
    ids = csr.vertex_ids
    return {
        (u, v): c
        for u, v, c in zip(ids[edge_lo].tolist(), ids[edge_hi].tolist(), totals.tolist())
    }


def _per_edge_triangle_counts_reference(graph: Graph) -> Dict[Edge, int]:
    """Reference per-triangle accumulation (no-NumPy fallback)."""
    counts: Dict[Edge, int] = {e: 0 for e in graph.edges()}
    for t in enumerate_triangles(graph):
        for e in triangle_edges(t):
            counts[e] += 1
    return counts


def per_vertex_triangle_counts(graph: Graph) -> Dict[int, int]:
    """Return ``{v: number of triangles containing v}`` for every vertex."""
    counts: Dict[int, int] = {v: 0 for v in graph.vertices()}
    for a, b, c in enumerate_triangles(graph):
        counts[a] += 1
        counts[b] += 1
        counts[c] += 1
    return counts


def min_te_assignment(graph: Graph) -> Dict[Triangle, Edge]:
    """The paper's ideal assignment rule, computed exactly.

    Each triangle is assigned to its contained edge with the smallest
    ``t_e``; ties are broken by canonical edge order so the rule is
    deterministic ("breaking ties arbitrarily (but consistently)",
    Section 4).  Unlike the streaming approximation, nothing is left
    unassigned.
    """
    te = per_edge_triangle_counts(graph)
    assignment: Dict[Triangle, Edge] = {}
    for t in enumerate_triangles(graph):
        assignment[t] = min(triangle_edges(t), key=lambda e: (te[e], e))
    return assignment


@dataclass(frozen=True)
class TriangleStatistics:
    """Exact triangle-related quantities of a graph, bundled for reporting.

    Attributes mirror the paper's notation: ``triangle_count`` is ``T``,
    ``per_edge`` is ``{e: t_e}``, ``max_te`` is ``max_e t_e`` (the quantity
    ``J`` in the Pagh-Tsourakakis row of Table 1), and
    ``assigned_per_edge`` / ``max_assigned`` are ``tau_e`` / ``tau_max``
    under the exact min-``t_e`` assignment rule.
    """

    triangle_count: int
    per_edge: Dict[Edge, int] = field(repr=False)
    max_te: int
    assigned_per_edge: Dict[Edge, int] = field(repr=False)
    max_assigned: int

    @property
    def total_assigned(self) -> int:
        """Total assigned triangles (equals ``triangle_count`` for the exact rule)."""
        return sum(self.assigned_per_edge.values())


def triangle_statistics(graph: Graph) -> TriangleStatistics:
    """Compute :class:`TriangleStatistics` for ``graph`` in one sweep."""
    te = per_edge_triangle_counts(graph)
    assigned: Dict[Edge, int] = {e: 0 for e in te}
    count = 0
    for t in enumerate_triangles(graph):
        count += 1
        target = min(triangle_edges(t), key=lambda e: (te[e], e))
        assigned[target] += 1
    return TriangleStatistics(
        triangle_count=count,
        per_edge=te,
        max_te=max(te.values(), default=0),
        assigned_per_edge=assigned,
        max_assigned=max(assigned.values(), default=0),
    )
