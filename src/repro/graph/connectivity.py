"""Connected components (iterative BFS).

Workload characterization needs component structure: a generator bug that
leaves a workload disconnected in surprising ways (e.g. a planted gadget
accidentally isolated) changes what an experiment measures.  The E0 table
and the suite tests use these helpers as tripwires.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from .adjacency import Graph


def connected_components(graph: Graph) -> List[List[int]]:
    """Return the vertex sets of all connected components.

    Components are listed largest-first (ties by smallest member); each
    component's vertices are sorted.  Iterative BFS - no recursion-depth
    hazards on path-like graphs.
    """
    seen: set[int] = set()
    components: List[List[int]] = []
    for start in graph.vertices():
        if start in seen:
            continue
        queue = deque([start])
        seen.add(start)
        members = [start]
        while queue:
            v = queue.popleft()
            for w in graph.neighbors(v):
                if w not in seen:
                    seen.add(w)
                    members.append(w)
                    queue.append(w)
        components.append(sorted(members))
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def component_sizes(graph: Graph) -> List[int]:
    """Component sizes, largest first."""
    return [len(c) for c in connected_components(graph)]


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one component (empty graphs count as
    connected by convention)."""
    return len(connected_components(graph)) <= 1


def giant_component_fraction(graph: Graph) -> float:
    """Fraction of vertices in the largest component (0.0 for empty)."""
    sizes = component_sizes(graph)
    if not sizes:
        return 0.0
    return sizes[0] / graph.num_vertices


def component_labels(graph: Graph) -> Dict[int, int]:
    """Map each vertex to its component index (in largest-first order)."""
    labels: Dict[int, int] = {}
    for index, component in enumerate(connected_components(graph)):
        for v in component:
            labels[v] = index
    return labels
