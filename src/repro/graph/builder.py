"""Policy-configurable graph construction.

:class:`GraphBuilder` sits between raw edge sources (files, generators,
streams replayed for validation) and :class:`~repro.graph.adjacency.Graph`.
It centralizes the input-sanitation policies that differ between use cases:
real-world edge lists often contain duplicates and self-loops that should be
dropped, while generator output should be pristine and any anomaly is a bug.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import GraphError
from ..types import Edge, canonical_edge
from .adjacency import Graph


class GraphBuilder:
    """Incrementally assemble a :class:`Graph` under an explicit policy.

    Parameters
    ----------
    on_duplicate:
        ``"error"`` (default) raises on a repeated undirected edge,
        ``"ignore"`` silently drops repeats.
    on_self_loop:
        ``"error"`` (default) raises on ``u == u`` edges, ``"ignore"`` drops
        them.
    """

    _POLICIES = ("error", "ignore")

    def __init__(self, on_duplicate: str = "error", on_self_loop: str = "error") -> None:
        if on_duplicate not in self._POLICIES:
            raise GraphError(f"on_duplicate must be one of {self._POLICIES}")
        if on_self_loop not in self._POLICIES:
            raise GraphError(f"on_self_loop must be one of {self._POLICIES}")
        self._on_duplicate = on_duplicate
        self._on_self_loop = on_self_loop
        self._edges: set[Edge] = set()
        self._vertices: set[int] = set()
        self._dropped_duplicates = 0
        self._dropped_self_loops = 0

    # -- statistics --------------------------------------------------------

    @property
    def dropped_duplicates(self) -> int:
        """Number of duplicate edges dropped under the ``ignore`` policy."""
        return self._dropped_duplicates

    @property
    def dropped_self_loops(self) -> int:
        """Number of self-loops dropped under the ``ignore`` policy."""
        return self._dropped_self_loops

    @property
    def num_edges(self) -> int:
        """Number of accepted edges so far."""
        return len(self._edges)

    # -- construction ------------------------------------------------------

    def add_vertex(self, v: int) -> "GraphBuilder":
        """Register an (possibly isolated) vertex; returns ``self``."""
        if v < 0:
            raise GraphError(f"negative vertex id {v}")
        self._vertices.add(v)
        return self

    def add_edge(self, u: int, v: int) -> "GraphBuilder":
        """Add one edge under the configured policies; returns ``self``."""
        if u == v:
            if self._on_self_loop == "error":
                raise GraphError(f"self-loop ({u}, {v})")
            self._dropped_self_loops += 1
            return self
        e = canonical_edge(u, v)
        if e in self._edges:
            if self._on_duplicate == "error":
                raise GraphError(f"duplicate edge {e}")
            self._dropped_duplicates += 1
            return self
        self._edges.add(e)
        self._vertices.update(e)
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Add many edges; returns ``self``."""
        for u, v in edges:
            self.add_edge(u, v)
        return self

    def build(self) -> Graph:
        """Return the assembled :class:`Graph` (builder stays reusable)."""
        g = Graph(vertices=self._vertices)
        for u, v in sorted(self._edges):
            g.add_edge_unchecked(u, v)
        return g
