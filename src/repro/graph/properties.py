"""Scalar and per-element graph properties used by the paper's analysis.

The central quantity is the *edge degree* ``d_e = min(d_u, d_v)`` and its sum
``d_E = sum_e d_e``, which Lemma 3.1 (Chiba-Nishizeki) bounds by ``2 m kappa``.
Wedge counts and clustering coefficients are needed by the Jha-Seshadhri-
Pinar baseline and by the workload characterization tables in the benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Tuple

from ..errors import GraphError
from ..types import Edge, canonical_edge
from .adjacency import Graph


def edge_degree(graph: Graph, edge: Edge) -> int:
    """Return ``d_e = min(d_u, d_v)`` for ``edge = (u, v)`` (Section 3)."""
    u, v = edge
    return min(graph.degree(u), graph.degree(v))


def edge_neighborhood_owner(graph: Graph, edge: Edge) -> int:
    """Return the endpoint whose neighborhood defines ``N(e)``.

    Per Section 3: ``N(e) = N(u)`` if ``d_u < d_v`` else ``N(v)``.  Ties go
    to the higher-id endpoint, matching the paper's "otherwise" branch where
    ``N(e) = N(v)`` when ``d_u >= d_v``.
    """
    u, v = canonical_edge(*edge)
    if not graph.has_edge(u, v):
        raise GraphError(f"edge ({u}, {v}) not in graph")
    return u if graph.degree(u) < graph.degree(v) else v


def edge_degree_sum(graph: Graph) -> int:
    """Return ``d_E = sum_{e in E} d_e``.

    Lemma 3.1 guarantees ``d_E <= 2 m kappa``; benchmark E5 verifies this
    inequality empirically across all workload families.
    """
    return sum(edge_degree(graph, e) for e in graph.edges())


def wedge_count(graph: Graph) -> int:
    """Return the number of wedges (paths of length two), ``sum_v C(d_v, 2)``."""
    return sum(d * (d - 1) // 2 for d in graph.degrees().values())


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Return ``{degree: number of vertices with that degree}``."""
    return dict(Counter(graph.degrees().values()))


def clustering_coefficients(graph: Graph) -> Dict[int, float]:
    """Return the local clustering coefficient of every vertex.

    ``c_v = (triangles through v) / C(d_v, 2)``; vertices of degree < 2 get
    coefficient 0.0 by convention.
    """
    from .triangles import per_vertex_triangle_counts  # local import: avoids cycle

    tri = per_vertex_triangle_counts(graph)
    coeffs: Dict[int, float] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        wedges = d * (d - 1) // 2
        coeffs[v] = tri[v] / wedges if wedges else 0.0
    return coeffs


def global_clustering_coefficient(graph: Graph) -> float:
    """Return the transitivity ``3T / W`` (0.0 for wedge-free graphs).

    This is the "high triangle density" statistic the paper cites as a
    common property of real-world graphs (Section 1.1).
    """
    from .triangles import count_triangles  # local import: avoids cycle

    wedges = wedge_count(graph)
    if wedges == 0:
        return 0.0
    return 3 * count_triangles(graph) / wedges


def summary(graph: Graph) -> Dict[str, float]:
    """Return the workload-characterization row used by benchmark tables.

    Keys: ``n, m, T, kappa, d_E, max_degree, wedges, transitivity``.
    """
    from .degeneracy import degeneracy  # local import: avoids cycle
    from .triangles import count_triangles

    t = count_triangles(graph)
    wedges = wedge_count(graph)
    return {
        "n": graph.num_vertices,
        "m": graph.num_edges,
        "T": t,
        "kappa": degeneracy(graph),
        "d_E": edge_degree_sum(graph),
        "max_degree": graph.max_degree(),
        "wedges": wedges,
        "transitivity": (3 * t / wedges) if wedges else 0.0,
    }
