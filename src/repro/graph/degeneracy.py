"""Degeneracy, core decomposition, and degeneracy orderings.

The degeneracy ``kappa(G)`` (Definition 1.1 of the paper) is the largest
minimum degree over all subgraphs of ``G``.  The classic linear-time
algorithm of Matula and Beck computes it by repeatedly removing a
minimum-degree vertex; the largest degree observed at removal time equals the
degeneracy, the removal order is a *degeneracy ordering*, and the observed
degrees give the *core numbers* used throughout network science.

This module implements the bucket-queue version of Matula-Beck, which runs in
O(n + m) time, and exposes the three artifacts the rest of the library needs:

* :func:`degeneracy` - the scalar ``kappa``;
* :func:`degeneracy_ordering` - a removal order with all later-neighbors
  counts at most ``kappa`` (used by the lower-bound construction analysis and
  by compact-forward triangle counting);
* :func:`core_decomposition` - per-vertex core numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .adjacency import Graph


@dataclass(frozen=True)
class CoreDecomposition:
    """Full output of the Matula-Beck peeling procedure.

    Attributes
    ----------
    degeneracy:
        The graph degeneracy ``kappa`` (0 for edgeless graphs).
    ordering:
        Vertices in removal order.  For every vertex, the number of its
        neighbors appearing *later* in this order is at most ``degeneracy``.
    core_numbers:
        Mapping vertex -> core number (the largest ``k`` such that the vertex
        belongs to a subgraph of minimum degree ``k``).
    """

    degeneracy: int
    ordering: List[int]
    core_numbers: Dict[int, int]

    def k_core_vertices(self, k: int) -> List[int]:
        """Return the vertices of the ``k``-core (core number >= ``k``)."""
        return [v for v, c in self.core_numbers.items() if c >= k]


def core_decomposition(graph: Graph) -> CoreDecomposition:
    """Run the peeling procedure and return the full decomposition.

    With NumPy available, peeling runs *layered* over the CSR view
    (:meth:`~repro.graph.adjacency.Graph.csr`): every round removes the
    entire set of vertices whose residual degree is at most the current
    ``kappa`` at once, decrementing neighbor degrees with one vectorized
    ``bincount`` over the frontier's CSR slices.  This removes the
    per-edge Python work of the classic bucket queue while producing the
    same core numbers and a valid degeneracy ordering (every vertex in a
    frontier has residual degree <= kappa counting frontier-mates and
    later vertices, so its later-neighbor count is <= kappa regardless of
    intra-frontier order).  The bucket-queue reference implementation is
    kept as the no-NumPy fallback.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        return _core_decomposition_bucketqueue(graph)

    n = graph.num_vertices
    if n == 0:
        return CoreDecomposition(degeneracy=0, ordering=[], core_numbers={})
    csr = graph.csr()
    indptr, indices = csr.indptr, csr.indices
    degrees = csr.degrees.astype(np.int64, copy=True)
    present = np.ones(n, dtype=bool)
    core = np.zeros(n, dtype=np.int64)
    ordering_parts = []
    kappa = 0
    remaining = n
    frontier = np.flatnonzero(degrees <= 0)
    while remaining:
        if len(frontier) == 0:
            kappa = int(degrees[present].min())
            frontier = np.flatnonzero(present & (degrees <= kappa))
        core[frontier] = kappa
        ordering_parts.append(frontier)
        present[frontier] = False
        remaining -= len(frontier)
        touched = _gather_neighbors(np, indptr, indices, frontier)
        touched = touched[present[touched]]
        if len(touched):
            degrees -= np.bincount(touched, minlength=n)
            # Only just-touched vertices can have newly dropped to <= kappa.
            eligible = np.unique(touched)
            frontier = eligible[degrees[eligible] <= kappa]
        else:
            frontier = touched  # empty
    ordering_dense = np.concatenate(ordering_parts)
    vertex_ids = csr.vertex_ids
    ordering = vertex_ids[ordering_dense].tolist()
    core_numbers = dict(zip(vertex_ids.tolist(), core.tolist()))
    return CoreDecomposition(
        degeneracy=int(core.max()), ordering=ordering, core_numbers=core_numbers
    )


def _gather_neighbors(np, indptr, indices, verts):
    """Concatenated CSR neighbor slices of ``verts`` (vectorized gather)."""
    counts = indptr[verts + 1] - indptr[verts]
    total = int(counts.sum())
    if total == 0:
        return indices[:0]
    prefix = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]))
    offsets = np.repeat(indptr[verts] - prefix, counts)
    return indices[np.arange(total, dtype=np.int64) + offsets]


def _core_decomposition_bucketqueue(graph: Graph) -> CoreDecomposition:
    """Reference Matula-Beck peeling with a Python bucket queue (O(n + m))."""
    degrees = graph.degrees()
    n = len(degrees)
    if n == 0:
        return CoreDecomposition(degeneracy=0, ordering=[], core_numbers={})

    max_deg = max(degrees.values(), default=0)
    # buckets[d] holds vertices whose current (residual) degree is d.
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v, d in degrees.items():
        buckets[d].append(v)

    removed: set[int] = set()
    ordering: List[int] = []
    core_numbers: Dict[int, int] = {}
    kappa = 0
    current = 0  # lowest bucket that may be non-empty

    for _ in range(n):
        # Vertices are appended to a new bucket when their degree drops but
        # never deleted from the old one, so buckets can contain stale
        # entries.  Pop until a fresh entry is found, advancing `current`
        # whenever the bucket at hand runs dry.  `current` is rewound in the
        # neighbor-update loop below, so this scan is amortized O(n + m).
        v = None
        while v is None:
            while current <= max_deg and not buckets[current]:
                current += 1
            candidate = buckets[current].pop()
            if candidate not in removed and degrees[candidate] == current:
                v = candidate

        kappa = max(kappa, current)
        core_numbers[v] = kappa
        ordering.append(v)
        removed.add(v)
        for w in graph.neighbors(v):
            if w in removed:
                continue
            degrees[w] -= 1
            buckets[degrees[w]].append(w)
            if degrees[w] < current:
                current = degrees[w]

    return CoreDecomposition(degeneracy=kappa, ordering=ordering, core_numbers=core_numbers)


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy ``kappa`` of ``graph`` (Definition 1.1)."""
    return core_decomposition(graph).degeneracy


def degeneracy_ordering(graph: Graph) -> List[int]:
    """Return the strict minimum-degree-first degeneracy ordering.

    In the returned order, every vertex has at most ``kappa`` neighbors that
    appear after it.  This is the ordering used in the paper's Theorem 6.3
    argument (``kappa <= d^<_max``) and by compact-forward triangle counting.

    Unlike :func:`core_decomposition`'s layered peel (which removes whole
    frontiers at once), this is the *strict* Matula-Beck removal order -
    one minimum-residual-degree vertex per step - computed with the
    Batagelj-Zaversnik bucket arrays over the cached CSR view
    (:meth:`~repro.graph.adjacency.Graph.csr`): ``vert`` holds the
    vertices sorted by residual degree, ``pos`` its inverse, and
    ``bin_start[d]`` the front of each degree bucket, so each removal
    updates all touched neighbors with a few vectorized moves per distinct
    neighbor degree instead of one interpreter iteration per edge.  The
    NumPy path and the pure-Python fallback implement the same abstract
    peel (same bucket moves, same tie-breaks) and return identical
    orderings; ``tests/test_graph_degeneracy.py`` pins that parity against
    the Matula-Beck bucket-queue reference.
    """
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        return _strict_ordering_reference(graph)

    n = graph.num_vertices
    if n == 0:
        return []
    csr = graph.csr()
    indptr, indices = csr.indptr, csr.indices
    deg = csr.degrees.astype(np.int64, copy=True)
    max_deg = int(deg.max())
    vert = np.argsort(deg, kind="stable")
    pos = np.empty(n, dtype=np.int64)
    pos[vert] = np.arange(n, dtype=np.int64)
    counts = np.bincount(deg, minlength=max_deg + 1)
    bin_start = np.zeros(max_deg + 1, dtype=np.int64)
    np.cumsum(counts[:-1], out=bin_start[1:])
    for i in range(n):
        v = vert[i]
        d = deg[v]
        # Retire position i: the degree-d bucket now starts past the popped
        # vertex, so equal-degree neighbors decremented below can land at
        # the live front (position i+1) and be popped next - the strict
        # minimum-*residual*-degree semantics of Matula-Beck, not the
        # frozen-degree k-core variant.
        bin_start[d] = i + 1
        neighbors = indices[indptr[v] : indptr[v + 1]]
        # Liveness is positional: popped vertices stay in the prefix.
        cand = neighbors[pos[neighbors] > i]
        if not len(cand):
            continue
        cand_deg = deg[cand]
        for du in np.unique(cand_deg):
            ws = cand[cand_deg == du]
            k = len(ws)
            start = bin_start[du]
            cur = pos[ws]
            # Batched front-of-bucket move: the k movers swap with the
            # first k slots of bucket du (members already inside that
            # window stay put; out-of-window movers pair with the freed
            # slots in ascending position order - the deterministic
            # tie-break the pure-Python reference mirrors).
            in_window = cur < start + k
            taken = np.zeros(k, dtype=bool)
            taken[cur[in_window] - start] = True
            free_slots = start + np.flatnonzero(~taken)
            mover_positions = np.sort(cur[~in_window])
            if len(mover_positions):
                mover_verts = vert[mover_positions]
                occupants = vert[free_slots]
                vert[free_slots] = mover_verts
                vert[mover_positions] = occupants
                pos[mover_verts] = free_slots
                pos[occupants] = mover_positions
            bin_start[du] += k
            deg[ws] -= 1
    return csr.vertex_ids[vert].tolist()


def _strict_ordering_reference(graph: Graph) -> List[int]:
    """Pure-Python mirror of :func:`degeneracy_ordering`'s bucket-array peel.

    Implements the identical abstract algorithm (dense ids in ascending
    vertex order, sorted adjacency, same batched bucket moves and
    tie-breaks) with scalar loops, so the two paths return *equal*
    orderings - this is the parity oracle for the vectorized peel, and the
    fallback when NumPy is absent.
    """
    vertex_ids = sorted(graph.degrees())
    n = len(vertex_ids)
    if n == 0:
        return []
    dense = {v: i for i, v in enumerate(vertex_ids)}
    adjacency = [
        sorted(dense[w] for w in graph.neighbors(v)) for v in vertex_ids
    ]
    deg = [len(nbrs) for nbrs in adjacency]
    vert = sorted(range(n), key=lambda v: deg[v])  # stable, like argsort
    pos = [0] * n
    for i, v in enumerate(vert):
        pos[v] = i
    max_deg = max(deg)
    counts = [0] * (max_deg + 1)
    for d in deg:
        counts[d] += 1
    bin_start = [0] * (max_deg + 1)
    for d in range(1, max_deg + 1):
        bin_start[d] = bin_start[d - 1] + counts[d - 1]
    for i in range(n):
        v = vert[i]
        d = deg[v]
        bin_start[d] = i + 1  # retire the popped position (see NumPy path)
        by_degree: Dict[int, List[int]] = {}
        for w in adjacency[v]:
            if pos[w] > i:  # positional liveness, all live neighbors move
                by_degree.setdefault(deg[w], []).append(w)
        for du in sorted(by_degree):
            ws = by_degree[du]
            k = len(ws)
            start = bin_start[du]
            window = set(range(start, start + k))
            taken = {pos[w] for w in ws if pos[w] in window}
            free_slots = sorted(window - taken)
            mover_positions = sorted(pos[w] for w in ws if pos[w] not in window)
            for slot, at in zip(free_slots, mover_positions):
                mover, occupant = vert[at], vert[slot]
                vert[slot], vert[at] = mover, occupant
                pos[mover], pos[occupant] = slot, at
            bin_start[du] += k
            for w in ws:
                deg[w] -= 1
    return [vertex_ids[v] for v in vert]


def later_neighbor_counts(graph: Graph, ordering: List[int]) -> Dict[int, int]:
    """Return, for each vertex, its number of neighbors later in ``ordering``.

    The maximum of these values upper-bounds the degeneracy for *any* total
    ordering (the characterization used in the proof of Theorem 6.3), and for
    a degeneracy ordering it equals the degeneracy exactly on at least one
    vertex.
    """
    position = {v: i for i, v in enumerate(ordering)}
    counts: Dict[int, int] = {}
    for v in ordering:
        counts[v] = sum(1 for w in graph.neighbors(v) if position[w] > position[v])
    return counts
