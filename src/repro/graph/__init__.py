"""Static graph substrate: adjacency structure, degeneracy, exact triangles.

This package is the "ground truth" layer.  The streaming estimators never see
a :class:`~repro.graph.adjacency.Graph`; they consume
:class:`~repro.streams.base.EdgeStream` objects.  The graph layer exists to

* generate workloads (together with :mod:`repro.generators`),
* compute exact quantities that the paper's analysis refers to
  (degeneracy ``kappa``, exact triangle count ``T``, per-edge triangle
  counts ``t_e``, ``d_E = sum_e d_e``), and
* validate the estimators in tests and benchmarks.
"""

from .adjacency import CSRAdjacency, Graph
from .builder import GraphBuilder
from .degeneracy import CoreDecomposition, core_decomposition, degeneracy, degeneracy_ordering
from .properties import (
    clustering_coefficients,
    degree_histogram,
    edge_degree,
    edge_degree_sum,
    global_clustering_coefficient,
    wedge_count,
)
from .triangles import (
    TriangleStatistics,
    count_triangles,
    count_triangles_node_iterator,
    enumerate_triangles,
    min_te_assignment,
    per_edge_triangle_counts,
    per_vertex_triangle_counts,
    triangle_statistics,
    triangles_through_edge,
)
from .arboricity import arboricity_bounds, nash_williams_lower_bound
from .connectivity import (
    component_sizes,
    connected_components,
    giant_component_fraction,
    is_connected,
)

__all__ = [
    "CSRAdjacency",
    "Graph",
    "GraphBuilder",
    "CoreDecomposition",
    "core_decomposition",
    "degeneracy",
    "degeneracy_ordering",
    "edge_degree",
    "edge_degree_sum",
    "wedge_count",
    "degree_histogram",
    "clustering_coefficients",
    "global_clustering_coefficient",
    "TriangleStatistics",
    "count_triangles",
    "count_triangles_node_iterator",
    "enumerate_triangles",
    "per_edge_triangle_counts",
    "per_vertex_triangle_counts",
    "triangles_through_edge",
    "triangle_statistics",
    "min_te_assignment",
    "arboricity_bounds",
    "nash_williams_lower_bound",
    "connected_components",
    "component_sizes",
    "is_connected",
    "giant_component_fraction",
]
