"""Common interface for baseline streaming triangle estimators.

Every baseline exposes the same contract as the paper's algorithm: consume
an :class:`~repro.streams.base.EdgeStream` through a
:class:`~repro.streams.multipass.PassScheduler`, charge storage to a
:class:`~repro.streams.space.SpaceMeter`, and return a
:class:`BaselineResult`.  This uniformity is what lets experiment E1 build
one comparison table across all algorithms.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..streams.base import EdgeStream
from ..streams.space import SpaceMeter


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of one baseline run: estimate plus resource accounting."""

    estimate: float
    passes_used: int
    space_words_peak: int
    extras: Dict[str, float] = field(default_factory=dict)


class BaselineEstimator(ABC):
    """Abstract base for all baseline estimators.

    Subclasses define :attr:`name`, :attr:`passes_required` and
    :meth:`_run`; the public :meth:`estimate` wraps space metering.
    """

    #: short identifier used by the registry and in benchmark tables
    name: str = "baseline"
    #: number of passes one run consumes (upper bound)
    passes_required: int = 1

    def estimate(self, stream: EdgeStream, meter: Optional[SpaceMeter] = None) -> BaselineResult:
        """Run the estimator over ``stream`` and return its result."""
        meter = meter if meter is not None else SpaceMeter()
        return self._run(stream, meter)

    @abstractmethod
    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        """Algorithm body; must respect the streaming discipline."""
