"""Jha-Seshadhri-Pinar [37]-style wedge sampling.

The original is a one-pass "birthday paradox" algorithm whose estimate
carries an additive ``+-eps*W`` error, ``W`` the wedge count - the Table 1
row ``O~(m/sqrt(T))`` (the paper notes it is "not directly comparable").
We implement the transparent multi-pass variant built on the same estimator
(the closed-wedge fraction):

1. pass 1 counts every vertex degree, giving the exact wedge count
   ``W = sum_v C(d_v, 2)`` and the per-vertex wedge weights;
2. ``k`` wedges are drawn proportionally (center by wedge weight, then a
   uniform pair of distinct neighbor *indices*); pass 2 materializes the
   chosen neighbor indices into vertices;
3. pass 3 checks which sampled wedges are closed; the closed fraction times
   ``W / 3`` estimates ``T``.

Fidelity note: the degree table costs ``Theta(n)`` words - more than the
original's sketching tricks.  The meter charges it under the separate
category ``degree-index`` so experiment E1 can report sample space and
index space side by side (the *sampling* space is ``O(k)``, matching the
additive-error analysis).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..errors import ParameterError
from ..sampling.discrete import CumulativeSampler
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from .base import BaselineEstimator, BaselineResult


class JSPWedgeEstimator(BaselineEstimator):
    """Three-pass exact-wedge-sampling estimator with ``k`` wedge samples."""

    name = "jsp-wedge"
    passes_required = 3

    def __init__(self, wedge_samples: int, rng: random.Random) -> None:
        if wedge_samples < 1:
            raise ParameterError(f"wedge_samples must be >= 1, got {wedge_samples}")
        self._k = wedge_samples
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=self.passes_required)

        # Pass 1: full degree table (charged as index space, see module doc).
        degree: Dict[Vertex, int] = {}
        for u, v in scheduler.new_pass():
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        meter.allocate(len(degree), "degree-index")

        vertices: List[Vertex] = sorted(degree)
        wedge_weight = [degree[v] * (degree[v] - 1) / 2.0 for v in vertices]
        total_wedges = sum(wedge_weight)
        if total_wedges == 0:
            return BaselineResult(0.0, scheduler.passes_used, meter.peak_words)

        # Draw k wedge centers proportional to C(d, 2), then per wedge a
        # uniform unordered pair of neighbor indices in [0, d).
        sampler = CumulativeSampler(wedge_weight)
        centers = [vertices[sampler.draw(self._rng)] for _ in range(self._k)]
        index_pairs: List[Tuple[int, int]] = []
        for c in centers:
            d = degree[c]
            i = self._rng.randrange(d)
            j = self._rng.randrange(d - 1)
            if j >= i:
                j += 1
            index_pairs.append((min(i, j), max(i, j)))
        meter.allocate(3 * self._k, "wedge-samples")

        # Pass 2: materialize neighbor indices into actual neighbors by
        # counting each center's incident edges in stream order.
        by_center: Dict[Vertex, List[int]] = {}
        for sample_id, c in enumerate(centers):
            by_center.setdefault(c, []).append(sample_id)
        seen_count: Dict[Vertex, int] = {c: 0 for c in by_center}
        endpoints: List[List[Vertex]] = [[] for _ in range(self._k)]
        for a, b in scheduler.new_pass():
            for center, neighbor in ((a, b), (b, a)):
                if center not in seen_count:
                    continue
                idx = seen_count[center]
                seen_count[center] = idx + 1
                for sample_id in by_center[center]:
                    lo, hi = index_pairs[sample_id]
                    if idx == lo or idx == hi:
                        endpoints[sample_id].append(neighbor)

        # Pass 3: a wedge (x, c, y) is closed iff edge (x, y) is present.
        watch: Dict[Edge, List[int]] = {}
        for sample_id, ends in enumerate(endpoints):
            if len(ends) == 2 and ends[0] != ends[1]:
                watch.setdefault(canonical_edge(ends[0], ends[1]), []).append(sample_id)
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
        closed = [False] * self._k
        for edge in scheduler.new_pass():
            for sample_id in watch.get(edge, ()):
                closed[sample_id] = True

        closed_fraction = sum(closed) / self._k
        estimate = closed_fraction * total_wedges / 3.0
        return BaselineResult(
            estimate=estimate,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={"wedges": total_wedges, "closed_fraction": closed_fraction},
        )
