"""McGregor-Vorotnikova-Vu heavy/light decomposition, ``O~(m/sqrt(T))``.

The multi-pass ``O~(m/sqrt(T))`` bound of [46] splits work by a degree
threshold ``theta``:

* *heavy* vertices (degree > ``theta``): there are fewer than
  ``2m / theta`` of them.  All triangles whose three corners are heavy are
  counted *exactly* on the stored heavy-induced subgraph.
* triangles with at least one *light* corner are estimated by wedge
  sampling restricted to light centers: a closed sampled wedge at light
  center ``c`` contributes ``1 / L(tau)``, where ``L(tau)`` is the number
  of light corners of the triangle - each triangle then contributes
  exactly 1 in expectation per unit of sampled mass.  Light wedge mass is
  at most ``m * theta``, so ``O~(m * theta / T)`` samples give relative
  error; ``theta ~ sqrt(T)`` balances the two sides at ``O~(m/sqrt(T))``.

Fidelity notes: (a) like :mod:`~repro.baselines.jsp_wedge`, a full degree
table (``Theta(n)`` words, category ``degree-index``) replaces the
original's thresholding tricks; (b) the heavy-induced subgraph is stored
verbatim (category ``heavy-subgraph``) - in adversarial instances that can
exceed the paper bound, and the meter will show it, which is itself a
datapoint E1 reports.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from ..errors import ParameterError
from ..sampling.combine import mean
from ..sampling.discrete import CumulativeSampler
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from .base import BaselineEstimator, BaselineResult


class MVVHeavyLightEstimator(BaselineEstimator):
    """Three-pass heavy/light estimator.

    Parameters
    ----------
    theta:
        Degree threshold separating heavy from light vertices (the analysis
        wants ``theta ~ sqrt(T)``; the harness derives it from a ``T`` hint).
    wedge_samples:
        Number of light-centered wedge samples (``O~(m * theta / T)`` for
        relative error).
    rng:
        Source of randomness.
    """

    name = "mvv-heavy-light"
    passes_required = 3

    def __init__(self, theta: float, wedge_samples: int, rng: random.Random) -> None:
        if theta <= 0:
            raise ParameterError(f"theta must be positive, got {theta}")
        if wedge_samples < 1:
            raise ParameterError(f"wedge_samples must be >= 1, got {wedge_samples}")
        self._theta = theta
        self._k = wedge_samples
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=self.passes_required)

        # Pass 1: degree table -> heavy set and light wedge weights.
        degree: Dict[Vertex, int] = {}
        for u, v in scheduler.new_pass():
            degree[u] = degree.get(u, 0) + 1
            degree[v] = degree.get(v, 0) + 1
        meter.allocate(len(degree), "degree-index")
        heavy: Set[Vertex] = {v for v, d in degree.items() if d > self._theta}

        light_vertices = sorted(v for v in degree if v not in heavy)
        light_weight = [degree[v] * (degree[v] - 1) / 2.0 for v in light_vertices]
        light_wedges = sum(light_weight)

        # Choose wedge samples: center ~ light wedge mass, then a uniform
        # unordered pair of neighbor indices.
        centers: List[Vertex] = []
        index_pairs: List[Tuple[int, int]] = []
        if light_wedges > 0:
            sampler = CumulativeSampler(light_weight)
            for _ in range(self._k):
                c = light_vertices[sampler.draw(self._rng)]
                d = degree[c]
                i = self._rng.randrange(d)
                j = self._rng.randrange(d - 1)
                if j >= i:
                    j += 1
                centers.append(c)
                index_pairs.append((min(i, j), max(i, j)))
            meter.allocate(3 * self._k, "wedge-samples")

        # Pass 2: materialize wedge endpoints; collect the heavy-induced
        # subgraph for exact all-heavy counting.
        by_center: Dict[Vertex, List[int]] = {}
        for sample_id, c in enumerate(centers):
            by_center.setdefault(c, []).append(sample_id)
        seen_count: Dict[Vertex, int] = {c: 0 for c in by_center}
        endpoints: List[List[Vertex]] = [[] for _ in range(len(centers))]
        heavy_adj: Dict[Vertex, Set[Vertex]] = {}
        heavy_edges = 0
        for a, b in scheduler.new_pass():
            if a in heavy and b in heavy:
                heavy_adj.setdefault(a, set()).add(b)
                heavy_adj.setdefault(b, set()).add(a)
                heavy_edges += 1
                meter.allocate(2, "heavy-subgraph")
            for center, neighbor in ((a, b), (b, a)):
                if center not in seen_count:
                    continue
                idx = seen_count[center]
                seen_count[center] = idx + 1
                for sample_id in by_center[center]:
                    lo, hi = index_pairs[sample_id]
                    if idx == lo or idx == hi:
                        endpoints[sample_id].append(neighbor)

        heavy_triangles = _count_triangles_adj(heavy_adj)

        # Pass 3: closure checks for the light-centered wedges.
        watch: Dict[Edge, List[int]] = {}
        for sample_id, ends in enumerate(endpoints):
            if len(ends) == 2 and ends[0] != ends[1]:
                watch.setdefault(canonical_edge(ends[0], ends[1]), []).append(sample_id)
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
        closed = [False] * len(centers)
        for edge in scheduler.new_pass():
            for sample_id in watch.get(edge, ()):
                closed[sample_id] = True

        light_estimate = 0.0
        if centers:
            contributions: List[float] = []
            for sample_id, c in enumerate(centers):
                if not closed[sample_id]:
                    contributions.append(0.0)
                    continue
                x, y = endpoints[sample_id]
                light_corners = sum(1 for v in (x, c, y) if v not in heavy)
                contributions.append(1.0 / light_corners)
            light_estimate = light_wedges * mean(contributions)

        return BaselineResult(
            estimate=light_estimate + heavy_triangles,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={
                "heavy_vertices": float(len(heavy)),
                "heavy_edges": float(heavy_edges),
                "heavy_triangles": float(heavy_triangles),
                "light_wedges": light_wedges,
            },
        )


def _count_triangles_adj(adjacency: Dict[Vertex, Set[Vertex]]) -> int:
    """Edge-iterator exact triangle count on a small adjacency dict."""
    total = 0
    for u, nbrs in adjacency.items():
        for v in nbrs:
            if u < v:
                nu, nv = adjacency[u], adjacency[v]
                small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
                total += sum(1 for w in small if w in large)
    assert total % 3 == 0
    return total // 3
