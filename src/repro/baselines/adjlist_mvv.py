"""McGregor-Vorotnikova-Vu one-pass estimator for the adjacency-list model.

The paper's Section 2 quotes [46]: in the vertex-arrival model there is a
one-pass ``O~(m/sqrt(T))``-space algorithm.  The estimator implemented
here is the classic edge-reservoir version:

* maintain a uniform ``k``-edge reservoir over the arrived edges;
* when vertex ``v`` arrives with its batch ``B`` of earlier neighbors,
  every reservoir edge ``(x, y)`` with both ``x`` and ``y`` in ``B``
  witnesses the triangle ``{x, y, v}``;
* each triangle ``{x, y, v}`` (with ``v`` its last-arriving corner) is
  witnessed iff its first edge ``(x, y)`` is in the reservoir at time
  ``v``, which happens with probability ``min(1, k / m_before)`` - the
  implementation tracks the exact inclusion probability at check time, so
  the estimate ``sum 1/p`` is exactly unbiased.

Space is ``O(k)`` words; relative variance is ``O(m * J / (k * T)) + ...``
with ``J`` the max triangles-per-edge, which on triangle-spread graphs
gives the ``m/sqrt(T)``-style behaviour the model is known for.  The
estimator only consumes :class:`~repro.streams.vertex_arrival.VertexArrivalStream`
inputs (the grouping is what makes one pass possible).
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from ..errors import ParameterError, StreamError
from ..streams.space import SpaceMeter
from ..streams.vertex_arrival import VertexArrivalStream
from ..types import Edge
from .base import BaselineResult


class AdjListMVVEstimator:
    """One-pass adjacency-list triangle estimator with a ``k``-edge reservoir.

    Not a :class:`~repro.baselines.base.BaselineEstimator` subclass: it
    consumes the richer vertex-arrival stream type, so its ``estimate``
    signature differs (taking :class:`VertexArrivalStream`).
    """

    name = "mvv-adjlist"
    passes_required = 1

    def __init__(self, reservoir_edges: int, rng: random.Random) -> None:
        if reservoir_edges < 1:
            raise ParameterError(f"reservoir_edges must be >= 1, got {reservoir_edges}")
        self._k = reservoir_edges
        self._rng = rng

    def estimate(
        self, stream: VertexArrivalStream, meter: SpaceMeter | None = None
    ) -> BaselineResult:
        """Run one pass over the vertex-arrival stream."""
        if not isinstance(stream, VertexArrivalStream):
            raise StreamError("AdjListMVVEstimator requires a VertexArrivalStream")
        meter = meter if meter is not None else SpaceMeter()
        k = self._k
        reservoir: List[Edge] = []
        arrived_edges = 0
        total = 0.0
        witnessed = 0

        for v, earlier in stream.batches():
            # Check phase first: reservoir edges internal to the batch
            # witness triangles completed by v.  The inclusion probability
            # of any already-arrived edge is min(1, k / arrived_edges).
            if len(earlier) >= 2 and reservoir:
                batch: Set[int] = set(earlier)
                p = min(1.0, k / arrived_edges)
                for x, y in reservoir:
                    if x in batch and y in batch:
                        total += 1.0 / p
                        witnessed += 1
            # Insert phase: offer v's batch edges to the reservoir
            # (Algorithm R over the edge sequence).
            for u in earlier:
                arrived_edges += 1
                edge: Edge = (u, v) if u < v else (v, u)
                if len(reservoir) < k:
                    reservoir.append(edge)
                    meter.allocate(2, "reservoir")
                else:
                    j = self._rng.randrange(arrived_edges)
                    if j < k:
                        reservoir[j] = edge
        return BaselineResult(
            estimate=total,
            passes_used=1,
            space_words_peak=meter.peak_words,
            extras={"witnessed": float(witnessed)},
        )
