"""Buriol et al. [14]: uniform edge + uniform vertex sampling, ``O~(mn/T)``.

The basic estimator: pick a uniform edge ``e = (u, v)`` and a uniform vertex
``w`` from ``[n]``; the pair spans a triangle with probability ``3T / (mn)``
(each triangle contributes three (edge, apex) pairs), so
``X = (m * n / 3) * 1[triangle]`` is unbiased with relative variance
``~ mn / (3T)`` - the Table 1 row ``O~(mn/T)``.

Fidelity note: the original is one-pass (it checks for the two closing
edges in the stream suffix, costing an extra ``O(1)`` bias-correction
factor); we run the transparent two-pass variant - sample in pass 1, verify
both wedge edges in pass 2 - which has exactly the stated mean and variance
and keeps the space comparison clean.  The pass count is reported honestly
as 2.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import ParameterError
from ..sampling.combine import mean
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from .base import BaselineEstimator, BaselineResult


class BuriolEstimator(BaselineEstimator):
    """Two-pass Buriol-style estimator with ``copies`` parallel instances.

    Parameters
    ----------
    copies:
        Number of (edge, vertex) samples; the paper-level analysis needs
        ``O~(mn/T)`` of them for constant relative error.
    num_vertices:
        The vertex-universe size ``n``; vertex ids are assumed to live in
        ``[0, n)`` (the model's standard "n known a priori" assumption,
        which the original algorithm also makes).
    rng:
        Source of randomness.
    """

    name = "buriol"
    passes_required = 2

    def __init__(self, copies: int, num_vertices: int, rng: random.Random) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        if num_vertices < 1:
            raise ParameterError(f"num_vertices must be >= 1, got {num_vertices}")
        self._copies = copies
        self._n = num_vertices
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=self.passes_required)
        m = len(stream)
        if m == 0:
            return BaselineResult(0.0, 0, meter.peak_words)

        # Pass 1: one i.i.d. uniform edge per copy (pre-drawn stream
        # positions, collected in a single sweep - equivalent to a per-copy
        # reservoir, m being known); apex vertices drawn uniformly from
        # [0, n) up front, independent of the stream.
        slots_by_position: Dict[int, List[int]] = {}
        for i in range(self._copies):
            slots_by_position.setdefault(self._rng.randrange(m), []).append(i)
        sampled: List[Optional[Edge]] = [None] * self._copies
        meter.allocate(2 * self._copies, "edge-sample")
        for position, edge in enumerate(scheduler.new_pass()):
            for i in slots_by_position.get(position, ()):
                sampled[i] = edge
        apexes: List[Vertex] = [self._rng.randrange(self._n) for _ in range(self._copies)]
        meter.allocate(self._copies, "apexes")

        # Pass 2: for each copy, both edges (u, w) and (v, w) must appear.
        watch: Dict[Edge, List[int]] = {}
        needed: List[int] = [0] * self._copies
        for i, e in enumerate(sampled):
            if e is None:
                continue
            u, v = e
            w = apexes[i]
            if w == u or w == v:
                continue  # degenerate apex: cannot span a triangle
            needed[i] = 2
            watch.setdefault(canonical_edge(u, w), []).append(i)
            watch.setdefault(canonical_edge(v, w), []).append(i)
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "watch")
        seen = [0] * self._copies
        for edge in scheduler.new_pass():
            for i in watch.get(edge, ()):
                seen[i] += 1

        indicator = [
            1.0 if needed[i] == 2 and seen[i] == 2 else 0.0 for i in range(self._copies)
        ]
        estimate = (m * self._n / 3.0) * mean(indicator)
        return BaselineResult(
            estimate=estimate,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={"hit_rate": mean(indicator)},
        )
