"""Streaming triangle-counting baselines from the paper's Table 1.

Each baseline is an independent estimator with explicit pass and space
accounting, so experiment E1 can put measured columns next to the paper's
predicted bounds.  The roster (see each module for the fidelity notes):

=====================  =========================  ==========================
module                 Table 1 source             space regime represented
=====================  =========================  ==========================
``exact`` (in core)    trivial                    ``Theta(m)``
``buriol``             Buriol et al. [14]         ``O~(m n / T)``
``doulion``            Tsourakakis et al. [59]    sparsification (``p m``)
``jsp_wedge``          Jha-Seshadhri-Pinar [37]   ``O~(m / sqrt(T))``-style
``pavan``              Pavan et al. [48]          ``O~(m Delta / T)``
``mvv_neighbor``       McGregor et al. [46]       ``O~(m^{3/2} / T)``
``mvv_heavy_light``    McGregor et al. [46]       ``O~(m / sqrt(T))`` multi-pass
=====================  =========================  ==========================

All baselines implement :class:`~repro.baselines.base.BaselineEstimator` and
are registered in :mod:`~repro.baselines.registry`.
"""

from .base import BaselineEstimator, BaselineResult
from .buriol import BuriolEstimator
from .doulion import DoulionEstimator
from .jsp_wedge import JSPWedgeEstimator
from .pavan import PavanEstimator
from .mvv_neighbor import MVVNeighborEstimator
from .mvv_heavy_light import MVVHeavyLightEstimator
from .registry import available_baselines, make_baseline

__all__ = [
    "BaselineEstimator",
    "BaselineResult",
    "BuriolEstimator",
    "DoulionEstimator",
    "JSPWedgeEstimator",
    "PavanEstimator",
    "MVVNeighborEstimator",
    "MVVHeavyLightEstimator",
    "available_baselines",
    "make_baseline",
]
