"""McGregor-Vorotnikova-Vu [46] style neighbor sampling, ``O~(m^{3/2}/T)``.

Basic estimator (their multi-pass scheme, also the paper's Section 4
starting point *without* degree-weighted sampling or an assignment rule):
pick a uniform edge ``e`` (pass 1); learn ``d_e`` and draw a uniform
``w ~ N(e)`` (pass 2 using per-copy degree counters, pass 3 via reservoir);
check closure (pass 4).  Then ``X = m * d_e * 1[triangle] / 3`` satisfies
``E[X] = (m/m) * sum_e d_e * (t_e / d_e) / 3 = T`` and
``Var[X] <= (m/9) * sum_e t_e * d_e <= m * max_e(d_e) * T / 3``; with
``d_e <= sqrt(2m)`` this is the ``m^{3/2}/T`` relative variance of Table 1.

Contrast with the paper: replacing the ``1/3`` split by the min-``t_e``
assignment rule and the uniform edge draw by a degree-proportional draw is
exactly what buys the improvement to ``m * kappa / T``.  Experiment E1/E3
puts the two side by side.

Fidelity note: MVV fold degree learning and neighbor sampling more tightly;
our four-pass factoring has the same estimator distribution and O(1) words
per copy.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import ParameterError
from ..sampling.combine import mean
from ..sampling.reservoir import SingleItemReservoir
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from .base import BaselineEstimator, BaselineResult


class MVVNeighborEstimator(BaselineEstimator):
    """Four-pass uniform-edge + uniform-neighbor estimator."""

    name = "mvv-neighbor"
    passes_required = 4

    def __init__(self, copies: int, rng: random.Random) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        self._copies = copies
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=self.passes_required)
        m = len(stream)
        if m == 0:
            return BaselineResult(0.0, 0, meter.peak_words)

        # Pass 1: i.i.d. uniform edges.
        slots_by_position: Dict[int, List[int]] = {}
        for i in range(self._copies):
            slots_by_position.setdefault(self._rng.randrange(m), []).append(i)
        sampled: List[Optional[Edge]] = [None] * self._copies
        meter.allocate(2 * self._copies, "edge-sample")
        for position, edge in enumerate(scheduler.new_pass()):
            for i in slots_by_position.get(position, ()):
                sampled[i] = edge

        # Pass 2: degree counters for all sampled endpoints.
        degree: Dict[Vertex, int] = {}
        for e in sampled:
            assert e is not None
            degree[e[0]] = 0
            degree[e[1]] = 0
        meter.allocate(len(degree), "degrees")
        for a, b in scheduler.new_pass():
            if a in degree:
                degree[a] += 1
            if b in degree:
                degree[b] += 1

        # Pass 3: uniform neighbor of the lower-degree endpoint, per copy.
        owners: List[Vertex] = []
        reservoirs: List[SingleItemReservoir] = []
        by_owner: Dict[Vertex, List[int]] = {}
        for i, e in enumerate(sampled):
            u, v = e  # type: ignore[misc]
            owner = u if degree[u] < degree[v] else v
            owners.append(owner)
            reservoirs.append(SingleItemReservoir(self._rng))
            by_owner.setdefault(owner, []).append(i)
        meter.allocate(2 * self._copies, "neighbor-sample")
        for a, b in scheduler.new_pass():
            for i in by_owner.get(a, ()):
                reservoirs[i].offer(b)
            for i in by_owner.get(b, ()):
                reservoirs[i].offer(a)

        # Pass 4: closure checks.
        watch: Dict[Edge, List[int]] = {}
        for i, e in enumerate(sampled):
            w = reservoirs[i].sample()
            if w is None:
                continue
            u, v = e  # type: ignore[misc]
            other = v if owners[i] == u else u
            if w == other:
                continue
            watch.setdefault(canonical_edge(other, w), []).append(i)
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
        closed = [False] * self._copies
        for edge in scheduler.new_pass():
            for i in watch.get(edge, ()):
                closed[i] = True

        samples: List[float] = []
        for i, e in enumerate(sampled):
            u, v = e  # type: ignore[misc]
            d_e = min(degree[u], degree[v])
            samples.append((m * d_e / 3.0) if closed[i] else 0.0)
        return BaselineResult(
            estimate=mean(samples),
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={"hit_rate": sum(closed) / self._copies},
        )
