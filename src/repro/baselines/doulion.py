"""DOULION (Tsourakakis et al. [59]): sparsify-and-count-exactly.

One pass: keep each edge independently with probability ``p``; count the
triangles of the retained subgraph exactly (incrementally, as in
:class:`~repro.core.exact_reference.ExactStreamingCounter`) and rescale by
``1 / p^3``.  Unbiased; space concentrates around ``p * m`` words.  Doulion
is not a ``(1 +- eps)``-for-all-inputs scheme - its variance blows up when
triangles are scarce - which is exactly the behaviour experiment E1
documents next to the paper's estimator.
"""

from __future__ import annotations

import random
from typing import Dict, Set

from ..errors import ParameterError
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Vertex
from .base import BaselineEstimator, BaselineResult


class DoulionEstimator(BaselineEstimator):
    """One-pass sparsifying counter with retention probability ``p``."""

    name = "doulion"
    passes_required = 1

    def __init__(self, p: float, rng: random.Random) -> None:
        if not 0.0 < p <= 1.0:
            raise ParameterError(f"retention probability must be in (0, 1], got {p}")
        self._p = p
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=1)
        adjacency: Dict[Vertex, Set[Vertex]] = {}
        kept = 0
        sparsified_triangles = 0
        for u, v in scheduler.new_pass():
            if self._rng.random() >= self._p:
                continue
            kept += 1
            nu = adjacency.get(u)
            nv = adjacency.get(v)
            if nu is not None and nv is not None:
                small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
                sparsified_triangles += sum(1 for w in small if w in large)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
            meter.allocate(2, "sparsified-graph")
        estimate = sparsified_triangles / (self._p ** 3)
        return BaselineResult(
            estimate=estimate,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={"kept_edges": float(kept), "sparsified_triangles": float(sparsified_triangles)},
        )
