"""Baseline registry: name -> accuracy-matched factory.

Experiment E1 compares algorithms *at matched target accuracy*: each
baseline's sample size is derived from its own Table 1 space formula
evaluated at the instance parameters ``(n, m, T_hint, epsilon)`` with a
common small leading constant.  The registry centralizes those derivations
so benchmarks never hand-tune per-algorithm knobs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ParameterError
from .base import BaselineEstimator
from .buriol import BuriolEstimator
from .doulion import DoulionEstimator
from .jsp_wedge import JSPWedgeEstimator
from .mvv_heavy_light import MVVHeavyLightEstimator
from .mvv_neighbor import MVVNeighborEstimator
from .pavan import PavanEstimator


@dataclass(frozen=True)
class InstanceParameters:
    """What the factories need to size a run: ``n, m``, a ``T`` hint, ``eps``.

    ``t_hint`` plays the same role as the paper algorithm's guess: every
    sampling scheme must be provisioned for *some* assumed triangle count.
    Benchmarks pass the exact ``T`` so the comparison isolates the
    algorithms' intrinsic space needs.
    """

    num_vertices: int
    num_edges: int
    t_hint: float
    epsilon: float
    leading_constant: float = 2.0

    def __post_init__(self) -> None:
        if self.num_vertices < 1 or self.num_edges < 1:
            raise ParameterError("instance must have at least one vertex and edge")
        if self.t_hint <= 0:
            raise ParameterError(f"t_hint must be positive, got {self.t_hint}")
        if not 0 < self.epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {self.epsilon}")

    def copies(self, relative_variance: float) -> int:
        """Sample count from a relative-variance formula: ``c * rv / eps^2``."""
        raw = self.leading_constant * relative_variance / (self.epsilon * self.epsilon)
        return max(8, math.ceil(raw))


Factory = Callable[[InstanceParameters, random.Random], BaselineEstimator]


def _buriol(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    copies = p.copies(p.num_edges * p.num_vertices / (3.0 * p.t_hint))
    return BuriolEstimator(copies=copies, num_vertices=p.num_vertices, rng=rng)


def _doulion(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    # Doulion's variance analysis wants p^3 * T >> 1; provision the retention
    # probability so about c/eps^2 sparsified triangles survive.
    target_survivors = p.leading_constant / (p.epsilon * p.epsilon)
    prob = min(1.0, (target_survivors / p.t_hint) ** (1.0 / 3.0))
    return DoulionEstimator(p=max(prob, 1e-3), rng=rng)


def _jsp(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    # Closed-wedge fraction T/W needs ~ W/T samples; W <= m^{3/2} but the
    # factory cannot know W, so it uses the m/sqrt(T)-style provisioning
    # W_hat = m * sqrt(2m) as the worst case capped to keep runs tractable.
    w_upper = p.num_edges * math.sqrt(2.0 * p.num_edges)
    copies = p.copies(w_upper / (3.0 * p.t_hint))
    return JSPWedgeEstimator(wedge_samples=min(copies, 16 * p.num_edges), rng=rng)


def _pavan(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    # Variance ~ m * Delta / T; Delta <= sqrt(2m) is the worst case a factory
    # can assume without a degree pass.
    copies = p.copies(p.num_edges * math.sqrt(2.0 * p.num_edges) / (6.0 * p.t_hint))
    return PavanEstimator(copies=min(copies, 16 * p.num_edges), rng=rng)


def _mvv_neighbor(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    copies = p.copies(p.num_edges * math.sqrt(2.0 * p.num_edges) / (3.0 * p.t_hint))
    return MVVNeighborEstimator(copies=min(copies, 16 * p.num_edges), rng=rng)


def _mvv_heavy_light(p: InstanceParameters, rng: random.Random) -> BaselineEstimator:
    theta = max(2.0, math.sqrt(p.t_hint))
    copies = p.copies(p.num_edges * theta / p.t_hint)
    return MVVHeavyLightEstimator(
        theta=theta, wedge_samples=min(copies, 16 * p.num_edges), rng=rng
    )


_REGISTRY: Dict[str, Factory] = {
    "buriol": _buriol,
    "doulion": _doulion,
    "jsp-wedge": _jsp,
    "pavan": _pavan,
    "mvv-neighbor": _mvv_neighbor,
    "mvv-heavy-light": _mvv_heavy_light,
}


def available_baselines() -> List[str]:
    """Names of all registered baselines, sorted."""
    return sorted(_REGISTRY)


def make_baseline(
    name: str, params: InstanceParameters, rng: random.Random
) -> BaselineEstimator:
    """Instantiate baseline ``name`` provisioned for ``params``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ParameterError(
            f"unknown baseline {name!r}; available: {available_baselines()}"
        ) from None
    return factory(params, rng)
