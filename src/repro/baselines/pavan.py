"""Pavan et al. [48]: neighborhood sampling, ``O~(m * Delta / T)``.

Basic estimator: pick a uniform edge ``e`` (pass 1); pick a uniform edge
``f`` among the edges *adjacent* to ``e`` while counting their number
``c_e`` (pass 2); check whether ``e`` and ``f`` span a triangle, i.e.
whether the one missing edge is present (pass 3).  Every triangle contains
six ordered adjacent edge pairs ``(e, f)``, each hit with probability
``1 / (m * c_e)``, so ``X = (m * c_e / 6) * 1[triangle]`` is unbiased.
``c_e <= 2 * Delta`` drives the ``m * Delta / T`` variance - the Table 1
row.

Fidelity note: the original interleaves all three steps into one pass over
an insert-only stream with clever conditional replacement; the multi-pass
factoring below has identical estimator distribution and space, at 3 passes
(reported honestly).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import ParameterError
from ..sampling.combine import mean
from ..sampling.reservoir import SingleItemReservoir
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from .base import BaselineEstimator, BaselineResult


class PavanEstimator(BaselineEstimator):
    """Three-pass neighborhood-sampling estimator with ``copies`` instances."""

    name = "pavan"
    passes_required = 3

    def __init__(self, copies: int, rng: random.Random) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        self._copies = copies
        self._rng = rng

    def _run(self, stream: EdgeStream, meter: SpaceMeter) -> BaselineResult:
        scheduler = PassScheduler(stream, max_passes=self.passes_required)
        m = len(stream)
        if m == 0:
            return BaselineResult(0.0, 0, meter.peak_words)

        # Pass 1: i.i.d. uniform first edges via pre-drawn positions.
        slots_by_position: Dict[int, List[int]] = {}
        for i in range(self._copies):
            slots_by_position.setdefault(self._rng.randrange(m), []).append(i)
        first: List[Optional[Edge]] = [None] * self._copies
        meter.allocate(2 * self._copies, "first-edge")
        for position, edge in enumerate(scheduler.new_pass()):
            for i in slots_by_position.get(position, ()):
                first[i] = edge

        # Pass 2: per copy, reservoir over the edges adjacent to `first[i]`
        # (sharing an endpoint, excluding the edge itself), counting c_e.
        adjacent_res: List[SingleItemReservoir] = [
            SingleItemReservoir(self._rng) for _ in range(self._copies)
        ]
        meter.allocate(3 * self._copies, "adjacent-sample")
        by_endpoint: Dict[Vertex, List[int]] = {}
        for i, e in enumerate(first):
            assert e is not None
            for endpoint in e:
                by_endpoint.setdefault(endpoint, []).append(i)
        for edge in scheduler.new_pass():
            a, b = edge
            for endpoint in (a, b):
                for i in by_endpoint.get(endpoint, ()):
                    if edge != first[i]:
                        adjacent_res[i].offer(edge)

        # Pass 3: the pair (first, adjacent) spans a triangle iff the one
        # missing edge between their non-shared endpoints is present.
        watch: Dict[Edge, List[int]] = {}
        c_e: List[int] = [res.offers for res in adjacent_res]
        for i in range(self._copies):
            e, f = first[i], adjacent_res[i].sample()
            if e is None or f is None:
                continue
            shared = set(e) & set(f)
            if len(shared) != 1:
                continue  # parallel edges cannot happen; shared == 2 impossible
            (x,) = set(e) - shared
            (y,) = set(f) - shared
            if x == y:
                continue
            watch.setdefault(canonical_edge(x, y), []).append(i)
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
        closed = [False] * self._copies
        for edge in scheduler.new_pass():
            for i in watch.get(edge, ()):
                closed[i] = True

        samples = [
            (m * c_e[i] / 6.0) if closed[i] else 0.0 for i in range(self._copies)
        ]
        return BaselineResult(
            estimate=mean(samples),
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
            extras={"mean_adjacency": mean([float(c) for c in c_e])},
        )
