"""The Theorem 6.3 reduction graph ``G(x, y)``.

Construction (quoting the proof):

* ``G_fixed``: a complete bipartite graph on parts ``A``, ``B`` with
  ``|A| = |B| = p``;
* ``N`` vertex blocks ``V_1 .. V_N``, each of size ``q``;
* Alice adds all edges ``V_i x A`` for every ``i`` with ``x_i = 1``;
* Bob adds all edges ``V_i x B`` for every ``i`` with ``y_i = 1``.

Then ``G`` is triangle-free iff the supports are disjoint; an intersecting
index contributes ``p^2 * q`` triangles (block vertex + one vertex from
each side of the core).  Degeneracy is ``p`` in the YES case and at most
``2p`` in the NO case (the vertex ordering ``V_1 < ... < V_N < A < B``
witnesses both).  With ``p = kappa`` and ``q = kappa^{r-2}`` the instance
realizes ``T = p^2 q = kappa^r`` against ``m = Theta(N p q)``, giving the
``Omega(m * kappa / T)`` statement.

Vertex numbering: ``A = [0, p)``, ``B = [p, 2p)``, block ``V_i`` occupies
``[2p + i*q, 2p + (i+1)*q)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ParameterError
from ..graph.adjacency import Graph
from ..types import Edge
from .disjointness import DisjointnessInstance


@dataclass(frozen=True)
class LowerBoundInstance:
    """Derived parameters of one reduction instance (before edges exist).

    ``kappa_target`` and ``exponent_r`` are the knobs of Theorem 6.3
    (``T = kappa^r``); everything else follows from the construction.
    """

    kappa_target: int
    exponent_r: int
    universe: int
    p: int
    q: int

    @property
    def num_vertices(self) -> int:
        """``n = 2p + N*q``."""
        return 2 * self.p + self.universe * self.q

    @property
    def planted_triangles(self) -> int:
        """Triangles per intersecting index: ``p^2 * q = kappa^r``."""
        return self.p * self.p * self.q

    def block_range(self, i: int) -> range:
        """Vertex ids of block ``V_i``."""
        if not 0 <= i < self.universe:
            raise ParameterError(f"block index {i} outside [0, {self.universe})")
        start = 2 * self.p + i * self.q
        return range(start, start + self.q)

    @property
    def side_a(self) -> range:
        """Vertex ids of part ``A``."""
        return range(0, self.p)

    @property
    def side_b(self) -> range:
        """Vertex ids of part ``B``."""
        return range(self.p, 2 * self.p)


def instance_parameters(kappa: int, exponent_r: int, universe: int) -> LowerBoundInstance:
    """Fix ``p = kappa`` and ``q = kappa^{r-2}`` per the proof of Thm 6.3."""
    if kappa < 1:
        raise ParameterError(f"kappa must be >= 1, got {kappa}")
    if exponent_r < 2:
        raise ParameterError(f"Theorem 6.3 needs r >= 2, got {exponent_r}")
    if universe < 3:
        raise ParameterError(f"universe must be >= 3, got {universe}")
    return LowerBoundInstance(
        kappa_target=kappa,
        exponent_r=exponent_r,
        universe=universe,
        p=kappa,
        q=kappa ** (exponent_r - 2),
    )


def reduction_edges(
    instance: LowerBoundInstance, disjointness: DisjointnessInstance
) -> Iterator[Edge]:
    """Yield the edges of ``G(x, y)`` (fixed core, then Alice's, then Bob's).

    The order models the natural stream: the public core followed by each
    player's edges - any order is fine for the algorithms (arbitrary-order
    model), and experiments shuffle anyway.
    """
    if disjointness.universe != instance.universe:
        raise ParameterError("disjointness universe does not match instance")
    for a in instance.side_a:
        for b in instance.side_b:
            yield (a, b)
    for i in sorted(disjointness.alice):
        for v in instance.block_range(i):
            for a in instance.side_a:
                yield (min(a, v), max(a, v))
    for i in sorted(disjointness.bob):
        for v in instance.block_range(i):
            for b in instance.side_b:
                yield (min(b, v), max(b, v))


def build_reduction_graph(
    instance: LowerBoundInstance, disjointness: DisjointnessInstance
) -> Graph:
    """Materialize ``G(x, y)`` as a :class:`Graph` (includes all blocks as
    vertices, so YES and NO cases have identical vertex sets)."""
    graph = Graph(vertices=range(instance.num_vertices))
    for u, v in reduction_edges(instance, disjointness):
        graph.add_edge_unchecked(u, v)
    return graph


def expected_shape(
    instance: LowerBoundInstance, disjointness: DisjointnessInstance
) -> Tuple[int, int]:
    """Return ``(m, minimum triangles)`` the construction guarantees.

    ``m = p^2 + R*p*q + R*p*q`` (core + Alice + Bob); the triangle floor is
    ``(number of intersecting indices) * p^2 * q`` (0 in the YES case).
    """
    p, q = instance.p, instance.q
    r_ones = disjointness.ones
    m = p * p + 2 * r_ones * p * q
    intersections = len(disjointness.alice & disjointness.bob)
    return m, intersections * instance.planted_triangles
