"""The empirical distinguishing game for experiment E8.

Theorem 6.3 says: any constant-pass algorithm distinguishing the YES family
(triangle-free) from the NO family (``>= kappa^r`` triangles) needs
``Omega(m * kappa / T)`` space.  The runnable consequence we test: the
paper's own estimator, run with a space provision scaled by ``budget_factor``
relative to its nominal ``m*kappa/T`` plan, should separate the families
reliably at factor ``>= 1`` and degrade toward coin-flipping as the factor
shrinks (the samples simply stop seeing the planted blocks).

A *trial* samples one YES and one NO instance, runs the estimator on both,
and scores a success when the NO estimate exceeds the detection threshold
(half the planted count) while the YES estimate stays below it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..core.driver import EstimatorConfig, TriangleCountEstimator
from ..core.params import PlanConstants
from ..errors import ParameterError
from ..rng import spawn
from ..streams.memory import InMemoryEdgeStream
from ..streams.transforms import shuffled
from .disjointness import sample_disjointness
from .reduction import LowerBoundInstance, build_reduction_graph


@dataclass(frozen=True)
class DistinguishingOutcome:
    """Aggregate result of the distinguishing game at one budget factor."""

    budget_factor: float
    trials: int
    successes: int
    yes_estimates: List[float]
    no_estimates: List[float]
    space_words_peak: int

    @property
    def success_rate(self) -> float:
        """Fraction of trials where YES and NO were classified correctly."""
        return self.successes / self.trials


def run_distinguishing_experiment(
    instance: LowerBoundInstance,
    budget_factor: float,
    trials: int,
    seed: int = 0,
    epsilon: float = 0.3,
) -> DistinguishingOutcome:
    """Play ``trials`` rounds of the YES/NO game at one budget factor.

    ``budget_factor`` scales the estimator's plan constants - factor 1 is
    the nominal ``m*kappa/T`` provision, factor 0.1 a tenth of it, etc.
    The estimator receives the degeneracy promise ``2 * kappa`` (valid for
    both families per the Theorem 6.3 analysis) and a ``t_hint`` equal to
    the planted count, exactly the promise regime of triangle-detection.
    """
    if budget_factor <= 0:
        raise ParameterError(f"budget_factor must be positive, got {budget_factor}")
    if trials < 1:
        raise ParameterError(f"trials must be >= 1, got {trials}")
    root = random.Random(seed)
    ones = instance.universe // 3
    planted = instance.planted_triangles
    threshold = planted / 2.0

    base = PlanConstants.PRACTICAL
    constants = PlanConstants(
        c_r=base.c_r * budget_factor,
        c_ell=base.c_ell * budget_factor,
        c_s=base.c_s * budget_factor,
    )

    yes_estimates: List[float] = []
    no_estimates: List[float] = []
    successes = 0
    space_peak = 0
    for trial in range(trials):
        rng = spawn(root, f"trial{trial}")
        estimates = {}
        for case_intersecting in (False, True):
            disj = sample_disjointness(
                instance.universe, ones, intersecting=case_intersecting, rng=rng
            )
            graph = build_reduction_graph(instance, disj)
            stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, rng))
            config = EstimatorConfig(
                epsilon=epsilon,
                repetitions=3,
                seed=rng.randrange(2 ** 31),
                t_hint=float(planted),
                constants=constants,
            )
            result = TriangleCountEstimator(config).estimate(
                stream, kappa=2 * instance.kappa_target
            )
            estimates[case_intersecting] = result.estimate
            space_peak = max(space_peak, result.space_words_peak)
        yes_estimates.append(estimates[False])
        no_estimates.append(estimates[True])
        if estimates[False] < threshold <= estimates[True]:
            successes += 1
    return DistinguishingOutcome(
        budget_factor=budget_factor,
        trials=trials,
        successes=successes,
        yes_estimates=yes_estimates,
        no_estimates=no_estimates,
        space_words_peak=space_peak,
    )
