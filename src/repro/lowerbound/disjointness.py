"""Promise set-disjointness instances (the ``disj^N_R`` problem).

Alice holds ``x`` and Bob holds ``y``, both ``N``-bit strings with exactly
``R`` ones; they must decide whether some index has ``x_i = y_i = 1``.
Theorem 6.2 (Kalyanasundaram-Schnitger / Razborov) puts its randomized
communication complexity at ``Omega(R)``; the paper reduces from
``disj^N_{N/3}``.

This module samples both promise cases uniformly:

* **YES** (disjoint, per the paper's convention where YES maps to the
  triangle-free graph): supports of ``x`` and ``y`` are disjoint;
* **NO** (intersecting): the supports share at least one index.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet

from ..errors import ParameterError


@dataclass(frozen=True)
class DisjointnessInstance:
    """One ``disj^N_R`` input pair, in support-set form.

    ``alice`` and ``bob`` are the supports of ``x`` and ``y``; the promise
    guarantees ``|alice| = |bob| = R``.  ``disjoint`` records the case.
    """

    universe: int
    alice: FrozenSet[int]
    bob: FrozenSet[int]

    def __post_init__(self) -> None:
        if len(self.alice) != len(self.bob):
            raise ParameterError("promise violated: |alice| != |bob|")
        for index in self.alice | self.bob:
            if not 0 <= index < self.universe:
                raise ParameterError(f"index {index} outside universe [0, {self.universe})")

    @property
    def ones(self) -> int:
        """The promise weight ``R``."""
        return len(self.alice)

    @property
    def disjoint(self) -> bool:
        """Whether the supports are disjoint (the YES case)."""
        return not (self.alice & self.bob)


def sample_disjointness(
    universe: int, ones: int, intersecting: bool, rng: random.Random
) -> DisjointnessInstance:
    """Sample a uniform promise instance of the requested case.

    ``intersecting=False`` requires ``2 * ones <= universe`` (two disjoint
    supports must fit); ``intersecting=True`` requires ``ones >= 1``.
    The intersecting case is sampled by rejection (draw until the supports
    meet), which for the paper's regime ``ones = universe / 3`` accepts
    almost immediately.
    """
    if ones < 1:
        raise ParameterError(f"ones must be >= 1, got {ones}")
    if ones > universe:
        raise ParameterError(f"ones ({ones}) exceeds universe ({universe})")
    if not intersecting and 2 * ones > universe:
        raise ParameterError(
            f"disjoint case needs 2*ones <= universe, got ones={ones}, universe={universe}"
        )
    indices = list(range(universe))
    if not intersecting:
        chosen = rng.sample(indices, 2 * ones)
        return DisjointnessInstance(
            universe=universe,
            alice=frozenset(chosen[:ones]),
            bob=frozenset(chosen[ones:]),
        )
    while True:
        alice = frozenset(rng.sample(indices, ones))
        bob = frozenset(rng.sample(indices, ones))
        if alice & bob:
            return DisjointnessInstance(universe=universe, alice=alice, bob=bob)
