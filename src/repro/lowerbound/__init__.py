"""Section 6: the ``Omega(m * kappa / T)`` lower-bound construction.

The paper proves its lower bound by reducing set-disjointness to
triangle detection on a crafted instance family (Theorem 6.3).  A
communication lower bound cannot be "run", but its *construction* can: this
package builds the exact instance family and measures, empirically, that
estimators distinguish the YES family (triangle-free) from the NO family
(``>= p^2 q`` triangles) only when given the ``m * kappa / T`` space the
theorem demands (experiment E8).

* :mod:`~repro.lowerbound.disjointness` - promise set-disjointness
  instances ``disj^N_R`` (both YES and NO cases);
* :mod:`~repro.lowerbound.reduction` - the graph ``G(x, y)``: complete
  bipartite core ``A x B`` (``|A| = |B| = p``), ``N`` blocks ``V_i`` of
  size ``q``, Alice wiring ``V_i -> A`` when ``x_i = 1``, Bob wiring
  ``V_i -> B`` when ``y_i = 1``;
* :mod:`~repro.lowerbound.experiment` - the distinguishing game harness.
"""

from .disjointness import DisjointnessInstance, sample_disjointness
from .reduction import LowerBoundInstance, build_reduction_graph, instance_parameters
from .experiment import DistinguishingOutcome, run_distinguishing_experiment

__all__ = [
    "DisjointnessInstance",
    "sample_disjointness",
    "LowerBoundInstance",
    "build_reduction_graph",
    "instance_parameters",
    "DistinguishingOutcome",
    "run_distinguishing_experiment",
]
