"""Section 7 / Conjecture 7.1: the clique-counting extension.

The paper closes with a conjecture: for graphs of degeneracy ``kappa`` with
``T`` many ``ell``-cliques, a constant-pass stream algorithm should achieve
a ``(1 +- eps)``-approximation in ``O~(m * kappa^{ell-2} / T)`` bits.

This package implements the natural generalization of the paper's Section 4
machinery to ``ell``-cliques and measures the conjecture empirically:

* :mod:`~repro.cliques.exact` - from-scratch exact ``k``-clique counting
  via degeneracy orientation (the Chiba-Nishizeki style substrate:
  enumeration, total counts, per-edge counts);
* :mod:`~repro.cliques.oracle_estimator` - the Algorithm 1 analogue for
  ``k``-cliques in the degree-oracle model: sample an edge ``e``
  proportional to ``d_e``, draw ``k - 2`` i.i.d. uniform members of
  ``N(e)``, check that they complete a clique, and credit it only at its
  uniquely assigned edge.  Unbiased for every ``k >= 3``; its measured
  relative variance against the conjectured ``m * kappa^{k-2} / T`` budget
  is experiment E10 (``benchmarks/bench_cliques.py``).

The full streaming (oracle-free) version of the conjecture is open - this
package reproduces the *evidence* for it, exactly as a "future work"
reproduction should.
"""

from .exact import (
    count_cliques,
    enumerate_cliques,
    per_edge_clique_counts,
)
from .oracle_estimator import CliqueOracleEstimator, CliqueOracleResult

__all__ = [
    "count_cliques",
    "enumerate_cliques",
    "per_edge_clique_counts",
    "CliqueOracleEstimator",
    "CliqueOracleResult",
]
