"""The Algorithm 1 analogue for ``k``-cliques (degree-oracle model).

One basic estimator copy:

1. sample an edge ``e`` with probability ``d_e / d_E`` (weighted reservoir,
   weights from the degree oracle);
2. draw ``k - 2`` i.i.d. uniform members ``w_1 .. w_{k-2}`` of ``N(e)``
   (one single-item reservoir each);
3. the candidate vertex set is ``{u, v, w_1, .., w_{k-2}}``; watch one pass
   for all of its missing edges; if everything closes, the candidate is a
   ``k``-clique ``K``;
4. credit ``K`` only if the assignment rule maps it to ``e``.

For a clique ``K`` containing ``e``, the ordered draws hit ``K``'s
remaining ``k - 2`` vertices with probability ``(k-2)! / d_e^{k-2}``
(draws are with replacement, so only all-distinct draws can win), giving
the unbiased estimate

    X = (d_E / d_e) * (d_e^{k-2} / (k-2)!) * Y,   E[X] = T_k.

The second moment works out to ``E[X^2] = d_E * sum_e d_e^{k-3} tau_e /
(k-2)!``, which for ``tau_e = O(kappa^{k-2})`` (the generalized assignment
rule) matches the Conjecture 7.1 budget ``O~(m kappa^{k-2} / T)`` up to the
``d_e <= 2 kappa``-style slack - benchmark E10 measures exactly this ratio.

For ``k = 3`` this degenerates to Algorithm 1 exactly (with the min-count
assignment instead of min-degree).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ParameterError
from ..graph.adjacency import Graph
from ..sampling.combine import median_of_means
from ..sampling.reservoir import SingleItemReservoir
from ..sampling.weighted import WeightedReservoir
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Vertex, canonical_edge
from ..core.oracle_model import DegreeOracle
from .exact import min_count_edge_assignment


@dataclass(frozen=True)
class CliqueOracleResult:
    """Outcome of one :class:`CliqueOracleEstimator` run."""

    estimate: float
    raw_estimates: List[float]
    d_e_sum: float
    passes_used: int
    space_words_peak: int


class CliqueOracleEstimator:
    """``k``-clique estimation in the Section 4 abstract model.

    Parameters
    ----------
    graph:
        Ground-truth graph; used for the degree oracle and the exact
        min-count assignment rule (both free in the abstract model).
    k:
        Clique size (>= 3).
    copies:
        Parallel basic estimators.
    rng:
        Randomness source.
    median_groups:
        Median-of-means groups (must divide ``copies``).
    """

    def __init__(
        self,
        graph: Graph,
        k: int,
        copies: int,
        rng: random.Random,
        median_groups: int = 1,
    ) -> None:
        if k < 3:
            raise ParameterError(f"clique size must be >= 3, got {k}")
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        if median_groups < 1 or copies % median_groups != 0:
            raise ParameterError("median_groups must divide copies")
        self._oracle = DegreeOracle(graph)
        self._assignment = min_count_edge_assignment(graph, k)
        self._k = k
        self._copies = copies
        self._groups = median_groups
        self._rng = rng

    def estimate(self, stream: EdgeStream, meter: Optional[SpaceMeter] = None) -> CliqueOracleResult:
        """Run the three passes and return the combined estimate."""
        meter = meter if meter is not None else SpaceMeter()
        scheduler = PassScheduler(stream, max_passes=3)
        extras = self._k - 2

        # Pass 1: weighted edge sample per copy.
        reservoirs = [WeightedReservoir[Edge](self._rng, meter) for _ in range(self._copies)]
        d_e_sum = 0.0
        for edge in scheduler.new_pass():
            w = float(self._oracle.edge_degree(edge))
            d_e_sum += w
            for res in reservoirs:
                res.offer(edge, w)
        sampled: List[Optional[Edge]] = [res.sample() for res in reservoirs]

        # Pass 2: k-2 independent uniform neighbors of the owner endpoint.
        owners: List[Optional[Vertex]] = [
            self._oracle.neighborhood_owner(e) if e is not None else None for e in sampled
        ]
        neighbor_res: List[List[SingleItemReservoir]] = [
            [SingleItemReservoir(self._rng) for _ in range(extras)] for _ in range(self._copies)
        ]
        meter.allocate(extras * self._copies, "neighbor-reservoirs")
        by_owner: Dict[Vertex, List[int]] = {}
        for i, owner in enumerate(owners):
            if owner is not None:
                by_owner.setdefault(owner, []).append(i)
        for a, b in scheduler.new_pass():
            for i in by_owner.get(a, ()):
                for res in neighbor_res[i]:
                    res.offer(b)
            for i in by_owner.get(b, ()):
                for res in neighbor_res[i]:
                    res.offer(a)

        # Pass 3: watch all missing edges of each copy's candidate set.
        watch: Dict[Edge, List[int]] = {}
        needed: List[int] = [0] * self._copies
        candidates: List[Optional[Tuple[int, ...]]] = [None] * self._copies
        for i, e in enumerate(sampled):
            if e is None:
                continue
            draws = [res.sample() for res in neighbor_res[i]]
            if any(d is None for d in draws):
                continue
            u, v = e
            members = {u, v, *draws}  # type: ignore[misc]
            if len(members) != self._k:
                continue  # repeated draw or a draw equal to an endpoint
            candidates[i] = tuple(sorted(members))
            # The edges already known present: e itself and (owner, w_j) for
            # each draw.  Everything else must be watched.
            owner = owners[i]
            known = {e}
            for w in draws:
                known.add(canonical_edge(owner, w))  # type: ignore[arg-type]
            ordered = sorted(members)
            for x_pos, x in enumerate(ordered):
                for y in ordered[x_pos + 1 :]:
                    edge = (x, y)
                    if edge in known:
                        continue
                    watch.setdefault(edge, []).append(i)
                    needed[i] += 1
        meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
        seen = [0] * self._copies
        for edge in scheduler.new_pass():
            for i in watch.get(edge, ()):
                seen[i] += 1

        factorial = math.factorial(extras)
        raw: List[float] = []
        for i in range(self._copies):
            value = 0.0
            e = sampled[i]
            clique = candidates[i]
            if e is not None and clique is not None and seen[i] == needed[i]:
                if self._assignment.get(clique) == e:
                    d_e = float(self._oracle.edge_degree(e))
                    value = (d_e_sum / d_e) * (d_e ** extras) / factorial
            raw.append(value)
        return CliqueOracleResult(
            estimate=median_of_means(raw, self._groups),
            raw_estimates=raw,
            d_e_sum=d_e_sum,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
        )
