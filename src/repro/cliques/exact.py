"""Exact ``k``-clique counting via degeneracy orientation.

The classic Chiba-Nishizeki bound generalizes: orienting every edge along a
degeneracy ordering gives each vertex at most ``kappa`` out-neighbors, so
enumerating ``k``-cliques by extending out-neighborhoods costs
``O(m * kappa^{k-2})`` - the same quantity Conjecture 7.1 puts in the
numerator of its space bound.  This module implements that enumeration
from scratch (recursive extension within out-neighborhoods), plus the
per-edge clique counts the assignment rule needs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..errors import ParameterError
from ..graph.adjacency import Graph
from ..graph.degeneracy import degeneracy_ordering
from ..types import Edge


def _oriented_out_neighbors(graph: Graph) -> Dict[int, List[int]]:
    """Orient edges along a degeneracy ordering; out-degree <= kappa."""
    ordering = degeneracy_ordering(graph)
    position = {v: i for i, v in enumerate(ordering)}
    return {
        v: sorted(
            (w for w in graph.neighbors(v) if position[w] > position[v]),
            key=position.__getitem__,
        )
        for v in ordering
    }


def enumerate_cliques(graph: Graph, k: int) -> Iterator[Tuple[int, ...]]:
    """Yield every ``k``-clique exactly once, as a sorted vertex tuple.

    ``k = 1`` yields vertices, ``k = 2`` edges, ``k = 3`` triangles, and so
    on.  Runs in ``O(m * kappa^{k-2})`` for ``k >= 2``.
    """
    if k < 1:
        raise ParameterError(f"clique size must be >= 1, got {k}")
    if k == 1:
        for v in sorted(graph.vertices()):
            yield (v,)
        return
    out = _oriented_out_neighbors(graph)

    def extend(clique: List[int], candidates: List[int]) -> Iterator[Tuple[int, ...]]:
        if len(clique) == k:
            yield tuple(sorted(clique))
            return
        for i, v in enumerate(candidates):
            nv = graph.neighbors(v)
            narrowed = [w for w in candidates[i + 1 :] if w in nv]
            # Prune: not enough candidates left to reach size k.
            if len(clique) + 1 + len(narrowed) >= k:
                yield from extend(clique + [v], narrowed)

    for v in out:
        yield from extend([v], out[v])


def count_cliques(graph: Graph, k: int) -> int:
    """Return the number of ``k``-cliques in ``graph``."""
    return sum(1 for _ in enumerate_cliques(graph, k))


def per_edge_clique_counts(graph: Graph, k: int) -> Dict[Edge, int]:
    """Return ``{e: number of k-cliques containing e}`` (zeros included).

    For ``k = 3`` this coincides with the per-edge triangle counts ``t_e``;
    the generalized assignment rule assigns each clique to its contained
    edge with the smallest count.
    """
    if k < 2:
        raise ParameterError(f"per-edge counts need k >= 2, got {k}")
    counts: Dict[Edge, int] = {e: 0 for e in graph.edges()}
    for clique in enumerate_cliques(graph, k):
        for i, u in enumerate(clique):
            for v in clique[i + 1 :]:
                counts[(u, v)] += 1
    return counts


def min_count_edge_assignment(graph: Graph, k: int) -> Dict[Tuple[int, ...], Edge]:
    """Assign every ``k``-clique to its minimum-count edge (ties canonical).

    The generalization of the paper's min-``t_e`` rule; Eden et al. show the
    analogous rule bounds per-edge assigned cliques by ``O(kappa^{k-2})``,
    which is what drives Conjecture 7.1.
    """
    counts = per_edge_clique_counts(graph, k)
    assignment: Dict[Tuple[int, ...], Edge] = {}
    for clique in enumerate_cliques(graph, k):
        edges = [
            (clique[i], clique[j])
            for i in range(len(clique))
            for j in range(i + 1, len(clique))
        ]
        assignment[clique] = min(edges, key=lambda e: (counts[e], e))
    return assignment
