"""Deterministic random-number management.

Every randomized component in the library receives an explicit
:class:`random.Random` instance.  To keep large experiments reproducible while
still giving independent components independent randomness, we derive child
generators from a parent via :func:`spawn`, which hashes a string label into
the child's seed.  This mirrors the "seed sequence" pattern from numpy but
works with the stdlib generator (fast enough for our workloads and free of
array dependencies in the core library).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator

_SEED_BYTES = 8


def make_rng(seed: int | None = 0) -> random.Random:
    """Return a fresh :class:`random.Random` seeded with ``seed``.

    ``None`` produces OS-entropy seeding (non-reproducible); every library
    entry point defaults to a fixed seed instead so that *not* passing a seed
    still yields reproducible behaviour.
    """
    return random.Random(seed)


def spawn(parent: random.Random, label: str) -> random.Random:
    """Derive a child generator from ``parent`` for the component ``label``.

    The child seed combines fresh randomness drawn from the parent with a
    stable hash of the label, so two children spawned with different labels
    are independent, while re-running the same program with the same parent
    seed reproduces both exactly.
    """
    base = parent.getrandbits(_SEED_BYTES * 8)
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=_SEED_BYTES)
    label_bits = int.from_bytes(digest.digest(), "big")
    return random.Random(base ^ label_bits)


def spawn_many(parent: random.Random, label: str, count: int) -> Iterator[random.Random]:
    """Yield ``count`` independent children labelled ``label[0..count)``."""
    for i in range(count):
        yield spawn(parent, f"{label}[{i}]")


def encode_state(state: object) -> object:
    """Make a ``random.Random.getstate()`` value JSON-representable.

    The stdlib state is a nest of tuples of ints (plus ``None`` / floats);
    JSON has no tuple, so tuples become lists.  :func:`decode_state`
    inverts the mapping exactly, and the pair round-trips the generator
    bit-for-bit: ``rng.setstate(decode_state(encode_state(rng.getstate())))``
    leaves the stream of draws unchanged.
    """
    if isinstance(state, tuple):
        return [encode_state(part) for part in state]
    return state


def decode_state(data: object) -> object:
    """Rebuild a ``random.Random.setstate()`` value from its encoded form.

    Lists (the JSON image of tuples) become tuples recursively; scalars
    pass through.  Accepts an already-decoded state unchanged.
    """
    if isinstance(data, (list, tuple)):
        return tuple(decode_state(part) for part in data)
    return data
