"""Weighted reservoir sampling (Chao's scheme, the paper's reference [16]).

:class:`WeightedReservoir` maintains one item such that, at every point of
the stream, the held item equals item ``i`` with probability
``w_i / sum_j w_j`` over the items offered so far.  This is exactly the
"sample an edge with probability d_e / d_E" primitive of the Section 4
oracle-model estimator (Algorithm 1, pass 1), where the weight of an edge is
its degree ``d_e`` obtained from the degree oracle at arrival time.

The update rule is Chao (1982): keep a running weight total ``W``; on an
offer of weight ``w``, replace the held item with probability ``w / W``.
A one-line induction shows the proportionality invariant is preserved.
"""

from __future__ import annotations

import random
from typing import Generic, Optional, TypeVar

from ..streams.space import SpaceMeter

Item = TypeVar("Item")


class WeightedReservoir(Generic[Item]):
    """One-item reservoir with probability proportional to item weight."""

    def __init__(
        self,
        rng: random.Random,
        meter: Optional[SpaceMeter] = None,
        category: str = "weighted-reservoir",
        words_per_item: int = 2,
    ) -> None:
        self._rng = rng
        self._item: Optional[Item] = None
        self._total_weight = 0.0
        self._offers = 0
        self._meter = meter
        self._category = category
        self._words_per_item = words_per_item

    @property
    def total_weight(self) -> float:
        """Sum of all weights offered so far (``d_E`` after a full pass)."""
        return self._total_weight

    @property
    def offers(self) -> int:
        """Number of items offered so far."""
        return self._offers

    def offer(self, item: Item, weight: float) -> None:
        """Offer ``item`` with non-negative ``weight`` (zero-weight items
        never displace the held item and can never be returned)."""
        if weight < 0:
            raise ValueError(f"negative weight {weight}")
        self._offers += 1
        self._total_weight += weight
        if weight == 0:
            return
        if self._item is None:
            self._item = item
            if self._meter is not None:
                self._meter.allocate(self._words_per_item, self._category)
            return
        if self._rng.random() < weight / self._total_weight:
            self._item = item

    def sample(self) -> Optional[Item]:
        """Return the held item (``None`` if only zero-weight items were offered)."""
        return self._item
