"""Sampling substrate: reservoirs, weighted reservoirs, discrete sampling.

These are the primitives the paper's algorithms are built from:

* pass 1 of Algorithm 2 needs a uniform ``k``-item reservoir over the stream
  (:class:`~repro.sampling.reservoir.Reservoir`);
* the Section 4 oracle model needs *weighted* reservoir sampling
  (:class:`~repro.sampling.weighted.WeightedReservoir`, the A-Chao scheme the
  paper cites as [16]);
* the offline draws from ``R`` proportional to ``d_e`` need discrete
  distribution sampling (:func:`~repro.sampling.discrete.CumulativeSampler`);
* the final estimate aggregation needs the median-of-means combiner
  (:func:`~repro.sampling.combine.median_of_means`).
"""

from .reservoir import Reservoir, SingleItemReservoir
from .weighted import WeightedReservoir
from .discrete import CumulativeSampler
from .combine import mean, median, median_of_means

__all__ = [
    "Reservoir",
    "SingleItemReservoir",
    "WeightedReservoir",
    "CumulativeSampler",
    "median_of_means",
    "median",
    "mean",
]
