"""Estimate combination: mean, median, and median-of-means.

The paper's final estimate is the "median of the mean" of many independent
basic estimators (Section 4, citing Chakrabarti's lecture notes [15]): means
drive the variance down by Chebyshev, the median over independent groups
boosts the 3/4 success probability to ``1 - delta`` by Chernoff.  The group
sizing helpers expose the standard constants so drivers can size experiments
from ``(epsilon, delta)`` directly.
"""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (average of central pair for even length); raises on empty."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def median_of_means(values: Sequence[float], groups: int) -> float:
    """Split ``values`` into ``groups`` contiguous groups; median of group means.

    ``len(values)`` must be divisible by ``groups`` so every mean aggregates
    the same number of samples (unequal groups would skew the median).
    """
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    if not values:
        raise ValueError("median_of_means of empty sequence")
    if len(values) % groups != 0:
        raise ValueError(f"{len(values)} values do not split evenly into {groups} groups")
    per_group = len(values) // groups
    group_means = [
        mean(values[g * per_group : (g + 1) * per_group]) for g in range(groups)
    ]
    return median(group_means)


def groups_for_failure_probability(delta: float) -> int:
    """Return an odd number of median groups achieving failure prob ``delta``.

    The standard bound needs ``ceil(8 * ln(1/delta))`` groups (each group's
    mean is within tolerance with probability >= 3/4 by Chebyshev; the median
    fails only if half the groups fail, a Chernoff event).  Rounded up to odd
    so the median is a single group's value.
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    g = max(1, math.ceil(8 * math.log(1 / delta)))
    return g if g % 2 == 1 else g + 1


def samples_per_group(relative_variance: float, epsilon: float) -> int:
    """Return the per-group sample count for a ``(1 +- epsilon)`` group mean.

    ``relative_variance`` is ``Var[X] / E[X]^2`` of the basic estimator; by
    Chebyshev, ``ceil(4 * relative_variance / epsilon^2)`` samples bring the
    group failure probability below 1/4.
    """
    if relative_variance < 0:
        raise ValueError(f"relative_variance must be non-negative, got {relative_variance}")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(1, math.ceil(4 * relative_variance / (epsilon * epsilon)))
