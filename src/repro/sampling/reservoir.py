"""Uniform reservoir sampling (Vitter's Algorithm R).

Two flavours are provided:

* :class:`Reservoir` - a ``k``-item *with-replacement-free* uniform sample of
  a stream of unknown length.  After ``t`` offers, every prefix item is in
  the reservoir with probability ``min(1, k/t)``; the final content is a
  uniform ``k``-subset.  Used (with independent copies) for the multiset
  ``R`` of Algorithm 2 pass 1.
* :class:`SingleItemReservoir` - the ``k = 1`` special case with O(1) state,
  used for the uniform-neighbor draws in passes 3 and 5 (one instance per
  pending draw, each seeing only the sub-stream of qualifying edges).

Both charge their storage to an optional
:class:`~repro.streams.space.SpaceMeter`.
"""

from __future__ import annotations

import random
from typing import Dict, Generic, List, Optional, TypeVar

from ..rng import decode_state, encode_state
from ..streams.space import SpaceMeter

Item = TypeVar("Item")


class Reservoir(Generic[Item]):
    """Uniform ``k``-item reservoir over a stream of unknown length.

    Parameters
    ----------
    capacity:
        Number of items to retain (``k``).
    rng:
        Source of randomness.
    meter, category:
        Optional space meter to charge; each retained item costs
        ``words_per_item`` words.
    words_per_item:
        Cost of one stored item in words (2 for an edge, 1 for a vertex id).
    """

    def __init__(
        self,
        capacity: int,
        rng: random.Random,
        meter: Optional[SpaceMeter] = None,
        category: str = "reservoir",
        words_per_item: int = 2,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._rng = rng
        self._items: List[Item] = []
        self._offers = 0
        self._meter = meter
        self._category = category
        self._words_per_item = words_per_item

    @property
    def offers(self) -> int:
        """Total number of items offered so far."""
        return self._offers

    @property
    def capacity(self) -> int:
        """The reservoir size ``k``."""
        return self._capacity

    def offer(self, item: Item) -> None:
        """Offer one stream item (Algorithm R step)."""
        self._offers += 1
        if len(self._items) < self._capacity:
            self._items.append(item)
            if self._meter is not None:
                self._meter.allocate(self._words_per_item, self._category)
            return
        j = self._rng.randrange(self._offers)
        if j < self._capacity:
            self._items[j] = item

    def sample(self) -> List[Item]:
        """Return the current reservoir content (size ``min(k, offers)``)."""
        return list(self._items)

    def state_dict(self) -> Dict[str, object]:
        """Everything needed to continue this reservoir draw-for-draw.

        The document is JSON-representable (the generator state is
        encoded via :func:`repro.rng.encode_state`; tuple items become
        lists and are restored as tuples by :meth:`load_state_dict`).
        This is the durable-snapshot building block: a restored
        reservoir makes the *identical* keep/evict decision on every
        subsequent offer.
        """
        return {
            "capacity": self._capacity,
            "offers": self._offers,
            "items": [list(i) if isinstance(i, tuple) else i for i in self._items],
            "rng_state": encode_state(self._rng.getstate()),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output into this reservoir.

        The capacity must match the constructor's (the state is a
        continuation, not a resize); restored items are re-charged to the
        attached space meter so accounting continues consistently.
        """
        capacity = int(state["capacity"])
        if capacity != self._capacity:
            raise ValueError(
                f"reservoir capacity mismatch: constructed {self._capacity}, "
                f"state carries {capacity}"
            )
        items = [tuple(i) if isinstance(i, list) else i for i in state["items"]]
        if len(items) > self._capacity:
            raise ValueError(
                f"reservoir state carries {len(items)} items, capacity {self._capacity}"
            )
        if self._meter is not None:
            delta = len(items) - len(self._items)
            if delta > 0:
                self._meter.allocate(self._words_per_item * delta, self._category)
        self._items = list(items)
        self._offers = int(state["offers"])
        self._rng.setstate(decode_state(state["rng_state"]))


class SingleItemReservoir(Generic[Item]):
    """O(1)-state uniform sample of one item from a (sub-)stream.

    Each call to :meth:`offer` keeps the new item with probability
    ``1/offers``, so after the pass the held item is uniform over everything
    offered.  This is how passes 3 and 5 of the implementation draw a uniform
    member of ``N(e)`` without knowing ``d_e``'s endpoint neighborhood in
    advance: the reservoir is offered every stream edge incident to the
    neighborhood-owning endpoint.
    """

    def __init__(
        self,
        rng: random.Random,
        meter: Optional[SpaceMeter] = None,
        category: str = "reservoir",
        words_per_item: int = 1,
    ) -> None:
        self._rng = rng
        self._item: Optional[Item] = None
        self._offers = 0
        self._meter = meter
        self._category = category
        self._words_per_item = words_per_item

    @property
    def offers(self) -> int:
        """Total number of items offered so far."""
        return self._offers

    def offer(self, item: Item) -> None:
        """Offer one item; it becomes the held item with probability ``1/offers``."""
        self._offers += 1
        if self._offers == 1:
            self._item = item
            if self._meter is not None:
                self._meter.allocate(self._words_per_item, self._category)
            return
        if self._rng.randrange(self._offers) == 0:
            self._item = item

    def sample(self) -> Optional[Item]:
        """Return the held item, or ``None`` if nothing was ever offered."""
        return self._item

    def state_dict(self) -> Dict[str, object]:
        """JSON-representable continuation state (see :class:`Reservoir`)."""
        item = self._item
        return {
            "offers": self._offers,
            "item": list(item) if isinstance(item, tuple) else item,
            "rng_state": encode_state(self._rng.getstate()),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output; draws continue identically."""
        item = state["item"]
        if isinstance(item, list):
            item = tuple(item)
        if self._meter is not None and self._item is None and item is not None:
            self._meter.allocate(self._words_per_item, self._category)
        self._item = item
        self._offers = int(state["offers"])
        self._rng.setstate(decode_state(state["rng_state"]))
