"""Sampling from an explicit discrete distribution.

After pass 2 of Algorithm 2 the estimator holds the degrees ``d_e`` of all
edges in ``R`` and must draw ``ell`` independent indices with probability
``d_e / d_R``.  :class:`CumulativeSampler` supports exactly that: O(r) build,
O(log r) per draw via binary search on the cumulative weight array.  (An
alias table would give O(1) draws, but ``ell`` draws at O(log r) each is
nowhere near a bottleneck and the cumulative method is simpler to audit.)
"""

from __future__ import annotations

import bisect
import random
from typing import Sequence


class CumulativeSampler:
    """Draw indices ``i`` with probability ``weights[i] / sum(weights)``.

    Parameters
    ----------
    weights:
        Non-negative weights; at least one must be positive.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        cumulative: list[float] = []
        total = 0.0
        for i, w in enumerate(weights):
            if w < 0:
                raise ValueError(f"negative weight {w} at index {i}")
            total += w
            cumulative.append(total)
        if total <= 0:
            raise ValueError("all weights are zero")
        self._cumulative = cumulative
        self._total = total

    @property
    def total_weight(self) -> float:
        """Sum of all weights."""
        return self._total

    def draw(self, rng: random.Random) -> int:
        """Return one index distributed proportionally to the weights."""
        u = rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, u)
        # Guard the measure-zero edge case u == total (floating point).
        return min(index, len(self._cumulative) - 1)

    def draw_many(self, rng: random.Random, count: int) -> list[int]:
        """Return ``count`` independent proportional draws."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.draw(rng) for _ in range(count)]

    def draw_many_from_uniforms(self, uniforms) -> list[int]:
        """Vectorized :meth:`draw_many` over pre-drawn uniform variates.

        ``uniforms`` is a NumPy array of [0, 1) variates, one per draw;
        each is mapped through the same cumulative-weight inversion as
        :meth:`draw` (``searchsorted`` right-bisection with the identical
        measure-zero guard).
        """
        import numpy as np

        cumulative = np.asarray(self._cumulative)
        index = np.searchsorted(cumulative, uniforms * self._total, side="right")
        return np.minimum(index, len(cumulative) - 1).tolist()
