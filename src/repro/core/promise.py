"""Obtaining the degeneracy promise from the stream itself.

Theorem 1.2 takes ``kappa`` as a *promise* on the input class (planar,
minor-closed, BA-grown, ...).  When no structural promise is available, a
user still needs a value to pass.  This module provides a one-pass
bracketing of the true degeneracy using only a degree table
(``Theta(n)`` words, charged under ``degree-index`` like the JSP/HL
baselines):

* **upper bound — the h-index of the degree sequence.**  The ``kappa``-core
  has at least ``kappa + 1`` vertices of degree >= ``kappa`` in ``G``, so
  at least ``kappa`` vertices have degree >= ``kappa``; hence
  ``kappa <= H`` where ``H = max{k : at least k vertices have degree >= k}``.
* **lower bound — the average-density floor.**  Peeling any vertex of
  degree < ``m/n`` removes fewer than ``m/n`` edges; peeling all ``n``
  vertices that way would remove fewer than ``m`` edges - contradiction -
  so some peeling suffix has minimum degree >= ``m/n`` and
  ``kappa >= ceil(m/n)``.

Passing the *upper* end of the bracket to the estimator is always safe
(Theorem 1.2's space degrades linearly in an over-estimate, correctness is
unaffected); the bracket width tells the user how much that might cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Vertex


@dataclass(frozen=True)
class DegeneracyBracket:
    """A certified one-pass interval ``lower <= kappa <= upper``.

    ``upper`` is the safe value to hand to
    :meth:`~repro.core.driver.TriangleCountEstimator.estimate`.
    """

    lower: int
    upper: int
    num_edges: int
    num_vertices_seen: int
    space_words_peak: int

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"empty bracket [{self.lower}, {self.upper}]")

    @property
    def width_ratio(self) -> float:
        """``upper / max(1, lower)`` - the worst-case space over-provision
        factor from using ``upper`` instead of the unknown true ``kappa``."""
        return self.upper / max(1, self.lower)


def degeneracy_bracket(
    stream: EdgeStream, meter: Optional[SpaceMeter] = None
) -> DegeneracyBracket:
    """One-pass degeneracy bracketing via a degree table.

    Returns the trivial bracket ``[0, 0]`` for edgeless streams.
    """
    meter = meter if meter is not None else SpaceMeter()
    scheduler = PassScheduler(stream, max_passes=1)
    degree: Dict[Vertex, int] = {}
    m = 0
    for u, v in scheduler.new_pass():
        m += 1
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    meter.allocate(len(degree), "degree-index")
    if m == 0:
        return DegeneracyBracket(
            lower=0,
            upper=0,
            num_edges=0,
            num_vertices_seen=len(degree),
            space_words_peak=meter.peak_words,
        )
    n = len(degree)  # vertices with at least one edge

    # h-index of the degree multiset: the largest k with >= k vertices of
    # degree >= k.  Computed from a capped histogram in O(n).
    cap = n
    histogram = [0] * (cap + 1)
    for d in degree.values():
        histogram[min(d, cap)] += 1
    at_least = 0
    h_index = 0
    for k in range(cap, 0, -1):
        at_least += histogram[k]
        if at_least >= k:
            h_index = k
            break

    lower = max(1, math.ceil(m / n))
    upper = max(h_index, lower)
    return DegeneracyBracket(
        lower=lower,
        upper=upper,
        num_edges=m,
        num_vertices_seen=n,
        space_words_peak=meter.peak_words,
    )
