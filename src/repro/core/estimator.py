"""Section 5: Algorithm 2 - the six-pass triangle estimator.

One invocation of :func:`run_single_estimate` produces one sample of the
random variable ``X`` from Algorithm 2 line 13.  The pass layout matches
Theorem 5.1's six passes:

====  =====================================================================
pass  work
====  =====================================================================
1     sample ``r`` i.i.d. uniform edges ``R`` (with replacement; the stream
      length ``m`` is known, so the i.i.d. sample is drawn by pre-selecting
      ``r`` uniform positions and collecting them in one sweep)
2     compute the degree of every endpoint of ``R`` by streaming counters
      (at most ``2r`` of them), giving ``d_e = min(d_u, d_v)`` per edge
 -    (offline) resolve ``ell`` from the realized ``d_R`` (Lemma 5.7) and
      draw ``ell`` indices of ``R`` proportional to ``d_e``
3     for each draw, sample ``w`` uniformly from ``N(e)`` - a single-item
      reservoir over the sub-stream of edges incident to the lower-degree
      endpoint of ``e``
4     check which wedges ``{e, w}`` close triangles by watching for the one
      missing edge of each wedge
5-6   :class:`~repro.core.assignment.StreamingAssigner` resolves
      ``Assignment(tau)`` for all distinct candidate triangles (Section 5.1);
      skipped entirely when pass 4 found no triangles
====  =====================================================================

The estimate is ``X = (m / r) * d_R * Y`` with ``Y`` the fraction of draws
whose triangle was assigned to the drawn edge (Algorithm 2 line 13).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sampling.discrete import CumulativeSampler
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, canonical_triangle
from . import engine
from .assignment import Assigner, SampleSource, StreamingAssigner, derive_sample_generator
from .params import ParameterPlan

AssignerFactory = Callable[[ParameterPlan, random.Random, SpaceMeter], Assigner]


@dataclass(frozen=True)
class SinglePassStackResult:
    """Diagnostics of one Algorithm 2 invocation.

    ``estimate`` is the sample of ``X``; the remaining fields expose the
    run's internals for the experiment harness (realized ``d_R``, resolved
    ``ell``, how many wedges closed, how many closed wedges were assigned to
    the drawn edge, pass count, and peak space).
    """

    estimate: float
    r: int
    ell: int
    d_r: float
    wedges_closed: int
    assigned_hits: int
    distinct_candidate_triangles: int
    passes_used: int
    space_words_peak: int


def run_single_estimate(
    stream: EdgeStream,
    plan: ParameterPlan,
    rng: random.Random,
    meter: Optional[SpaceMeter] = None,
    assigner_factory: Optional[AssignerFactory] = None,
) -> SinglePassStackResult:
    """Run Algorithm 2 once and return one sample of ``X`` with diagnostics.

    Parameters
    ----------
    stream:
        The input edge stream (length must equal ``plan.num_edges``).
    plan:
        Resolved parameters (see :class:`~repro.core.params.ParameterPlan`).
    rng:
        Randomness for all sampling steps.
    meter:
        Space meter to charge; a fresh unlimited one is created if omitted.
    assigner_factory:
        Builds the ``IsAssigned`` implementation; defaults to the streaming
        Algorithm 3.  Tests inject :class:`~repro.core.assignment.ExactAssigner`
        here to isolate Algorithm 2's error from Algorithm 3's.
    """
    meter = meter if meter is not None else SpaceMeter()
    m = len(stream)
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    scheduler = PassScheduler(stream, max_passes=6)
    chunked = engine.use_chunks(stream)
    if assigner_factory is None:
        assigner: Assigner = StreamingAssigner(plan, rng, meter)
    else:
        assigner = assigner_factory(plan, rng, meter)
    # All of the run's own sampling variates flow through one derived
    # source (vectorized block draws when NumPy is present); the assigner
    # derives its own at pass 5.  Both engines share this code, so the
    # variate stream is identical between them.
    source = derive_sample_generator(rng)

    sampled_edges = _pass1_uniform_sample(scheduler, plan.r, m, source, meter, chunked)
    vertex_degree = _pass2_degrees(scheduler, sampled_edges, meter, chunked)
    edge_degree = {
        e: min(vertex_degree[e[0]], vertex_degree[e[1]]) for e in set(sampled_edges)
    }

    weights = [float(edge_degree[e]) for e in sampled_edges]
    d_r = sum(weights)
    ell = plan.ell(d_r)
    sampler = CumulativeSampler(weights)
    if isinstance(source, SampleSource):
        draw_slots = sampler.draw_many_from_uniforms(source.uniforms(ell))
    else:  # pragma: no cover - exercised only without NumPy
        draw_slots = sampler.draw_many(source, ell)
    draws = [sampled_edges[slot] for slot in draw_slots]
    meter.allocate(2 * ell, "draws")

    owners = [_neighborhood_owner(e, vertex_degree) for e in draws]
    apexes = _pass3_neighbor_samples(scheduler, owners, vertex_degree, source, meter, chunked)
    candidates = _pass4_closure_check(scheduler, draws, owners, apexes, meter, chunked)

    distinct = {t for t in candidates if t is not None}
    assignment: Dict[Triangle, Optional[Edge]] = (
        assigner.assign(scheduler, distinct) if distinct else {}
    )

    hits = 0
    for edge, triangle in zip(draws, candidates):
        if triangle is not None and assignment.get(triangle) == edge:
            hits += 1
    y = hits / ell
    estimate = (m / plan.r) * d_r * y

    return SinglePassStackResult(
        estimate=estimate,
        r=plan.r,
        ell=ell,
        d_r=d_r,
        wedges_closed=sum(1 for t in candidates if t is not None),
        assigned_hits=hits,
        distinct_candidate_triangles=len(distinct),
        passes_used=scheduler.passes_used,
        space_words_peak=meter.peak_words,
    )


def _neighborhood_owner(e: Edge, vertex_degree: Dict[Vertex, int]) -> Vertex:
    """Owner of ``N(e)``: the lower-degree endpoint (Section 3 convention).

    ``N(e) = N(u)`` if ``d_u < d_v``, else ``N(v)`` - so ties go to the
    canonical second endpoint, exactly as in the paper's definition.
    """
    u, v = e
    return u if vertex_degree[u] < vertex_degree[v] else v


def _pass1_uniform_sample(
    scheduler: PassScheduler,
    r: int,
    m: int,
    source,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[Edge]:
    """Pass 1: collect ``r`` i.i.d. uniform stream positions (with replacement).

    Both engines pre-draw the ``r`` positions from the shared sample source
    and abandon the pass as soon as every slot is served (the scheduler
    counts abandoned passes exactly like consumed ones).
    """
    meter.allocate(2 * r, "R")
    if isinstance(source, SampleSource):
        import numpy as np

        positions = (source.uniforms(r) * m).astype(np.int64)
        if chunked:
            from . import kernels

            return kernels.collect_stream_positions(scheduler, positions, engine.chunk_size())
        position_list = positions.tolist()
    else:  # pragma: no cover - exercised only without NumPy
        position_list = [source.randrange(m) for _ in range(r)]
    slots_by_position: Dict[int, List[int]] = {}
    for slot, position in enumerate(position_list):
        slots_by_position.setdefault(position, []).append(slot)
    filled = collect_position_slots(scheduler.new_pass(), slots_by_position, r)
    sampled = [filled[slot] for slot in range(r)]
    return sampled


def collect_position_slots(pass_iter, slots_by_position: Dict[int, list], total: int) -> dict:
    """Shared pass-1 scan: serve pre-drawn stream positions (Python engine).

    ``slots_by_position`` maps stream position -> list of opaque slot keys
    (plain slot indices for the single runner, ``(instance, slot)`` pairs
    for the parallel one); returns ``{slot key: edge}``.  The pass is
    abandoned once all ``total`` slots are filled.
    """
    filled: dict = {}
    remaining = total
    try:
        for position, edge in enumerate(pass_iter):
            slots = slots_by_position.get(position)
            if slots:
                for key in slots:
                    filled[key] = edge
                remaining -= len(slots)
                if remaining == 0:
                    break  # every slot filled: the rest of the pass is dead tape
    finally:
        pass_iter.close()
    assert remaining == 0, "stream ended with unserved sample positions"
    return filled


def _pass2_degrees(
    scheduler: PassScheduler,
    sampled_edges: List[Edge],
    meter: SpaceMeter,
    chunked: bool = False,
) -> Dict[Vertex, int]:
    """Pass 2: stream-count degrees of all endpoints of ``R``."""
    tracked: Dict[Vertex, int] = {}
    for u, v in sampled_edges:
        tracked[u] = 0
        tracked[v] = 0
    meter.allocate(len(tracked), "degrees")
    if chunked:
        import numpy as np

        from . import kernels

        ids = np.array(sorted(tracked), dtype=np.int64)
        counts = kernels.count_tracked_degrees(scheduler, ids, engine.chunk_size())
        return dict(zip(ids.tolist(), counts.tolist()))
    for a, b in scheduler.new_pass():
        if a in tracked:
            tracked[a] += 1
        if b in tracked:
            tracked[b] += 1
    return tracked


def _pass3_neighbor_samples(
    scheduler: PassScheduler,
    owners: List[Vertex],
    vertex_degree: Dict[Vertex, int],
    source,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[Optional[Vertex]]:
    """Pass 3: per draw, a uniform member of the owner's neighborhood.

    Every owner is an endpoint of a pass-1 edge, so its exact degree is
    already on hand from pass 2 - a uniform neighbor therefore needs no
    reservoir: pre-draw a uniform *position* in the owner's incident
    sub-stream per draw, then capture the neighbor at that position during
    the scan.  No randomness is consumed mid-pass, and the pass is
    abandoned once every draw is served.  The chunked engine resolves the
    (owner, occurrence) events entirely vectorized
    (:func:`~repro.core.kernels.collect_neighbor_positions`); results are
    identical across engines by construction.
    """
    meter.allocate(len(owners) + len(set(owners)), "neighbor-reservoirs")
    if isinstance(source, SampleSource):
        import numpy as np

        degrees = np.fromiter(
            (vertex_degree[o] for o in owners), np.int64, count=len(owners)
        )
        positions = (source.uniforms(len(owners)) * degrees).astype(np.int64)
        if chunked:
            from . import kernels

            owner_ids = np.asarray(sorted(set(owners)), dtype=np.int64)
            owner_index = np.searchsorted(owner_ids, np.asarray(owners, dtype=np.int64))
            found = kernels.collect_neighbor_positions(
                scheduler, owner_ids, owner_index, positions, engine.chunk_size()
            )
            return [None if w < 0 else int(w) for w in found.tolist()]
        position_list = positions.tolist()
    else:  # pragma: no cover - exercised only without NumPy
        position_list = [source.randrange(vertex_degree[o]) for o in owners]
    pending: Dict[Vertex, List[Tuple[int, int]]] = {}
    for i, owner in enumerate(owners):
        pending.setdefault(owner, []).append((position_list[i], i))
    served = serve_neighbor_positions(scheduler.new_pass(), pending)
    return [served.get(i) for i in range(len(owners))]


def serve_neighbor_positions(pass_iter, pending: Dict[Vertex, list]) -> dict:
    """Shared pass-3 scan: serve per-owner incident-stream positions.

    ``pending`` maps owner -> list of ``(position, payload)`` pairs, where
    the payload is an opaque draw key (a draw index for the single runner,
    an ``(instance, draw)`` pair for the parallel one); positions index the
    owner's incident sub-stream, 0-based.  Returns ``{payload: neighbor}``.
    The pass is abandoned once every request is served.
    """
    for entries in pending.values():
        entries.sort()
    served: dict = {}
    seen: Dict[Vertex, int] = {owner: 0 for owner in pending}
    cursor: Dict[Vertex, int] = {owner: 0 for owner in pending}
    unserved = sum(len(entries) for entries in pending.values())
    try:
        for a, b in pass_iter:
            for owner, neighbor in ((a, b), (b, a)):
                entries = pending.get(owner)
                if entries is None:
                    continue
                occurrence = seen[owner]
                seen[owner] = occurrence + 1
                at = cursor[owner]
                while at < len(entries) and entries[at][0] == occurrence:
                    served[entries[at][1]] = neighbor
                    at += 1
                    unserved -= 1
                cursor[owner] = at
            if unserved == 0:
                break  # every draw served: the rest of the pass is dead tape
    finally:
        pass_iter.close()
    return served


def _pass4_closure_check(
    scheduler: PassScheduler,
    draws: List[Edge],
    owners: List[Vertex],
    apexes: List[Optional[Vertex]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[Optional[Triangle]]:
    """Pass 4: resolve which wedges ``{e, w}`` close into triangles.

    For draw ``i`` with edge ``(u, v)`` and apex ``w`` sampled from the
    owner's neighborhood, the only missing edge is (other endpoint, ``w``);
    a watch table detects it in one pass.  Returns the closed triangle per
    draw, or ``None``.
    """
    watch: Dict[Edge, List[int]] = {}
    wedges: List[Optional[Triangle]] = [None] * len(draws)
    for i, ((u, v), owner, w) in enumerate(zip(draws, owners, apexes)):
        if w is None:
            continue
        other = v if owner == u else u
        if w == other:
            continue  # sampled the edge's own endpoint; not a wedge
        wedges[i] = canonical_triangle(u, v, w)
        watch.setdefault(canonical_edge(other, w), []).append(i)
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
    closed = [False] * len(draws)
    if chunked:
        from . import kernels

        for key in kernels.scan_watch_keys(scheduler, list(watch), engine.chunk_size()):
            for i in watch[key]:
                closed[i] = True
    else:
        for edge in scheduler.new_pass():
            for i in watch.get(edge, ()):
                closed[i] = True
    return [wedges[i] if closed[i] else None for i in range(len(draws))]
