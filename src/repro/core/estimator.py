"""Section 5: Algorithm 2 - the six-pass triangle estimator.

One invocation of :func:`run_single_estimate` produces one sample of the
random variable ``X`` from Algorithm 2 line 13.  The pass layout matches
Theorem 5.1's six passes:

====  =====================================================================
pass  work
====  =====================================================================
1     sample ``r`` i.i.d. uniform edges ``R`` (with replacement; the stream
      length ``m`` is known, so the i.i.d. sample is drawn by pre-selecting
      ``r`` uniform positions and collecting them in one sweep)
2     compute the degree of every endpoint of ``R`` by streaming counters
      (at most ``2r`` of them), giving ``d_e = min(d_u, d_v)`` per edge
 -    (offline) resolve ``ell`` from the realized ``d_R`` (Lemma 5.7) and
      draw ``ell`` indices of ``R`` proportional to ``d_e``
3     for each draw, sample ``w`` uniformly from ``N(e)`` - a single-item
      reservoir over the sub-stream of edges incident to the lower-degree
      endpoint of ``e``
4     check which wedges ``{e, w}`` close triangles by watching for the one
      missing edge of each wedge
5-6   :class:`~repro.core.assignment.StreamingAssigner` resolves
      ``Assignment(tau)`` for all distinct candidate triangles (Section 5.1);
      skipped entirely when pass 4 found no triangles
====  =====================================================================

The estimate is ``X = (m / r) * d_R * Y`` with ``Y`` the fraction of draws
whose triangle was assigned to the drawn edge (Algorithm 2 line 13).

Every pass is implemented once, *multi-instance*: ``k`` independent
Algorithm 2 instances share each sweep of the tape (the paper's parallel
accounting - see :mod:`repro.core.parallel`, which drives these same
functions with ``k > 1``), while :func:`run_single_estimate` is simply the
``k = 1`` case.  On the chunked engines each pass is a
:class:`~repro.core.executor.PassPlan` executed - serially or sharded
across worker processes - by the shared executor spine; on the pure-Python
engine the reference per-edge scans below run instead.  All three are
seed-for-seed bit-identical.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..sampling.discrete import CumulativeSampler
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, canonical_triangle
from . import engine
from .assignment import Assigner, SampleSource, StreamingAssigner, derive_sample_generator
from .params import ParameterPlan
from .stages import (  # noqa: F401 - re-exported for stage-builder callers
    CallbackFold,
    EdgeFold,
    RoundStage,
    drive_folds,
    execute_stage,
    sweep_stages,
)

AssignerFactory = Callable[[ParameterPlan, random.Random, SpaceMeter], Assigner]

#: Theorem 5.1's constant-pass budget: one guessing round - however many
#: parallel instances it carries - opens at most six logical passes.  The
#: single and parallel runners budget their schedulers with it directly;
#: the k-deep speculative driver budgets ``6 * k`` for a window of ``k``
#: rounds (:data:`repro.core.speculate.PASSES_PER_ROUND` re-exports it).
PASS_BUDGET_PER_ROUND = 6

#: Opaque per-draw key used by the shared passes: ``(instance, slot)``.
DrawKey = Tuple[int, int]


@dataclass(frozen=True)
class SinglePassStackResult:
    """Diagnostics of one Algorithm 2 invocation.

    ``estimate`` is the sample of ``X``; the remaining fields expose the
    run's internals for the experiment harness (realized ``d_R``, resolved
    ``ell``, how many wedges closed, how many closed wedges were assigned to
    the drawn edge, pass count, and peak space).
    """

    estimate: float
    r: int
    ell: int
    d_r: float
    wedges_closed: int
    assigned_hits: int
    distinct_candidate_triangles: int
    passes_used: int
    space_words_peak: int
    #: Physical tape sweeps consumed (== ``passes_used`` unfused; strictly
    #: smaller when the fused sweep engine grouped passes - see
    #: :func:`repro.core.executor.run_plans`).
    sweeps_used: int = 0

    def to_state(self) -> dict:
        """The run as a JSON-representable document (snapshot payload)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_state(cls, state: dict) -> "SinglePassStackResult":
        """Rebuild a run from :meth:`to_state` output, bit-for-bit.

        Every field is a plain int or float and JSON round-trips floats
        exactly (repr-based encoding), so a restored run compares equal
        to the original.
        """
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in state.items() if key in names})


def run_single_estimate(
    stream: EdgeStream,
    plan: ParameterPlan,
    rng: random.Random,
    meter: Optional[SpaceMeter] = None,
    assigner_factory: Optional[AssignerFactory] = None,
) -> SinglePassStackResult:
    """Run Algorithm 2 once and return one sample of ``X`` with diagnostics.

    Parameters
    ----------
    stream:
        The input edge stream (length must equal ``plan.num_edges``).
    plan:
        Resolved parameters (see :class:`~repro.core.params.ParameterPlan`).
    rng:
        Randomness for all sampling steps.
    meter:
        Space meter to charge; a fresh unlimited one is created if omitted.
    assigner_factory:
        Builds the ``IsAssigned`` implementation; defaults to the streaming
        Algorithm 3.  Tests inject :class:`~repro.core.assignment.ExactAssigner`
        here to isolate Algorithm 2's error from Algorithm 3's.
    """
    meter = meter if meter is not None else SpaceMeter()
    m = len(stream)
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    scheduler = PassScheduler(stream, max_passes=PASS_BUDGET_PER_ROUND)
    chunked = engine.use_chunks(stream)
    if assigner_factory is None:
        assigner: Assigner = StreamingAssigner(plan, rng, meter)
    else:
        assigner = assigner_factory(plan, rng, meter)
    # All of the run's own sampling variates flow through one derived
    # source (vectorized block draws when NumPy is present); the assigner
    # derives its own at pass 5.  Both engines share this code, so the
    # variate stream is identical between them.
    sources = [derive_sample_generator(rng)]

    sampled = pass1_uniform_samples(scheduler, plan.r, m, sources, meter, chunked)
    vertex_degree = pass2_degree_table(scheduler, sampled, meter, chunked)
    draws, owners, ells, d_rs = draw_weighted_edges(sampled, vertex_degree, plan, sources, meter)
    apexes = pass3_neighbor_apexes(scheduler, owners, vertex_degree, sources, meter, chunked)

    # The default streaming assigner can replay a pre-collected incident
    # buffer, which lets pass 4 (closure watch) and pass 5 (assignment
    # sampling) share one fused tape sweep; injected assigners run their
    # own passes, so fusing is only engaged for the default.
    fused = engine.fuse() and assigner_factory is None
    if fused:
        candidates, incident = pass45_closure_and_collect(
            scheduler, draws, owners, apexes, meter, chunked
        )
    else:
        candidates = pass4_closure_triangles(scheduler, draws, owners, apexes, meter, chunked)
        incident = None

    distinct = {t for t in candidates[0] if t is not None}
    if not distinct:
        assignment: Dict[Triangle, Optional[Edge]] = {}
    elif fused:
        assignment = assigner.assign(scheduler, distinct, incident_rows=incident)  # type: ignore[call-arg]
    else:
        assignment = assigner.assign(scheduler, distinct)

    hits = 0
    for edge, triangle in zip(draws[0], candidates[0]):
        if triangle is not None and assignment.get(triangle) == edge:
            hits += 1
    y = hits / ells[0]
    estimate = (m / plan.r) * d_rs[0] * y

    return SinglePassStackResult(
        estimate=estimate,
        r=plan.r,
        ell=ells[0],
        d_r=d_rs[0],
        wedges_closed=sum(1 for t in candidates[0] if t is not None),
        assigned_hits=hits,
        distinct_candidate_triangles=len(distinct),
        passes_used=scheduler.passes_used,
        space_words_peak=meter.peak_words,
        sweeps_used=scheduler.sweeps_used,
    )


def _neighborhood_owner(e: Edge, vertex_degree: Dict[Vertex, int]) -> Vertex:
    """Owner of ``N(e)``: the lower-degree endpoint (Section 3 convention).

    ``N(e) = N(u)`` if ``d_u < d_v``, else ``N(v)`` - so ties go to the
    canonical second endpoint, exactly as in the paper's definition.
    """
    u, v = e
    return u if vertex_degree[u] < vertex_degree[v] else v


# ---------------------------------------------------------------------------
# the shared multi-instance passes (k instances, one sweep each), each
# expressed as a stage builder (build the request, run the sweep, finish)


class _PositionSlotsFold(EdgeFold):
    """Pass-1 fold: serve pre-drawn stream positions (Python engine)."""

    can_finish_early = True

    __slots__ = ("_slots_by_position", "_filled", "_remaining", "_position")

    def __init__(self, slots_by_position: Dict[int, list], total: int) -> None:
        self._slots_by_position = slots_by_position
        self._filled: dict = {}
        self._remaining = total
        self._position = 0

    def edge(self, u: Vertex, v: Vertex) -> None:
        slots = self._slots_by_position.get(self._position)
        if slots:
            edge = (u, v)
            for key in slots:
                self._filled[key] = edge
            self._remaining -= len(slots)
        self._position += 1

    def done(self) -> bool:
        return self._remaining == 0

    def result(self) -> dict:
        assert self._remaining == 0, "stream ended with unserved sample positions"
        return self._filled


def stage_pass1(
    r: int, m: int, sources: List, meter: SpaceMeter, chunked: bool
) -> RoundStage:
    """Build the pass-1 stage: ``r`` i.i.d. uniform edges per instance.

    Positions are pre-drawn in instance-then-slot order on every engine, so
    the per-instance variate streams stay aligned; the sweep abandons once
    every slot is served (the scheduler counts abandoned passes exactly
    like consumed ones).
    """
    k = len(sources)
    meter.allocate(2 * r * k, "R")
    if isinstance(sources[0], SampleSource):
        import numpy as np

        positions = np.concatenate(
            [(sources[j].uniforms(r) * m).astype(np.int64) for j in range(k)]
        )
        if chunked:
            from . import kernels

            plan = kernels.PositionCollectPlan(positions)

            def finish_chunked() -> List[List[Edge]]:
                flat = plan.result()
                return [flat[j * r : (j + 1) * r] for j in range(k)]

            return RoundStage(plans=[plan], finish=finish_chunked)
        position_list = positions.tolist()
    else:  # pragma: no cover - exercised only without NumPy
        position_list = [sources[j].randrange(m) for j in range(k) for _ in range(r)]
    slots_by_position: Dict[int, List[DrawKey]] = {}
    for flat_slot, position in enumerate(position_list):
        slots_by_position.setdefault(position, []).append(divmod(flat_slot, r))
    fold = _PositionSlotsFold(slots_by_position, r * k)

    def finish() -> List[List[Edge]]:
        filled = fold.result()
        return [[filled[(j, slot)] for slot in range(r)] for j in range(k)]

    return RoundStage(fold=fold, finish=finish)


def pass1_uniform_samples(
    scheduler: PassScheduler,
    r: int,
    m: int,
    sources: List,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Edge]]:
    """Pass 1: ``r`` i.i.d. uniform edges per instance, one shared sweep."""
    return execute_stage(scheduler, stage_pass1(r, m, sources, meter, chunked))


def collect_position_slots(pass_iter, slots_by_position: Dict[int, list], total: int) -> dict:
    """Shared pass-1 scan: serve pre-drawn stream positions (Python engine).

    ``slots_by_position`` maps stream position -> list of opaque slot keys
    (``(instance, slot)`` pairs in the shared passes); returns
    ``{slot key: edge}``.  The pass is abandoned once all ``total`` slots
    are filled.
    """
    fold = _PositionSlotsFold(slots_by_position, total)
    drive_folds(pass_iter, [fold])
    return fold.result()


class _TrackedDegreeFold(EdgeFold):
    """Pass-2 fold: streaming degree counters for the tracked endpoints."""

    __slots__ = ("tracked",)

    def __init__(self, tracked: Dict[Vertex, int]) -> None:
        self.tracked = tracked

    def edge(self, u: Vertex, v: Vertex) -> None:
        tracked = self.tracked
        if u in tracked:
            tracked[u] += 1
        if v in tracked:
            tracked[v] += 1


def stage_pass2(
    sampled: List[List[Edge]], meter: SpaceMeter, chunked: bool
) -> RoundStage:
    """Build the pass-2 stage: one shared degree table for all endpoints.

    Degrees are deterministic functions of the stream, so every instance
    reading the same table is exact, not a statistical shortcut.
    """
    tracked: Dict[Vertex, int] = {}
    for instance in sampled:
        for u, v in instance:
            tracked[u] = 0
            tracked[v] = 0
    meter.allocate(len(tracked), "degrees")
    if chunked:
        import numpy as np

        from . import kernels

        ids = np.array(sorted(tracked), dtype=np.int64)
        plan = kernels.DegreeCountPlan(ids)
        return RoundStage(
            plans=[plan],
            finish=lambda: dict(zip(ids.tolist(), plan.result().tolist())),
        )
    fold = _TrackedDegreeFold(tracked)
    return RoundStage(fold=fold, finish=lambda: fold.tracked)


def pass2_degree_table(
    scheduler: PassScheduler,
    sampled: List[List[Edge]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> Dict[Vertex, int]:
    """Pass 2: one shared degree table for all endpoints of all instances."""
    return execute_stage(scheduler, stage_pass2(sampled, meter, chunked))


def draw_weighted_edges(
    sampled: List[List[Edge]],
    degree: Dict[Vertex, int],
    plan: ParameterPlan,
    sources: List,
    meter: SpaceMeter,
) -> Tuple[List[List[Edge]], List[List[Vertex]], List[int], List[float]]:
    """Offline step between passes 2 and 3: the ``d_e``-proportional draws.

    Per instance: resolve ``ell`` from the realized ``d_R`` (Lemma 5.7),
    draw ``ell`` indices of ``R`` proportional to ``d_e``, and precompute
    each draw's neighborhood owner.  Returns ``(draws, owners, ells, d_rs)``
    indexed by instance.
    """
    draws: List[List[Edge]] = []
    owners: List[List[Vertex]] = []
    ells: List[int] = []
    d_rs: List[float] = []
    for j, instance in enumerate(sampled):
        weights = [float(min(degree[u], degree[v])) for u, v in instance]
        d_r = sum(weights)
        ell = plan.ell(d_r)
        sampler = CumulativeSampler(weights)
        if isinstance(sources[j], SampleSource):
            slots = sampler.draw_many_from_uniforms(sources[j].uniforms(ell))
        else:  # pragma: no cover - exercised only without NumPy
            slots = sampler.draw_many(sources[j], ell)
        instance_draws = [instance[slot] for slot in slots]
        draws.append(instance_draws)
        owners.append([_neighborhood_owner(e, degree) for e in instance_draws])
        ells.append(ell)
        d_rs.append(d_r)
        meter.allocate(2 * ell, "draws")
    return draws, owners, ells, d_rs


class _NeighborServeFold(EdgeFold):
    """Pass-3 fold: serve per-owner incident-stream positions."""

    can_finish_early = True

    __slots__ = ("_pending", "_served", "_seen", "_cursor", "_unserved")

    def __init__(self, pending: Dict[Vertex, list]) -> None:
        for entries in pending.values():
            entries.sort()
        self._pending = pending
        self._served: dict = {}
        self._seen: Dict[Vertex, int] = {owner: 0 for owner in pending}
        self._cursor: Dict[Vertex, int] = {owner: 0 for owner in pending}
        self._unserved = sum(len(entries) for entries in pending.values())

    def edge(self, u: Vertex, v: Vertex) -> None:
        for owner, neighbor in ((u, v), (v, u)):
            entries = self._pending.get(owner)
            if entries is None:
                continue
            occurrence = self._seen[owner]
            self._seen[owner] = occurrence + 1
            at = self._cursor[owner]
            while at < len(entries) and entries[at][0] == occurrence:
                self._served[entries[at][1]] = neighbor
                at += 1
                self._unserved -= 1
            self._cursor[owner] = at

    def done(self) -> bool:
        return self._unserved == 0

    def result(self) -> dict:
        return self._served


def stage_pass3(
    owners: List[List[Vertex]],
    degree: Dict[Vertex, int],
    sources: List,
    meter: SpaceMeter,
    chunked: bool,
) -> RoundStage:
    """Build the pass-3 stage: per-draw uniform neighbor samples.

    Every owner is an endpoint of a pass-1 edge, so its exact degree is
    already on hand from pass 2 - a uniform neighbor therefore needs no
    reservoir: each draw pre-draws a uniform *position* in its owner's
    incident sub-stream from its instance's own sample source (preserving
    cross-instance independence) and the scan just captures the neighbors
    at the requested positions.  No randomness is consumed mid-pass, and
    the pass is abandoned once every draw is served.  The chunked engines
    resolve the (owner, occurrence) events entirely vectorized
    (:class:`~repro.core.kernels.NeighborPositionPlan`); results are
    identical across engines by construction.
    """
    k = len(sources)
    total_draws = sum(len(instance_owners) for instance_owners in owners)
    distinct_owners = {owner for instance_owners in owners for owner in instance_owners}
    meter.allocate(total_draws + len(distinct_owners), "neighbor-reservoirs")
    vectorized = isinstance(sources[0], SampleSource) if sources else False
    if vectorized:
        import numpy as np

        position_lists = []
        for j in range(k):
            degrees = np.fromiter(
                (degree[o] for o in owners[j]), np.int64, count=len(owners[j])
            )
            position_lists.append(
                (sources[j].uniforms(len(owners[j])) * degrees).astype(np.int64)
            )
        if chunked:
            from . import kernels

            owner_ids = np.asarray(sorted(distinct_owners), dtype=np.int64)
            flat_owners = np.asarray(
                [owner for instance_owners in owners for owner in instance_owners],
                dtype=np.int64,
            )
            owner_index = np.searchsorted(owner_ids, flat_owners)
            plan = kernels.NeighborPositionPlan(
                owner_ids, owner_index, np.concatenate(position_lists)
            )

            def finish_chunked() -> List[List[Optional[Vertex]]]:
                found = plan.result()
                apexes = []
                at = 0
                for j in range(k):
                    row = found[at : at + len(owners[j])].tolist()
                    apexes.append([None if w < 0 else int(w) for w in row])
                    at += len(owners[j])
                return apexes

            return RoundStage(plans=[plan], finish=finish_chunked)
        positions = [p.tolist() for p in position_lists]
    else:  # pragma: no cover - exercised only without NumPy
        positions = [
            [sources[j].randrange(degree[o]) for o in owners[j]] for j in range(k)
        ]
    pending: Dict[Vertex, List[Tuple[int, DrawKey]]] = {}
    for j, instance_owners in enumerate(owners):
        for i, owner in enumerate(instance_owners):
            pending.setdefault(owner, []).append((positions[j][i], (j, i)))
    fold = _NeighborServeFold(pending)

    def finish() -> List[List[Optional[Vertex]]]:
        served = fold.result()
        return [
            [served.get((j, i)) for i in range(len(owners[j]))]
            for j in range(len(owners))
        ]

    return RoundStage(fold=fold, finish=finish)


def pass3_neighbor_apexes(
    scheduler: PassScheduler,
    owners: List[List[Vertex]],
    degree: Dict[Vertex, int],
    sources: List,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Optional[Vertex]]]:
    """Pass 3: per-draw uniform neighbor samples, all instances at once."""
    return execute_stage(scheduler, stage_pass3(owners, degree, sources, meter, chunked))


def serve_neighbor_positions(pass_iter, pending: Dict[Vertex, list]) -> dict:
    """Shared pass-3 scan: serve per-owner incident-stream positions.

    ``pending`` maps owner -> list of ``(position, payload)`` pairs, where
    the payload is an opaque draw key (an ``(instance, draw)`` pair in the
    shared passes); positions index the owner's incident sub-stream,
    0-based.  Returns ``{payload: neighbor}``.  The pass is abandoned once
    every request is served.
    """
    fold = _NeighborServeFold(pending)
    drive_folds(pass_iter, [fold])
    return fold.result()


def _closure_watch_tables(
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
) -> Tuple[Dict[Edge, List[DrawKey]], List[List[Optional[Triangle]]]]:
    """The pass-4 watch table and per-draw wedge triangles (no scan yet).

    For a draw with edge ``(u, v)`` and apex ``w`` sampled from the owner's
    neighborhood, the only missing edge is (other endpoint, ``w``).  The
    watch table is keyed by that missing edge, so overlapping watches
    across instances collapse to *one* unique-key scan; hits fan back out
    to every ``(instance, draw)`` watcher.
    """
    watch: Dict[Edge, List[DrawKey]] = {}
    wedges: List[List[Optional[Triangle]]] = [
        [None] * len(draws[j]) for j in range(len(draws))
    ]
    for j in range(len(draws)):
        for i, ((u, v), owner, w) in enumerate(zip(draws[j], owners[j], apexes[j])):
            if w is None:
                continue
            other = v if owner == u else u
            if w == other:
                continue  # sampled the edge's own endpoint; not a wedge
            wedges[j][i] = canonical_triangle(u, v, w)
            watch.setdefault(canonical_edge(other, w), []).append((j, i))
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
    return watch, wedges


def _fan_out_closure(
    closed: Dict[DrawKey, bool],
    wedges: List[List[Optional[Triangle]]],
    draws: List[List[Edge]],
) -> List[List[Optional[Triangle]]]:
    """The closed triangle per draw (``None`` for open wedges)."""
    return [
        [wedges[j][i] if closed.get((j, i)) else None for i in range(len(draws[j]))]
        for j in range(len(draws))
    ]


class _WatchFold(EdgeFold):
    """Pass-4 fold: mark watched missing edges seen anywhere on the tape."""

    __slots__ = ("watch", "closed")

    def __init__(self, watch: Dict[Edge, List[DrawKey]]) -> None:
        self.watch = watch
        self.closed: Dict[DrawKey, bool] = {}

    def edge(self, u: Vertex, v: Vertex) -> None:
        for key in self.watch.get((u, v), ()):
            self.closed[key] = True


class _FusedWatchCollectFold(EdgeFold):
    """Fused pass-4/5 fold: closure watch plus wedge-superset buffering."""

    __slots__ = ("watch", "closed", "superset", "incident")

    def __init__(self, watch: Dict[Edge, List[DrawKey]], superset: set) -> None:
        self.watch = watch
        self.closed: Dict[DrawKey, bool] = {}
        self.superset = superset
        self.incident: list = []

    def edge(self, u: Vertex, v: Vertex) -> None:
        for key in self.watch.get((u, v), ()):
            self.closed[key] = True
        if u in self.superset or v in self.superset:
            self.incident.append((u, v))


def _stage_watch_scan(
    watch: Dict[Edge, List[DrawKey]],
    wedges: List[List[Optional[Triangle]]],
    draws: List[List[Edge]],
    chunked: bool,
) -> RoundStage:
    """One dedicated pass-4 watch scan over prebuilt tables (one pass)."""
    if chunked:
        from . import kernels

        plan = kernels.WatchKeyPlan(list(watch))

        def finish_chunked() -> List[List[Optional[Triangle]]]:
            closed: Dict[DrawKey, bool] = {}
            for found in plan.result():
                for key in watch[found]:
                    closed[key] = True
            return _fan_out_closure(closed, wedges, draws)

        return RoundStage(plans=[plan], finish=finish_chunked)
    fold = _WatchFold(watch)
    return RoundStage(
        fold=fold, finish=lambda: _fan_out_closure(fold.closed, wedges, draws)
    )


def stage_pass4(
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
    chunked: bool,
) -> RoundStage:
    """Build the pass-4 stage: resolve which wedges ``{e, w}`` close.

    See :func:`_closure_watch_tables` for the watch-table construction and
    the cross-instance dedup.  ``finish()`` is the closed triangle per
    draw, or ``None``.
    """
    watch, wedges = _closure_watch_tables(draws, owners, apexes, meter)
    return _stage_watch_scan(watch, wedges, draws, chunked)


def pass4_closure_triangles(
    scheduler: PassScheduler,
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Optional[Triangle]]]:
    """Pass 4: resolve which wedges ``{e, w}`` close, all instances at once."""
    return execute_stage(scheduler, stage_pass4(draws, owners, apexes, meter, chunked))


def stage_pass45(
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
    chunked: bool,
) -> RoundStage:
    """Fused passes 4+5: closure watch and incident collection, one sweep.

    The assignment stage (pass 5) replays the edges incident to the
    candidate triangles' vertices - a set only known once pass 4 resolves
    which wedges closed.  Fusing the two is still exact because the
    replayed fold ignores untracked endpoints: this sweep *buffers* the
    edges incident to every **wedge** vertex (a superset of every possible
    candidate vertex, fixed before the sweep), and the caller replays the
    buffer through the pass-5 per-edge logic after closure is known.  The
    replayed sequence - and therefore every degree counter and every
    sample bundle's RNG consumption - is identical to what a dedicated
    pass-5 sweep would have produced, so estimates are bit-identical to
    unfused execution; the speculative buffer (metered as
    ``fused-incident-buffer``) is the space this trades for one fewer
    sweep of the tape.

    Sweep accounting: a round whose wedges close saves exactly one sweep
    (6 instead of 6 unfused passes over 5 sweeps).  A round with wedges
    but no closures charges the speculative pass-5 logical pass without
    saving a sweep (unfused execution would have skipped passes 5-6
    entirely); a round with no wedges at all falls back to the plain
    pass-4 scan and speculates nothing.  Fused sweeps per estimate are
    therefore never more than unfused, and strictly fewer as soon as any
    round finds a candidate triangle.

    ``finish()`` returns ``(candidates, incident_rows)`` where
    ``incident_rows`` is the buffered incident sequence in stream order
    (``(k, 2)`` blocks on the chunked engines, edge tuples on the Python
    path) for :func:`replay_incident_rows` - or ``None`` when nothing was
    speculated.
    """
    watch, wedges = _closure_watch_tables(draws, owners, apexes, meter)
    superset = {
        endpoint for row in wedges for t in row if t is not None for endpoint in t
    }
    if not watch:
        # No wedges at all: there is nothing pass 5 could ever track, so
        # speculating would charge a logical pass for provably dead work.
        # Run the plain pass-4 scan (which resolves to "no candidates")
        # and let the caller skip the assignment stage, exactly like
        # unfused execution does on such rounds.
        base = _stage_watch_scan(watch, wedges, draws, chunked)
        return RoundStage(
            plans=base.plans,
            fold=base.fold,
            passes=base.passes,
            finish=lambda: (base.finish(), None),
        )
    if chunked:
        from . import kernels

        watch_plan = kernels.WatchKeyPlan(list(watch))
        collect_plan = kernels.IncidentCollectPlan(superset)

        def finish_chunked():
            closed: Dict[DrawKey, bool] = {}
            for key_edge in watch_plan.result():
                for key in watch[key_edge]:
                    closed[key] = True
            incident = collect_plan.result()
            meter.allocate(
                2 * sum(len(block) for block in incident), "fused-incident-buffer"
            )
            return _fan_out_closure(closed, wedges, draws), incident

        return RoundStage(plans=[watch_plan, collect_plan], finish=finish_chunked)
    fused_fold = _FusedWatchCollectFold(watch, superset)

    def finish():
        meter.allocate(2 * len(fused_fold.incident), "fused-incident-buffer")
        return _fan_out_closure(fused_fold.closed, wedges, draws), fused_fold.incident

    return RoundStage(fold=fused_fold, passes=2, finish=finish)


def pass45_closure_and_collect(
    scheduler: PassScheduler,
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> Tuple[List[List[Optional[Triangle]]], Optional[list]]:
    """Fused passes 4+5 as one sweep (see :func:`stage_pass45`)."""
    return execute_stage(scheduler, stage_pass45(draws, owners, apexes, meter, chunked))
