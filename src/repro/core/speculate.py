"""Speculative round fusion: ``k`` guessing rounds, one set of sweeps.

The driver's geometric guessing loop runs rounds that are **mutually
independent**: round ``i+j``'s plan depends only on its (pre-determined)
guess ``T/2^(i+j)`` and its RNGs derive from the root generator in a fixed
label order, never on any earlier round's outcome.  The only sequential
thing about the loop is its *termination test* - whether a round's median
accepts.  That makes the loop speculable to any depth: pre-draw rounds
``i .. i+k-1`` from checkpointed root-RNG states, drive all ``k`` round
programs in lockstep with each pass-``j`` stage of every live round served
by **one** shared tape sweep, and decide afterwards:

* every round up to (and including) the first acceptance is exactly a
  round the sequential driver would have run - **commit the prefix**.  A
  fully rejected window commits whole and the loop speculates the next
  window, so multi-round estimates consume ~``1/k`` of the physical
  sweeps the sequential loop would have;
* everything *after* the first acceptance is work the sequential driver
  would never have done - **discard the suffix**.  Its results and meters
  are dropped, the root generator is rewound past its speculative spawns
  (the driver does this, restoring the checkpoint taken before the first
  discarded round's spawns), and the sweeps that served *only* discarded
  rounds are booked as **wasted**
  (:attr:`~repro.streams.multipass.PassScheduler.sweeps_wasted`).  Sweeps
  shared with a committed round stay committed - that traversal was
  needed regardless, so acceptance costs no extra committed sweeps.

Bit-identity contract: each round's program
(:func:`~repro.core.parallel.round_program`) folds exactly the per-edge /
per-chunk sequence it would fold with private sweeps (see
:func:`~repro.core.stages.sweep_stages`), and all randomness is strictly
per-round, so every committed estimate, diagnostic, and logical-pass count
is bit-identical to the sequential driver **at any depth** - at any worker
count, fused or not, shared memory on or off.  Depth 2 is exactly the
round-pair driver this module started as (:func:`run_speculative_pair`
remains as its adapter).

Cleanup contract: if a shared sweep raises (stream I/O error, worker
failure), the window closes every still-live round program before the
exception propagates, so their generator ``finally`` blocks run; the
driver's commit/discard bookkeeping - including the root-RNG rewind - is
exception-safe on its side (see the speculative branch of
:meth:`~repro.core.driver.TriangleCountEstimator.estimate`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Generator, List, Sequence

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from . import engine
from .estimator import PASS_BUDGET_PER_ROUND, SinglePassStackResult
from .parallel import round_program
from .params import ParameterPlan
from .stages import TaggedStage, sweep_stages

#: Owner tags for the scheduler's committed/wasted sweep accounting.  The
#: window tags position ``0`` with :data:`PRIMARY` and position ``j >= 1``
#: with ``f"{SPECULATIVE}{j}"``.
PRIMARY = "round"
SPECULATIVE = "speculative"

#: Logical-pass budget per round inside a window (Theorem 5.1's constant,
#: shared with the sequential runners' schedulers).
PASSES_PER_ROUND = PASS_BUDGET_PER_ROUND


def _owner_tags(depth: int) -> List[str]:
    return [PRIMARY] + [f"{SPECULATIVE}{j}" for j in range(1, depth)]


def window_program(
    m: int,
    plans: Sequence[ParameterPlan],
    rng_lists: Sequence[List[random.Random]],
    meters: Sequence[SpaceMeter],
    chunked: bool,
    owners: Sequence[str],
) -> Generator[List[TaggedStage], None, List[List[SinglePassStackResult]]]:
    """The lockstep window as a stage program: yields, never sweeps.

    Drives ``len(plans)`` independent round programs in lockstep, yielding
    at each step the pending owner-tagged stages of every still-running
    round as one batch.  The *caller* executes each batch - as one fused
    sweep (:func:`run_speculative_window`), or merged with other windows'
    batches on a shared scheduler (the serving layer) - then resumes the
    program with ``send(None)``; the program collects each stage's
    ``finish()`` itself.  Returns the per-round result lists, aligned with
    ``owners``.

    Cleanup contract: if the caller's sweep raises, closing this generator
    (which a ``finally`` in the caller must do) closes every still-live
    round program so their cleanup runs before the exception propagates.
    """
    depth = len(plans)
    if depth < 1:
        raise ValueError("a speculative window needs at least one round")
    if len(rng_lists) != depth or len(meters) != depth or len(owners) != depth:
        raise ValueError("plans, rng_lists, meters, and owners must align per round")
    programs = {
        owner: round_program(m, plans[j], rng_lists[j], meters[j], chunked)
        for j, owner in enumerate(owners)
    }
    stages = {}
    results = {}
    try:
        for owner in owners:
            stages[owner] = next(programs[owner])
        while stages:
            live = [owner for owner in owners if owner in stages]
            yield [(owner, stages[owner]) for owner in live]
            for owner in live:
                try:
                    stages[owner] = programs[owner].send(stages[owner].finish())
                except StopIteration as stop:
                    results[owner] = stop.value
                    del stages[owner]
    finally:
        # Exception safety: a failed shared sweep must not leave round
        # programs suspended mid-stage - closing them runs their cleanup
        # (and is a no-op for programs that already returned).
        for program in programs.values():
            program.close()
    return [results[owner] for owner in owners]


@dataclass
class SpeculativeWindow:
    """Outcome of one fused ``k``-round window, before any verdicts.

    ``results[j]`` holds round ``j``'s per-instance results (each carrying
    that round's *own* logical-pass and solo-sweep accounting); the sweep
    properties expose the window's shared physical traversals.  The driver
    walks the rounds in order, commits every result up to the first
    acceptance, and calls :meth:`discard_from` with the index of the first
    round the sequential driver would never have run, after which
    :attr:`sweeps_committed` / :attr:`sweeps_wasted` report the split.
    """

    results: List[List[SinglePassStackResult]]
    _owners: List[str] = field(repr=False)
    _scheduler: PassScheduler = field(repr=False)

    @property
    def depth(self) -> int:
        """Number of rounds the window ran."""
        return len(self.results)

    @property
    def sweeps_used(self) -> int:
        """Physical tape sweeps the fused window performed."""
        return self._scheduler.sweeps_used

    @property
    def sweeps_committed(self) -> int:
        """Sweeps serving committed work (all of them until a discard)."""
        return self._scheduler.sweeps_committed

    @property
    def sweeps_wasted(self) -> int:
        """Sweeps that served only discarded rounds (0 until a discard)."""
        return self._scheduler.sweeps_wasted

    def discard_from(self, index: int) -> None:
        """Book rounds ``index..depth-1`` as discarded speculation (idempotent).

        Sweeps that served only discarded rounds move to
        :attr:`sweeps_wasted`; sweeps shared with any committed round stay
        committed.
        """
        for owner in self._owners[index:]:
            self._scheduler.discard_owner(owner)


def run_speculative_window(
    stream: EdgeStream,
    plans: Sequence[ParameterPlan],
    rng_lists: Sequence[List[random.Random]],
    meters: Sequence[SpaceMeter],
    scheduler: "PassScheduler | None" = None,
) -> SpeculativeWindow:
    """Run ``len(plans)`` independent guessing rounds through shared sweeps.

    All rounds' programs advance in lockstep: at each step the pending
    stages (one per still-running round) execute as a single fused sweep,
    tagged with the rounds it serves.  When a round finishes early (a
    round with no candidate triangles skips its assignment stages), the
    others continue on sweeps tagged without it - the sweeps a later
    discard can declare wasted are exactly those no committed round rode.

    The per-round results are bit-identical to running each round through
    :func:`~repro.core.parallel.run_parallel_estimates` on its own.

    If a shared sweep raises, every still-live round program is closed
    before the exception propagates (their ``finally`` blocks run); the
    scheduler - and with it the window's sweep accounting - is abandoned
    with the exception (unless the caller passed its own ``scheduler``,
    which the recovery layer does precisely to keep reading the aborted
    window's sweep counts for its wasted-work bookkeeping).
    """
    depth = len(plans)
    if depth < 1:
        raise ValueError("a speculative window needs at least one round")
    if len(rng_lists) != depth or len(meters) != depth:
        raise ValueError("plans, rng_lists, and meters must align per round")
    if scheduler is None:
        scheduler = PassScheduler(stream, max_passes=PASSES_PER_ROUND * depth)
    chunked = engine.use_chunks(stream)
    m = len(stream)
    owners = _owner_tags(depth)
    program = window_program(m, plans, rng_lists, meters, chunked, owners)
    try:
        batch = next(program)
        while True:
            sweep_stages(
                scheduler,
                [stage for _, stage in batch],
                owners=[owner for owner, _ in batch],
            )
            batch = program.send(None)
    except StopIteration as stop:
        results = stop.value
    finally:
        program.close()
    return SpeculativeWindow(
        results=results,
        _owners=owners,
        _scheduler=scheduler,
    )


@dataclass
class SpeculativePair:
    """Depth-2 adapter: one primary round plus one speculative round.

    Kept as the stable surface of the original round-pair driver;
    internally every pair is a two-round :class:`SpeculativeWindow`.
    """

    primary: List[SinglePassStackResult]
    speculative: List[SinglePassStackResult]
    _window: SpeculativeWindow = field(repr=False)

    @property
    def sweeps_used(self) -> int:
        """Physical tape sweeps the fused pair performed."""
        return self._window.sweeps_used

    @property
    def sweeps_committed(self) -> int:
        """Sweeps serving committed work (all of them until a discard)."""
        return self._window.sweeps_committed

    @property
    def sweeps_wasted(self) -> int:
        """Sweeps that served only discarded speculation (0 until a discard)."""
        return self._window.sweeps_wasted

    def discard_speculative(self) -> None:
        """Book the speculative round's solo sweeps as wasted (idempotent)."""
        self._window.discard_from(1)


def run_speculative_pair(
    stream: EdgeStream,
    plan_primary: ParameterPlan,
    rngs_primary: List[random.Random],
    meter_primary: SpaceMeter,
    plan_speculative: ParameterPlan,
    rngs_speculative: List[random.Random],
    meter_speculative: SpaceMeter,
) -> SpeculativePair:
    """Run two independent guessing rounds through shared tape sweeps.

    The depth-2 case of :func:`run_speculative_window`, returning the
    original pair surface (``primary`` / ``speculative`` results and the
    :meth:`~SpeculativePair.discard_speculative` verdict hook).
    """
    window = run_speculative_window(
        stream,
        [plan_primary, plan_speculative],
        [rngs_primary, rngs_speculative],
        [meter_primary, meter_speculative],
    )
    return SpeculativePair(
        primary=window.results[0],
        speculative=window.results[1],
        _window=window,
    )
