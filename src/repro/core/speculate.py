"""Speculative round-pair fusion: two guessing rounds, one set of sweeps.

The driver's geometric guessing loop runs rounds that are **mutually
independent**: round ``i+1``'s plan depends only on its (pre-determined)
guess ``T/2^(i+1)`` and its RNGs derive from the root generator in a fixed
label order, never on round ``i``'s outcome.  The only sequential thing
about the loop is its *termination test* - whether round ``i``'s median
accepts.  That makes the loop speculable: run round ``i`` and round
``i+1`` at the same time, with each pass-``k`` stage of both rounds served
by **one** shared tape sweep, and decide afterwards:

* round ``i`` **rejects** (the common case on multi-round estimates): the
  speculative round is exactly the round the sequential driver would have
  run next - commit it.  The pair consumed ~half the sweeps two sequential
  rounds would have;
* round ``i`` **accepts**: the speculative round is work the sequential
  driver would never have done - discard it.  Its results, meter, and RNGs
  are dropped, the root generator is rewound past its speculative spawns
  (the driver does this), and the sweeps that served *only* the
  speculative round are booked as **wasted**
  (:attr:`~repro.streams.multipass.PassScheduler.sweeps_wasted`).  Sweeps
  shared with round ``i`` stay committed - that traversal was needed
  regardless, so acceptance costs no extra committed sweeps.

Bit-identity contract: each round's program
(:func:`~repro.core.parallel.round_program`) folds exactly the per-edge /
per-chunk sequence it would fold with private sweeps (see
:func:`~repro.core.stages.sweep_stages`), and all randomness is strictly
per-round, so every committed estimate, diagnostic, and logical-pass count
is bit-identical to the sequential driver - at any worker count, fused or
not, shared memory on or off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from . import engine
from .estimator import SinglePassStackResult
from .parallel import round_program
from .params import ParameterPlan
from .stages import sweep_stages

#: Owner tags for the scheduler's committed/wasted sweep accounting.
PRIMARY = "round"
SPECULATIVE = "speculative"


@dataclass
class SpeculativePair:
    """Outcome of one fused round pair, before the commit/discard verdict.

    ``primary`` / ``speculative`` are the two rounds' per-instance results
    (each carrying its round's *own* logical-pass and solo-sweep
    accounting); the sweep properties expose the pair's shared physical
    traversals.  The driver examines the primary round's median and either
    keeps both results or calls :meth:`discard_speculative`, after which
    :attr:`sweeps_committed` / :attr:`sweeps_wasted` report the split.
    """

    primary: List[SinglePassStackResult]
    speculative: List[SinglePassStackResult]
    _scheduler: PassScheduler = field(repr=False)

    @property
    def sweeps_used(self) -> int:
        """Physical tape sweeps the fused pair performed."""
        return self._scheduler.sweeps_used

    @property
    def sweeps_committed(self) -> int:
        """Sweeps serving committed work (all of them until a discard)."""
        return self._scheduler.sweeps_committed

    @property
    def sweeps_wasted(self) -> int:
        """Sweeps that served only discarded speculation (0 until a discard)."""
        return self._scheduler.sweeps_wasted

    def discard_speculative(self) -> None:
        """Book the speculative round's solo sweeps as wasted (idempotent)."""
        self._scheduler.discard_owner(SPECULATIVE)


def run_speculative_pair(
    stream: EdgeStream,
    plan_primary: ParameterPlan,
    rngs_primary: List[random.Random],
    meter_primary: SpaceMeter,
    plan_speculative: ParameterPlan,
    rngs_speculative: List[random.Random],
    meter_speculative: SpaceMeter,
) -> SpeculativePair:
    """Run two independent guessing rounds through shared tape sweeps.

    Both rounds' programs advance in lockstep: at each step the pending
    stages (one per still-running round) execute as a single fused sweep,
    tagged with the rounds it serves.  When one round finishes early (a
    round with no candidate triangles skips its assignment stages), the
    other continues on solo sweeps tagged with it alone - those are the
    sweeps a later discard can declare wasted.

    The per-round results are bit-identical to running each round through
    :func:`~repro.core.parallel.run_parallel_estimates` on its own.
    """
    scheduler = PassScheduler(stream, max_passes=12)
    chunked = engine.use_chunks(stream)
    m = len(stream)
    programs = {
        PRIMARY: round_program(m, plan_primary, rngs_primary, meter_primary, chunked),
        SPECULATIVE: round_program(
            m, plan_speculative, rngs_speculative, meter_speculative, chunked
        ),
    }
    stages = {}
    results = {}
    for tag in (PRIMARY, SPECULATIVE):
        stages[tag] = next(programs[tag])
    while stages:
        owners = [tag for tag in (PRIMARY, SPECULATIVE) if tag in stages]
        sweep_stages(scheduler, [stages[tag] for tag in owners], owners=owners)
        for tag in owners:
            try:
                stages[tag] = programs[tag].send(stages[tag].finish())
            except StopIteration as stop:
                results[tag] = stop.value
                del stages[tag]
    return SpeculativePair(
        primary=results[PRIMARY],
        speculative=results[SPECULATIVE],
        _scheduler=scheduler,
    )
