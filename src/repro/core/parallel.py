"""Running many Algorithm 2 instances in parallel over six shared passes.

The paper's model runs all of its independent basic estimators *in
parallel*: Theorem 5.1's "six passes" covers the entire ensemble, and the
space bound covers the sum of all copies.  The sequential driver loop
(6 passes per repetition) is statistically identical but inflates the pass
count by the repetition factor; this module restores the paper's
accounting: :func:`run_parallel_estimates` executes ``k`` independent
instances over exactly six shared passes.

Sharing rules (what may be shared without breaking independence):

* **the degree table** (pass 2) is shared - degrees are deterministic
  functions of the stream, so every instance reading the same table is
  exact, not a statistical shortcut;
* **everything random** (pass-1 positions, the ``d_e``-proportional draws,
  neighbor reservoirs, assignment sample bundles) is kept strictly
  per-instance, driven by that instance's own RNG - instances remain
  mutually independent, as the median-of-runs combiner requires.

The assignment stage is a multi-instance replication of
:class:`~repro.core.assignment.StreamingAssigner` (same two passes, same
cutoffs), with bundles keyed by ``(instance, vertex)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..sampling.discrete import CumulativeSampler
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, canonical_triangle, triangle_edges
from . import engine
from .assignment import (
    SampleSource,
    _Bundle,
    closure_hit_counts,
    derive_sample_generator,
)
from .estimator import (
    SinglePassStackResult,
    _neighborhood_owner,
    collect_position_slots,
    serve_neighbor_positions,
)
from .params import ParameterPlan

_DrawKey = Tuple[int, int]  # (instance, draw index)


def run_parallel_estimates(
    stream: EdgeStream,
    plan: ParameterPlan,
    rngs: List[random.Random],
    meter: Optional[SpaceMeter] = None,
) -> List[SinglePassStackResult]:
    """Run ``len(rngs)`` independent Algorithm 2 instances in six passes.

    Returns one :class:`SinglePassStackResult` per instance; every result
    reports the *shared* pass count (at most 6) and the ensemble's peak
    space (the paper's accounting - parallel copies coexist in memory).
    """
    meter = meter if meter is not None else SpaceMeter()
    k = len(rngs)
    if k < 1:
        raise ValueError("need at least one instance")
    m = len(stream)
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    scheduler = PassScheduler(stream, max_passes=6)
    chunked = engine.use_chunks(stream)
    # One derived sample source per instance, consumed in instance order at
    # every stage - cross-instance independence and engine parity both hold
    # (see derive_sample_generator).
    sources = [derive_sample_generator(rngs[j]) for j in range(k)]

    sampled = _pass1(scheduler, plan.r, m, sources, meter, chunked)
    degree = _pass2(scheduler, sampled, meter, chunked)

    draws: List[List[Edge]] = []
    owners: List[List[Vertex]] = []
    ells: List[int] = []
    d_rs: List[float] = []
    for j in range(k):
        weights = [float(min(degree[u], degree[v])) for u, v in sampled[j]]
        d_r = sum(weights)
        ell = plan.ell(d_r)
        sampler = CumulativeSampler(weights)
        if isinstance(sources[j], SampleSource):
            slots = sampler.draw_many_from_uniforms(sources[j].uniforms(ell))
        else:  # pragma: no cover - exercised only without NumPy
            slots = sampler.draw_many(sources[j], ell)
        instance_draws = [sampled[j][slot] for slot in slots]
        draws.append(instance_draws)
        owners.append([_neighborhood_owner(e, degree) for e in instance_draws])
        ells.append(ell)
        d_rs.append(d_r)
        meter.allocate(2 * ell, "draws")

    apexes = _pass3(scheduler, owners, degree, sources, meter, chunked)
    candidates = _pass4(scheduler, draws, owners, apexes, meter, chunked)

    distinct_by_instance: List[set] = [
        {t for t in candidates[j] if t is not None} for j in range(k)
    ]
    assignments = _passes5and6_assign(
        scheduler, plan, rngs, distinct_by_instance, meter, chunked
    )

    results: List[SinglePassStackResult] = []
    for j in range(k):
        hits = 0
        for edge, triangle in zip(draws[j], candidates[j]):
            if triangle is not None and assignments[j].get(triangle) == edge:
                hits += 1
        y = hits / ells[j]
        estimate = (m / plan.r) * d_rs[j] * y
        results.append(
            SinglePassStackResult(
                estimate=estimate,
                r=plan.r,
                ell=ells[j],
                d_r=d_rs[j],
                wedges_closed=sum(1 for t in candidates[j] if t is not None),
                assigned_hits=hits,
                distinct_candidate_triangles=len(distinct_by_instance[j]),
                passes_used=scheduler.passes_used,
                space_words_peak=meter.peak_words,
            )
        )
    return results


def _pass1(
    scheduler: PassScheduler,
    r: int,
    m: int,
    sources: List,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Edge]]:
    """Pass 1: r i.i.d. uniform edges per instance, one shared sweep.

    Positions are pre-drawn in instance-then-slot order on both engines, so
    the per-instance variate streams stay aligned.
    """
    k = len(sources)
    meter.allocate(2 * r * k, "R")
    if isinstance(sources[0], SampleSource):
        import numpy as np

        positions = np.concatenate(
            [(sources[j].uniforms(r) * m).astype(np.int64) for j in range(k)]
        )
        if chunked:
            from . import kernels

            flat = kernels.collect_stream_positions(scheduler, positions, engine.chunk_size())
            return [flat[j * r : (j + 1) * r] for j in range(k)]
        position_list = positions.tolist()
    else:  # pragma: no cover - exercised only without NumPy
        position_list = [sources[j].randrange(m) for j in range(k) for _ in range(r)]
    slots_by_position: Dict[int, List[_DrawKey]] = {}
    for flat_slot, position in enumerate(position_list):
        slots_by_position.setdefault(position, []).append(divmod(flat_slot, r))
    filled = collect_position_slots(scheduler.new_pass(), slots_by_position, r * k)
    return [[filled[(j, slot)] for slot in range(r)] for j in range(k)]


def _pass2(
    scheduler: PassScheduler,
    sampled: List[List[Edge]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> Dict[Vertex, int]:
    """Pass 2: one shared degree table for all endpoints of all instances."""
    tracked: Dict[Vertex, int] = {}
    for instance in sampled:
        for u, v in instance:
            tracked[u] = 0
            tracked[v] = 0
    meter.allocate(len(tracked), "degrees")
    if chunked:
        import numpy as np

        from . import kernels

        ids = np.array(sorted(tracked), dtype=np.int64)
        counts = kernels.count_tracked_degrees(scheduler, ids, engine.chunk_size())
        return dict(zip(ids.tolist(), counts.tolist()))
    for a, b in scheduler.new_pass():
        if a in tracked:
            tracked[a] += 1
        if b in tracked:
            tracked[b] += 1
    return tracked


def _pass3(
    scheduler: PassScheduler,
    owners: List[List[Vertex]],
    degree: Dict[Vertex, int],
    sources: List,
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Optional[Vertex]]]:
    """Pass 3: per-draw uniform neighbor samples, all instances at once.

    Owner degrees are known from the shared pass-2 table, so each draw
    pre-draws a uniform *position* in its owner's incident sub-stream from
    its instance's own sample source (preserving cross-instance
    independence) and the scan just captures the neighbors at the requested
    positions - see :func:`repro.core.estimator._pass3_neighbor_samples`.
    """
    k = len(sources)
    total_draws = sum(len(instance_owners) for instance_owners in owners)
    distinct_owners = {owner for instance_owners in owners for owner in instance_owners}
    meter.allocate(total_draws + len(distinct_owners), "neighbor-reservoirs")
    vectorized = isinstance(sources[0], SampleSource) if sources else False
    if vectorized:
        import numpy as np

        position_lists = []
        for j in range(k):
            degrees = np.fromiter(
                (degree[o] for o in owners[j]), np.int64, count=len(owners[j])
            )
            position_lists.append(
                (sources[j].uniforms(len(owners[j])) * degrees).astype(np.int64)
            )
        if chunked:
            from . import kernels

            owner_ids = np.asarray(sorted(distinct_owners), dtype=np.int64)
            flat_owners = np.asarray(
                [owner for instance_owners in owners for owner in instance_owners],
                dtype=np.int64,
            )
            owner_index = np.searchsorted(owner_ids, flat_owners)
            found = kernels.collect_neighbor_positions(
                scheduler,
                owner_ids,
                owner_index,
                np.concatenate(position_lists),
                engine.chunk_size(),
            )
            apexes = []
            at = 0
            for j in range(k):
                row = found[at : at + len(owners[j])].tolist()
                apexes.append([None if w < 0 else int(w) for w in row])
                at += len(owners[j])
            return apexes
        positions = [p.tolist() for p in position_lists]
    else:  # pragma: no cover - exercised only without NumPy
        positions = [
            [sources[j].randrange(degree[o]) for o in owners[j]] for j in range(k)
        ]
    pending: Dict[Vertex, List[Tuple[int, _DrawKey]]] = {}
    for j, instance_owners in enumerate(owners):
        for i, owner in enumerate(instance_owners):
            pending.setdefault(owner, []).append((positions[j][i], (j, i)))
    served = serve_neighbor_positions(scheduler.new_pass(), pending)
    return [
        [served.get((j, i)) for i in range(len(owners[j]))] for j in range(len(owners))
    ]


def _pass4(
    scheduler: PassScheduler,
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[List[Optional[Triangle]]]:
    """Pass 4: shared closure watch across all instances."""
    watch: Dict[Edge, List[_DrawKey]] = {}
    wedges: List[List[Optional[Triangle]]] = [
        [None] * len(draws[j]) for j in range(len(draws))
    ]
    for j in range(len(draws)):
        for i, ((u, v), owner, w) in enumerate(zip(draws[j], owners[j], apexes[j])):
            if w is None:
                continue
            other = v if owner == u else u
            if w == other:
                continue
            wedges[j][i] = canonical_triangle(u, v, w)
            watch.setdefault(canonical_edge(other, w), []).append((j, i))
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
    closed: Dict[_DrawKey, bool] = {}
    if chunked:
        from . import kernels

        for found in kernels.scan_watch_keys(scheduler, list(watch), engine.chunk_size()):
            for key in watch[found]:
                closed[key] = True
    else:
        for edge in scheduler.new_pass():
            for key in watch.get(edge, ()):
                closed[key] = True
    return [
        [wedges[j][i] if closed.get((j, i)) else None for i in range(len(draws[j]))]
        for j in range(len(draws))
    ]


def _passes5and6_assign(
    scheduler: PassScheduler,
    plan: ParameterPlan,
    rngs: List[random.Random],
    distinct_by_instance: List[set],
    meter: SpaceMeter,
    chunked: bool = False,
) -> List[Dict[Triangle, Optional[Edge]]]:
    """Passes 5-6: Algorithm 3 for every instance, sharing the two passes.

    Bundles and estimates are per (instance, vertex/edge) - instances stay
    independent; only the passes are shared.  Skipped entirely (0 passes)
    when no instance found any triangle.
    """
    k = len(rngs)
    if not any(distinct_by_instance):
        return [{} for _ in range(k)]
    s = plan.s

    edges_by_instance: List[List[Edge]] = [
        sorted({f for t in distinct for f in triangle_edges(t)})
        for distinct in distinct_by_instance
    ]

    # Pass 5: degrees (shared table) + per-(instance, vertex) sample bundles.
    bundles: Dict[Tuple[int, Vertex], _Bundle] = {}
    degree: Dict[Vertex, int] = {}
    by_vertex: Dict[Vertex, List[Tuple[int, _Bundle]]] = {}
    for j in range(k):
        for f in edges_by_instance[j]:
            for endpoint in f:
                degree[endpoint] = 0
                key = (j, endpoint)
                if key not in bundles:
                    bundle = _Bundle(s)
                    bundles[key] = bundle
                    by_vertex.setdefault(endpoint, []).append((j, bundle))
    meter.allocate(s * len(bundles), "assignment-reservoirs")
    meter.allocate(len(degree), "assignment-degrees")
    # One vectorized sample generator per instance, derived in instance
    # order at this fixed point so both engines consume the stdlib RNGs
    # identically (see derive_sample_generator).
    sample_rngs = [derive_sample_generator(rngs[j]) for j in range(k)]
    if chunked:
        from . import kernels

        edge_source = kernels.iter_incident_edges(scheduler, degree, engine.chunk_size())
    else:
        edge_source = scheduler.new_pass()
    for a, b in edge_source:
        if a in degree:
            degree[a] += 1
            count = degree[a]
            for j, bundle in by_vertex[a]:
                bundle.offer(b, count, sample_rngs[j])
        if b in degree:
            degree[b] += 1
            count = degree[b]
            for j, bundle in by_vertex[b]:
                bundle.offer(a, count, sample_rngs[j])
    for (j, _), bundle in bundles.items():  # deterministic construction order
        bundle.flush(sample_rngs[j])

    # Pass 6: closure watch per (instance, edge).  Heavy edges (degree over
    # the cutoff) get infinite estimates up front; the remaining light rows
    # are resolved by the engine-appropriate closure counter.
    estimates: List[Dict[Edge, float]] = [dict() for _ in range(k)]
    light: List[Tuple[int, Edge]] = []
    light_others: List[Vertex] = []
    light_owners: List[Vertex] = []
    for j in range(k):
        for f in edges_by_instance[j]:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > plan.degree_cutoff:
                estimates[j][f] = float("inf")
                continue
            estimates[j][f] = 0.0
            owner = u if degree[u] < degree[v] else v
            light.append((j, f))
            light_owners.append(owner)
            light_others.append(v if owner == u else u)
    bundle_rows = [bundles[(j, owner)] for (j, _), owner in zip(light, light_owners)]
    hit_counts = closure_hit_counts(scheduler, bundle_rows, light_others, meter, chunked)
    for (j, f), hit_count in zip(light, hit_counts):
        u, v = f
        estimates[j][f] = min(degree[u], degree[v]) * hit_count / s

    # Resolve per instance with the canonical tie-break.
    out: List[Dict[Triangle, Optional[Edge]]] = []
    for j in range(k):
        resolved: Dict[Triangle, Optional[Edge]] = {}
        for t in sorted(distinct_by_instance[j]):
            best = min(triangle_edges(t), key=lambda f: (estimates[j][f], f))
            resolved[t] = None if estimates[j][best] > plan.assignment_cutoff else best
        out.append(resolved)
    return out
