"""Running many Algorithm 2 instances in parallel over six shared passes.

The paper's model runs all of its independent basic estimators *in
parallel*: Theorem 5.1's "six passes" covers the entire ensemble, and the
space bound covers the sum of all copies.  The sequential driver loop
(6 passes per repetition) is statistically identical but inflates the pass
count by the repetition factor; this module restores the paper's
accounting: :func:`run_parallel_estimates` executes ``k`` independent
instances over exactly six shared passes.

Sharing rules (what may be shared without breaking independence):

* **the degree table** (pass 2) is shared - degrees are deterministic
  functions of the stream, so every instance reading the same table is
  exact, not a statistical shortcut;
* **everything random** (pass-1 positions, the ``d_e``-proportional draws,
  neighbor reservoirs, assignment sample bundles) is kept strictly
  per-instance, driven by that instance's own RNG - instances remain
  mutually independent, as the median-of-runs combiner requires.

The assignment stage is a multi-instance replication of
:class:`~repro.core.assignment.StreamingAssigner` (same two passes, same
cutoffs), with bundles keyed by ``(instance, vertex)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..sampling.discrete import CumulativeSampler
from ..sampling.reservoir import SingleItemReservoir
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, canonical_triangle, triangle_edges
from .assignment import _Bundle
from .estimator import SinglePassStackResult, _neighborhood_owner
from .params import ParameterPlan

_DrawKey = Tuple[int, int]  # (instance, draw index)


def run_parallel_estimates(
    stream: EdgeStream,
    plan: ParameterPlan,
    rngs: List[random.Random],
    meter: Optional[SpaceMeter] = None,
) -> List[SinglePassStackResult]:
    """Run ``len(rngs)`` independent Algorithm 2 instances in six passes.

    Returns one :class:`SinglePassStackResult` per instance; every result
    reports the *shared* pass count (at most 6) and the ensemble's peak
    space (the paper's accounting - parallel copies coexist in memory).
    """
    meter = meter if meter is not None else SpaceMeter()
    k = len(rngs)
    if k < 1:
        raise ValueError("need at least one instance")
    m = len(stream)
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    scheduler = PassScheduler(stream, max_passes=6)

    sampled = _pass1(scheduler, plan.r, m, rngs, meter)
    degree = _pass2(scheduler, sampled, meter)

    draws: List[List[Edge]] = []
    owners: List[List[Vertex]] = []
    ells: List[int] = []
    d_rs: List[float] = []
    for j in range(k):
        weights = [float(min(degree[u], degree[v])) for u, v in sampled[j]]
        d_r = sum(weights)
        ell = plan.ell(d_r)
        sampler = CumulativeSampler(weights)
        slots = sampler.draw_many(rngs[j], ell)
        instance_draws = [sampled[j][slot] for slot in slots]
        draws.append(instance_draws)
        owners.append([_neighborhood_owner(e, degree) for e in instance_draws])
        ells.append(ell)
        d_rs.append(d_r)
        meter.allocate(2 * ell, "draws")

    apexes = _pass3(scheduler, owners, rngs, meter)
    candidates = _pass4(scheduler, draws, owners, apexes, meter)

    distinct_by_instance: List[set] = [
        {t for t in candidates[j] if t is not None} for j in range(k)
    ]
    assignments = _passes5and6_assign(
        scheduler, plan, rngs, distinct_by_instance, meter
    )

    results: List[SinglePassStackResult] = []
    for j in range(k):
        hits = 0
        for edge, triangle in zip(draws[j], candidates[j]):
            if triangle is not None and assignments[j].get(triangle) == edge:
                hits += 1
        y = hits / ells[j]
        estimate = (m / plan.r) * d_rs[j] * y
        results.append(
            SinglePassStackResult(
                estimate=estimate,
                r=plan.r,
                ell=ells[j],
                d_r=d_rs[j],
                wedges_closed=sum(1 for t in candidates[j] if t is not None),
                assigned_hits=hits,
                distinct_candidate_triangles=len(distinct_by_instance[j]),
                passes_used=scheduler.passes_used,
                space_words_peak=meter.peak_words,
            )
        )
    return results


def _pass1(
    scheduler: PassScheduler,
    r: int,
    m: int,
    rngs: List[random.Random],
    meter: SpaceMeter,
) -> List[List[Edge]]:
    """Pass 1: r i.i.d. uniform edges per instance, one shared sweep."""
    k = len(rngs)
    slots_by_position: Dict[int, List[_DrawKey]] = {}
    for j in range(k):
        for slot in range(r):
            position = rngs[j].randrange(m)
            slots_by_position.setdefault(position, []).append((j, slot))
    sampled: List[List[Optional[Edge]]] = [[None] * r for _ in range(k)]
    meter.allocate(2 * r * k, "R")
    for position, edge in enumerate(scheduler.new_pass()):
        for j, slot in slots_by_position.get(position, ()):
            sampled[j][slot] = edge
    assert all(e is not None for inst in sampled for e in inst)
    return sampled  # type: ignore[return-value]


def _pass2(
    scheduler: PassScheduler,
    sampled: List[List[Edge]],
    meter: SpaceMeter,
) -> Dict[Vertex, int]:
    """Pass 2: one shared degree table for all endpoints of all instances."""
    tracked: Dict[Vertex, int] = {}
    for instance in sampled:
        for u, v in instance:
            tracked[u] = 0
            tracked[v] = 0
    meter.allocate(len(tracked), "degrees")
    for a, b in scheduler.new_pass():
        if a in tracked:
            tracked[a] += 1
        if b in tracked:
            tracked[b] += 1
    return tracked


def _pass3(
    scheduler: PassScheduler,
    owners: List[List[Vertex]],
    rngs: List[random.Random],
    meter: SpaceMeter,
) -> List[List[Optional[Vertex]]]:
    """Pass 3: per-draw uniform neighbor reservoirs, all instances at once."""
    reservoirs: Dict[_DrawKey, SingleItemReservoir] = {}
    by_owner: Dict[Vertex, List[_DrawKey]] = {}
    for j, instance_owners in enumerate(owners):
        for i, owner in enumerate(instance_owners):
            reservoirs[(j, i)] = SingleItemReservoir(rngs[j])
            by_owner.setdefault(owner, []).append((j, i))
    meter.allocate(len(reservoirs) + len(by_owner), "neighbor-reservoirs")
    for a, b in scheduler.new_pass():
        for key in by_owner.get(a, ()):
            reservoirs[key].offer(b)
        for key in by_owner.get(b, ()):
            reservoirs[key].offer(a)
    return [
        [reservoirs[(j, i)].sample() for i in range(len(owners[j]))]
        for j in range(len(owners))
    ]


def _pass4(
    scheduler: PassScheduler,
    draws: List[List[Edge]],
    owners: List[List[Vertex]],
    apexes: List[List[Optional[Vertex]]],
    meter: SpaceMeter,
) -> List[List[Optional[Triangle]]]:
    """Pass 4: shared closure watch across all instances."""
    watch: Dict[Edge, List[_DrawKey]] = {}
    wedges: List[List[Optional[Triangle]]] = [
        [None] * len(draws[j]) for j in range(len(draws))
    ]
    for j in range(len(draws)):
        for i, ((u, v), owner, w) in enumerate(zip(draws[j], owners[j], apexes[j])):
            if w is None:
                continue
            other = v if owner == u else u
            if w == other:
                continue
            wedges[j][i] = canonical_triangle(u, v, w)
            watch.setdefault(canonical_edge(other, w), []).append((j, i))
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "closure-watch")
    closed: Dict[_DrawKey, bool] = {}
    for edge in scheduler.new_pass():
        for key in watch.get(edge, ()):
            closed[key] = True
    return [
        [wedges[j][i] if closed.get((j, i)) else None for i in range(len(draws[j]))]
        for j in range(len(draws))
    ]


def _passes5and6_assign(
    scheduler: PassScheduler,
    plan: ParameterPlan,
    rngs: List[random.Random],
    distinct_by_instance: List[set],
    meter: SpaceMeter,
) -> List[Dict[Triangle, Optional[Edge]]]:
    """Passes 5-6: Algorithm 3 for every instance, sharing the two passes.

    Bundles and estimates are per (instance, vertex/edge) - instances stay
    independent; only the passes are shared.  Skipped entirely (0 passes)
    when no instance found any triangle.
    """
    k = len(rngs)
    if not any(distinct_by_instance):
        return [{} for _ in range(k)]
    s = plan.s

    edges_by_instance: List[List[Edge]] = [
        sorted({f for t in distinct for f in triangle_edges(t)})
        for distinct in distinct_by_instance
    ]

    # Pass 5: degrees (shared table) + per-(instance, vertex) sample bundles.
    bundles: Dict[Tuple[int, Vertex], _Bundle] = {}
    degree: Dict[Vertex, int] = {}
    by_vertex: Dict[Vertex, List[Tuple[int, _Bundle]]] = {}
    for j in range(k):
        for f in edges_by_instance[j]:
            for endpoint in f:
                degree[endpoint] = 0
                key = (j, endpoint)
                if key not in bundles:
                    bundle = _Bundle(s)
                    bundles[key] = bundle
                    by_vertex.setdefault(endpoint, []).append((j, bundle))
    meter.allocate(s * len(bundles), "assignment-reservoirs")
    meter.allocate(len(degree), "assignment-degrees")
    for a, b in scheduler.new_pass():
        if a in degree:
            degree[a] += 1
            count = degree[a]
            for j, bundle in by_vertex[a]:
                bundle.offer(b, count, rngs[j])
        if b in degree:
            degree[b] += 1
            count = degree[b]
            for j, bundle in by_vertex[b]:
                bundle.offer(a, count, rngs[j])

    # Pass 6: closure watch per (instance, edge).
    watch: Dict[Edge, List[Tuple[int, Edge]]] = {}
    estimates: List[Dict[Edge, float]] = [dict() for _ in range(k)]
    for j in range(k):
        for f in edges_by_instance[j]:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > plan.degree_cutoff:
                estimates[j][f] = float("inf")
                continue
            estimates[j][f] = 0.0
            owner = u if degree[u] < degree[v] else v
            other = v if owner == u else u
            for w in bundles[(j, owner)].slots:
                if w is None or w == other:
                    continue
                watch.setdefault(canonical_edge(other, w), []).append((j, f))
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "assignment-watch")
    hits: Dict[Tuple[int, Edge], int] = {}
    for edge in scheduler.new_pass():
        for key in watch.get(edge, ()):
            hits[key] = hits.get(key, 0) + 1
    for j in range(k):
        for f in edges_by_instance[j]:
            if estimates[j][f] != float("inf"):
                u, v = f
                estimates[j][f] = min(degree[u], degree[v]) * hits.get((j, f), 0) / s

    # Resolve per instance with the canonical tie-break.
    out: List[Dict[Triangle, Optional[Edge]]] = []
    for j in range(k):
        resolved: Dict[Triangle, Optional[Edge]] = {}
        for t in sorted(distinct_by_instance[j]):
            best = min(triangle_edges(t), key=lambda f: (estimates[j][f], f))
            resolved[t] = None if estimates[j][best] > plan.assignment_cutoff else best
        out.append(resolved)
    return out
