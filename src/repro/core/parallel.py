"""Running many Algorithm 2 instances in parallel over six shared passes.

The paper's model runs all of its independent basic estimators *in
parallel*: Theorem 5.1's "six passes" covers the entire ensemble, and the
space bound covers the sum of all copies.  The sequential driver loop
(6 passes per repetition) is statistically identical but inflates the pass
count by the repetition factor; this module restores the paper's
accounting: :func:`run_parallel_estimates` executes ``k`` independent
instances over exactly six shared passes.

The pass implementations themselves live in :mod:`repro.core.estimator`
(``pass1_uniform_samples`` ... ``pass4_closure_triangles``) - they are
multi-instance by construction and the single runner is their ``k = 1``
case, so both runners ride the same executor spine (serial, chunked, or
sharded across worker processes) with no duplicated pass loops.

Sharing rules (what may be shared without breaking independence):

* **the degree table** (pass 2) is shared - degrees are deterministic
  functions of the stream, so every instance reading the same table is
  exact, not a statistical shortcut;
* **the scans** (passes 4 and 6) are shared per *unique watched key*:
  instances watch overlapping closure edges, so the tape is scanned once
  against the deduplicated key set and hits fan back out per instance -
  the packed-key scan cost is per unique key, not per instance;
* **everything random** (pass-1 positions, the ``d_e``-proportional draws,
  neighbor reservoirs, assignment sample bundles) is kept strictly
  per-instance, driven by that instance's own RNG - instances remain
  mutually independent, as the median-of-runs combiner requires.

The assignment stage is a multi-instance replication of
:class:`~repro.core.assignment.StreamingAssigner` (same two passes, same
cutoffs), with bundles keyed by ``(instance, vertex)``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, triangle_edges
from . import engine
from .assignment import (
    _Bundle,
    closure_hit_counts,
    derive_sample_generator,
    replay_incident_rows,
)
from .estimator import (
    SinglePassStackResult,
    draw_weighted_edges,
    pass1_uniform_samples,
    pass2_degree_table,
    pass3_neighbor_apexes,
    pass4_closure_triangles,
    pass45_closure_and_collect,
)
from .params import ParameterPlan


def run_parallel_estimates(
    stream: EdgeStream,
    plan: ParameterPlan,
    rngs: List[random.Random],
    meter: Optional[SpaceMeter] = None,
) -> List[SinglePassStackResult]:
    """Run ``len(rngs)`` independent Algorithm 2 instances in six passes.

    Returns one :class:`SinglePassStackResult` per instance; every result
    reports the *shared* pass count (at most 6) and the ensemble's peak
    space (the paper's accounting - parallel copies coexist in memory).
    """
    meter = meter if meter is not None else SpaceMeter()
    k = len(rngs)
    if k < 1:
        raise ValueError("need at least one instance")
    m = len(stream)
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    scheduler = PassScheduler(stream, max_passes=6)
    chunked = engine.use_chunks(stream)
    # One derived sample source per instance, consumed in instance order at
    # every stage - cross-instance independence and engine parity both hold
    # (see derive_sample_generator).
    sources = [derive_sample_generator(rngs[j]) for j in range(k)]

    sampled = pass1_uniform_samples(scheduler, plan.r, m, sources, meter, chunked)
    degree = pass2_degree_table(scheduler, sampled, meter, chunked)
    draws, owners, ells, d_rs = draw_weighted_edges(sampled, degree, plan, sources, meter)
    apexes = pass3_neighbor_apexes(scheduler, owners, degree, sources, meter, chunked)
    if engine.fuse():
        # Fused sweep engine: the closure watch (pass 4) and the
        # assignment stage's incident reads (pass 5) share one traversal;
        # the buffered superset is replayed below once closure is known.
        candidates, incident = pass45_closure_and_collect(
            scheduler, draws, owners, apexes, meter, chunked
        )
    else:
        candidates = pass4_closure_triangles(scheduler, draws, owners, apexes, meter, chunked)
        incident = None

    distinct_by_instance: List[set] = [
        {t for t in candidates[j] if t is not None} for j in range(k)
    ]
    assignments = _passes5and6_assign(
        scheduler, plan, rngs, distinct_by_instance, meter, chunked, incident
    )

    results: List[SinglePassStackResult] = []
    for j in range(k):
        hits = 0
        for edge, triangle in zip(draws[j], candidates[j]):
            if triangle is not None and assignments[j].get(triangle) == edge:
                hits += 1
        y = hits / ells[j]
        estimate = (m / plan.r) * d_rs[j] * y
        results.append(
            SinglePassStackResult(
                estimate=estimate,
                r=plan.r,
                ell=ells[j],
                d_r=d_rs[j],
                wedges_closed=sum(1 for t in candidates[j] if t is not None),
                assigned_hits=hits,
                distinct_candidate_triangles=len(distinct_by_instance[j]),
                passes_used=scheduler.passes_used,
                space_words_peak=meter.peak_words,
                sweeps_used=scheduler.sweeps_used,
            )
        )
    return results


def _passes5and6_assign(
    scheduler: PassScheduler,
    plan: ParameterPlan,
    rngs: List[random.Random],
    distinct_by_instance: List[set],
    meter: SpaceMeter,
    chunked: bool = False,
    incident_rows: Optional[list] = None,
) -> List[Dict[Triangle, Optional[Edge]]]:
    """Passes 5-6: Algorithm 3 for every instance, sharing the two passes.

    Bundles and estimates are per (instance, vertex/edge) - instances stay
    independent; only the passes are shared.  Pass 6's watched keys are
    deduplicated *across* instances before the scan (two instances probing
    the same missing edge share one packed key; the hit count fans back
    out per (instance, edge) row - see
    :func:`~repro.core.assignment.closure_hit_counts`).  Skipped entirely
    (0 passes) when no instance found any triangle.  Under the fused sweep
    engine ``incident_rows`` carries the pass-4 sweep's buffered incident
    superset and pass 5 replays it instead of opening its own pass.
    """
    k = len(rngs)
    if not any(distinct_by_instance):
        return [{} for _ in range(k)]
    s = plan.s

    edges_by_instance: List[List[Edge]] = [
        sorted({f for t in distinct for f in triangle_edges(t)})
        for distinct in distinct_by_instance
    ]

    # Pass 5: degrees (shared table) + per-(instance, vertex) sample bundles.
    bundles: Dict[Tuple[int, Vertex], _Bundle] = {}
    degree: Dict[Vertex, int] = {}
    by_vertex: Dict[Vertex, List[Tuple[int, _Bundle]]] = {}
    for j in range(k):
        for f in edges_by_instance[j]:
            for endpoint in f:
                degree[endpoint] = 0
                key = (j, endpoint)
                if key not in bundles:
                    bundle = _Bundle(s)
                    bundles[key] = bundle
                    by_vertex.setdefault(endpoint, []).append((j, bundle))
    meter.allocate(s * len(bundles), "assignment-reservoirs")
    meter.allocate(len(degree), "assignment-degrees")
    # One vectorized sample generator per instance, derived in instance
    # order at this fixed point so both engines consume the stdlib RNGs
    # identically (see derive_sample_generator).
    sample_rngs = [derive_sample_generator(rngs[j]) for j in range(k)]

    def offer(a: Vertex, b: Vertex) -> None:
        if a in degree:
            degree[a] += 1
            count = degree[a]
            for j, bundle in by_vertex[a]:
                bundle.offer(b, count, sample_rngs[j])
        if b in degree:
            degree[b] += 1
            count = degree[b]
            for j, bundle in by_vertex[b]:
                bundle.offer(a, count, sample_rngs[j])

    if incident_rows is not None:
        # Fused sweep: the tape reads happened during the pass-4 sweep;
        # replaying the buffered superset consumes no pass.
        replay_incident_rows(incident_rows, offer)
    elif chunked:
        from . import kernels

        kernels.scan_incident_edges(scheduler, degree, engine.chunk_size(), offer)
    else:
        for a, b in scheduler.new_pass():
            offer(a, b)
    for (j, _), bundle in bundles.items():  # deterministic construction order
        bundle.flush(sample_rngs[j])

    # Pass 6: closure watch per (instance, edge).  Heavy edges (degree over
    # the cutoff) get infinite estimates up front; the remaining light rows
    # are resolved by the engine-appropriate closure counter.
    estimates: List[Dict[Edge, float]] = [dict() for _ in range(k)]
    light: List[Tuple[int, Edge]] = []
    light_others: List[Vertex] = []
    light_owners: List[Vertex] = []
    for j in range(k):
        for f in edges_by_instance[j]:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > plan.degree_cutoff:
                estimates[j][f] = float("inf")
                continue
            estimates[j][f] = 0.0
            owner = u if degree[u] < degree[v] else v
            light.append((j, f))
            light_owners.append(owner)
            light_others.append(v if owner == u else u)
    bundle_rows = [bundles[(j, owner)] for (j, _), owner in zip(light, light_owners)]
    hit_counts = closure_hit_counts(scheduler, bundle_rows, light_others, meter, chunked)
    for (j, f), hit_count in zip(light, hit_counts):
        u, v = f
        estimates[j][f] = min(degree[u], degree[v]) * hit_count / s

    # Resolve per instance with the canonical tie-break.
    out: List[Dict[Triangle, Optional[Edge]]] = []
    for j in range(k):
        resolved: Dict[Triangle, Optional[Edge]] = {}
        for t in sorted(distinct_by_instance[j]):
            best = min(triangle_edges(t), key=lambda f: (estimates[j][f], f))
            resolved[t] = None if estimates[j][best] > plan.assignment_cutoff else best
        out.append(resolved)
    return out
