"""Running many Algorithm 2 instances in parallel over six shared passes.

The paper's model runs all of its independent basic estimators *in
parallel*: Theorem 5.1's "six passes" covers the entire ensemble, and the
space bound covers the sum of all copies.  The sequential driver loop
(6 passes per repetition) is statistically identical but inflates the pass
count by the repetition factor; this module restores the paper's
accounting: :func:`run_parallel_estimates` executes ``k`` independent
instances over exactly six shared passes.

The pass implementations themselves live in :mod:`repro.core.estimator`
(``stage_pass1`` ... ``stage_pass45``) - they are multi-instance by
construction and the single runner is their ``k = 1`` case, so both
runners ride the same executor spine (serial, chunked, or sharded across
worker processes) with no duplicated pass loops.

Sharing rules (what may be shared without breaking independence):

* **the degree table** (pass 2) is shared - degrees are deterministic
  functions of the stream, so every instance reading the same table is
  exact, not a statistical shortcut;
* **the scans** (passes 4 and 6) are shared per *unique watched key*:
  instances watch overlapping closure edges, so the tape is scanned once
  against the deduplicated key set and hits fan back out per instance -
  the packed-key scan cost is per unique key, not per instance;
* **everything random** (pass-1 positions, the ``d_e``-proportional draws,
  neighbor reservoirs, assignment sample bundles) is kept strictly
  per-instance, driven by that instance's own RNG - instances remain
  mutually independent, as the median-of-runs combiner requires.

The assignment stage is a multi-instance replication of
:class:`~repro.core.assignment.StreamingAssigner` (same two passes, same
cutoffs), with bundles keyed by ``(instance, vertex)``.

The whole round is expressed as a **round program**
(:func:`round_program`): a generator that yields one
:class:`~repro.core.stages.RoundStage` per tape sweep it needs and
receives the stage's result back, returning the per-instance results when
done.  :func:`run_parallel_estimates` drives one program with one private
sweep per stage - the sequential behaviour - while the speculative driver
(:mod:`repro.core.speculate`) drives the programs of ``k`` *independent
guessing rounds* in lockstep, merging their same-numbered stages into
single shared sweeps.  The program neither knows nor cares which runner
drives it, which is what keeps speculative execution bit-identical to
sequential execution at any depth.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, List, Optional, Tuple

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, triangle_edges
from . import engine
from .assignment import (
    _Bundle,
    derive_sample_generator,
    replay_incident_rows,
    stage_closure_hits,
)
from .estimator import (
    PASS_BUDGET_PER_ROUND,
    CallbackFold,
    RoundStage,
    SinglePassStackResult,
    draw_weighted_edges,
    stage_pass1,
    stage_pass2,
    stage_pass3,
    stage_pass4,
    stage_pass45,
)
from .params import ParameterPlan

#: A round program: yields the stages it needs, receives each stage's
#: ``finish()`` value back, and returns the per-instance results.
RoundProgram = Generator[RoundStage, object, List[SinglePassStackResult]]


def run_parallel_estimates(
    stream: EdgeStream,
    plan: ParameterPlan,
    rngs: List[random.Random],
    meter: Optional[SpaceMeter] = None,
    scheduler: Optional[PassScheduler] = None,
) -> List[SinglePassStackResult]:
    """Run ``len(rngs)`` independent Algorithm 2 instances in six passes.

    Returns one :class:`SinglePassStackResult` per instance; every result
    reports the *shared* pass count (at most 6) and the ensemble's peak
    space (the paper's accounting - parallel copies coexist in memory).
    ``scheduler`` optionally supplies the pass scheduler (the recovery
    layer passes one in so a failed round's sweeps stay readable from the
    caller); it must be fresh and budgeted for one round.
    """
    meter = meter if meter is not None else SpaceMeter()
    if scheduler is None:
        scheduler = PassScheduler(stream, max_passes=PASS_BUDGET_PER_ROUND)
    chunked = engine.use_chunks(stream)
    return drive_round(
        scheduler, round_program(len(stream), plan, rngs, meter, chunked)
    )


def drive_round(
    scheduler: PassScheduler, program: RoundProgram
) -> List[SinglePassStackResult]:
    """Drive one round program, one private sweep per stage."""
    from .stages import execute_stage

    try:
        stage = next(program)
        while True:
            stage = program.send(execute_stage(scheduler, stage))
    except StopIteration as stop:
        return stop.value


def round_program(
    m: int,
    plan: ParameterPlan,
    rngs: List[random.Random],
    meter: SpaceMeter,
    chunked: bool,
) -> RoundProgram:
    """One guessing-loop round (``k`` parallel instances) as a stage program.

    Yields one :class:`~repro.core.stages.RoundStage` per tape sweep the
    round needs; the driver executes the stage's sweep (private, or shared
    with another round's stage) and sends ``stage.finish()`` back.  The
    returned results carry the round's *own* accounting - ``passes_used``
    is the logical passes this round charged and ``sweeps_used`` the
    number of stages it rode (its solo sweep count) - regardless of
    whether the driver shared the physical traversals.
    """
    k = len(rngs)
    if k < 1:
        raise ValueError("need at least one instance")
    if m != plan.num_edges:
        raise ValueError(f"stream has {m} edges but plan was built for {plan.num_edges}")
    # One derived sample source per instance, consumed in instance order at
    # every stage - cross-instance independence and engine parity both hold
    # (see derive_sample_generator).
    sources = [derive_sample_generator(rngs[j]) for j in range(k)]
    charged_passes = 0
    stages_rode = 0

    def track(stage: RoundStage) -> RoundStage:
        nonlocal charged_passes, stages_rode
        charged_passes += stage.passes
        stages_rode += 1
        return stage

    sampled = yield track(stage_pass1(plan.r, m, sources, meter, chunked))
    degree = yield track(stage_pass2(sampled, meter, chunked))
    draws, owners, ells, d_rs = draw_weighted_edges(sampled, degree, plan, sources, meter)
    apexes = yield track(stage_pass3(owners, degree, sources, meter, chunked))
    if engine.fuse():
        # Fused sweep engine: the closure watch (pass 4) and the
        # assignment stage's incident reads (pass 5) share one traversal;
        # the buffered superset is replayed below once closure is known.
        candidates, incident = yield track(
            stage_pass45(draws, owners, apexes, meter, chunked)
        )
    else:
        candidates = yield track(stage_pass4(draws, owners, apexes, meter, chunked))
        incident = None

    distinct_by_instance: List[set] = [
        {t for t in candidates[j] if t is not None} for j in range(k)
    ]
    assignments = yield from _assign_program(
        plan, rngs, distinct_by_instance, meter, chunked, incident, track
    )

    results: List[SinglePassStackResult] = []
    for j in range(k):
        hits = 0
        for edge, triangle in zip(draws[j], candidates[j]):
            if triangle is not None and assignments[j].get(triangle) == edge:
                hits += 1
        y = hits / ells[j]
        estimate = (m / plan.r) * d_rs[j] * y
        results.append(
            SinglePassStackResult(
                estimate=estimate,
                r=plan.r,
                ell=ells[j],
                d_r=d_rs[j],
                wedges_closed=sum(1 for t in candidates[j] if t is not None),
                assigned_hits=hits,
                distinct_candidate_triangles=len(distinct_by_instance[j]),
                passes_used=charged_passes,
                space_words_peak=meter.peak_words,
                sweeps_used=stages_rode,
            )
        )
    return results


def _assign_program(
    plan: ParameterPlan,
    rngs: List[random.Random],
    distinct_by_instance: List[set],
    meter: SpaceMeter,
    chunked: bool,
    incident_rows: Optional[list],
    track,
) -> Generator[RoundStage, object, List[Dict[Triangle, Optional[Edge]]]]:
    """Passes 5-6: Algorithm 3 for every instance, sharing the two passes.

    Bundles and estimates are per (instance, vertex/edge) - instances stay
    independent; only the passes are shared.  Pass 6's watched keys are
    deduplicated *across* instances before the scan (two instances probing
    the same missing edge share one packed key; the hit count fans back
    out per (instance, edge) row - see
    :func:`~repro.core.assignment.stage_closure_hits`).  Skipped entirely
    (0 passes) when no instance found any triangle.  Under the fused sweep
    engine ``incident_rows`` carries the pass-4 sweep's buffered incident
    superset and pass 5 replays it instead of opening its own pass.
    """
    k = len(rngs)
    if not any(distinct_by_instance):
        return [{} for _ in range(k)]
    s = plan.s

    edges_by_instance: List[List[Edge]] = [
        sorted({f for t in distinct for f in triangle_edges(t)})
        for distinct in distinct_by_instance
    ]

    # Pass 5: degrees (shared table) + per-(instance, vertex) sample bundles.
    bundles: Dict[Tuple[int, Vertex], _Bundle] = {}
    degree: Dict[Vertex, int] = {}
    by_vertex: Dict[Vertex, List[Tuple[int, _Bundle]]] = {}
    for j in range(k):
        for f in edges_by_instance[j]:
            for endpoint in f:
                degree[endpoint] = 0
                key = (j, endpoint)
                if key not in bundles:
                    bundle = _Bundle(s)
                    bundles[key] = bundle
                    by_vertex.setdefault(endpoint, []).append((j, bundle))
    meter.allocate(s * len(bundles), "assignment-reservoirs")
    meter.allocate(len(degree), "assignment-degrees")
    # One vectorized sample generator per instance, derived in instance
    # order at this fixed point so both engines consume the stdlib RNGs
    # identically (see derive_sample_generator).
    sample_rngs = [derive_sample_generator(rngs[j]) for j in range(k)]

    def offer(a: Vertex, b: Vertex) -> None:
        if a in degree:
            degree[a] += 1
            count = degree[a]
            for j, bundle in by_vertex[a]:
                bundle.offer(b, count, sample_rngs[j])
        if b in degree:
            degree[b] += 1
            count = degree[b]
            for j, bundle in by_vertex[b]:
                bundle.offer(a, count, sample_rngs[j])

    if incident_rows is not None:
        # Fused sweep: the tape reads happened during the pass-4 sweep;
        # replaying the buffered superset consumes no pass.
        replay_incident_rows(incident_rows, offer)
    elif chunked:
        from . import kernels

        yield track(
            RoundStage(plans=[kernels.IncidentEdgePlan(degree, offer)])
        )
    else:
        yield track(RoundStage(fold=CallbackFold(offer)))
    for (j, _), bundle in bundles.items():  # deterministic construction order
        bundle.flush(sample_rngs[j])

    # Pass 6: closure watch per (instance, edge).  Heavy edges (degree over
    # the cutoff) get infinite estimates up front; the remaining light rows
    # are resolved by the engine-appropriate closure counter.
    estimates: List[Dict[Edge, float]] = [dict() for _ in range(k)]
    light: List[Tuple[int, Edge]] = []
    light_others: List[Vertex] = []
    light_owners: List[Vertex] = []
    for j in range(k):
        for f in edges_by_instance[j]:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > plan.degree_cutoff:
                estimates[j][f] = float("inf")
                continue
            estimates[j][f] = 0.0
            owner = u if degree[u] < degree[v] else v
            light.append((j, f))
            light_owners.append(owner)
            light_others.append(v if owner == u else u)
    bundle_rows = [bundles[(j, owner)] for (j, _), owner in zip(light, light_owners)]
    hit_counts = yield track(
        stage_closure_hits(bundle_rows, light_others, meter, chunked)
    )
    for (j, f), hit_count in zip(light, hit_counts):
        u, v = f
        estimates[j][f] = min(degree[u], degree[v]) * hit_count / s

    # Resolve per instance with the canonical tie-break.
    out: List[Dict[Triangle, Optional[Edge]]] = []
    for j in range(k):
        resolved: Dict[Triangle, Optional[Edge]] = {}
        for t in sorted(distinct_by_instance[j]):
            best = min(triangle_edges(t), key=lambda f: (estimates[j][f], f))
            resolved[t] = None if estimates[j][best] > plan.assignment_cutoff else best
        out.append(resolved)
    return out
