"""Section 5.1: Algorithm 3 - ``IsAssigned`` / ``Assignment`` in the stream.

A triangle should be assigned to its contained edge with the fewest
triangles (smallest ``t_e``) - but ``t_e`` is unknown in the stream, so
Algorithm 3 *estimates* it: for each edge ``f`` of the triangle, draw ``s``
uniform members of ``N(f)`` and count how many close a triangle with ``f``,
giving ``Y_f = (d_f / s) * (closed count)`` with ``E[Y_f] = t_f``.  Two
guard rails keep everything inside the space budget:

* edges with ``d_f`` above the *degree cutoff* ``m*kappa^2/(eps^2*T)`` get
  ``Y_f = infinity`` (line 9; estimating their ``t_f`` would need too many
  samples);
* if even the minimum estimate exceeds the *assignment cutoff*
  ``kappa/(2*eps)`` the triangle is left unassigned (line 18; such "heavy"
  triangles carry at most ``2*eps*T`` triangles in total by Lemma 5.12).

This module implements the procedure *batched*: Algorithm 2 discovers all of
its candidate triangles in pass 4, then a single
:meth:`StreamingAssigner.assign` call resolves every ``Assignment(tau)``
simultaneously in two further passes (passes 5 and 6 of the overall
six-pass estimator):

* pass 5 counts the degree of every vertex appearing in a candidate
  triangle *and*, for each (edge, endpoint) pair, reservoir-samples ``s``
  i.i.d. members of that endpoint's neighborhood (both endpoints are
  sampled because the lower-degree one - whose neighborhood is ``N(f)`` -
  is only identified once degrees are known, at the end of the pass);
* pass 6 watches for the specific closing edges of all sampled wedges.

Two implementation choices worth flagging against the paper's pseudocode:

* **memoization granularity**: the paper memoizes ``Assignment`` per
  triangle; we additionally share each edge's ``Y_f`` estimate across all
  candidate triangles containing it, and share the ``s`` neighborhood
  samples across all candidate edges owned by the same vertex.  Every
  property of Definition 5.2 is proved per-edge (heavy edges receive
  nothing, light edges of good triangles win) by a Chernoff bound on that
  edge's own samples plus a union bound - no independence *across* edges
  is used - so both sharings preserve the analysis while cutting space and
  time by the multiplicity factors.
* **i.i.d. neighborhood samples**: each of the ``s`` sample slots is an
  independent single-item reservoir.  Updating ``s`` slots per incident
  stream edge naively costs ``O(s)``; on the ``k``-th incident edge each
  slot flips with probability ``1/k``, so the flipping subset is drawn
  directly with geometric skips, for ``O(d + s log d)`` total work per
  bundle instead of ``O(s * d)``.

:class:`ExactAssigner` is a test/benchmark double that applies the ideal
min-``t_e`` rule using ground-truth counts from the graph substrate.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from ..graph.adjacency import Graph
from ..graph.triangles import per_edge_triangle_counts
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, triangle_edges
from .params import ParameterPlan


class Assigner(Protocol):
    """Protocol for assignment procedures usable by Algorithm 2."""

    passes_required: int

    def assign(
        self, scheduler: PassScheduler, triangles: Iterable[Triangle]
    ) -> Dict[Triangle, Optional[Edge]]:
        """Resolve ``Assignment(tau)`` for every given triangle.

        Returns a mapping triangle -> assigned edge, or ``None`` for
        unassigned triangles.  May consume up to ``passes_required`` passes
        from ``scheduler`` (zero if ``triangles`` is empty).
        """
        ...  # pragma: no cover - protocol body


class _Bundle:
    """``s`` independent single-item neighbor reservoirs for one vertex.

    ``slots[j]`` holds slot ``j``'s current sample.  On the ``k``-th
    incident edge every slot independently adopts the new neighbor with
    probability ``1/k``; the adopting subset is drawn with geometric skips.
    """

    __slots__ = ("slots",)

    def __init__(self, s: int) -> None:
        self.slots: List[Optional[Vertex]] = [None] * s

    def offer(self, neighbor: Vertex, k: int, rng: random.Random) -> None:
        """Offer the ``k``-th neighbor (1-based) to every slot independently."""
        slots = self.slots
        if k == 1:
            for j in range(len(slots)):
                slots[j] = neighbor
            return
        # Geometric skips over the slot indices with success prob 1/k.
        log_fail = math.log1p(-1.0 / k)
        j = -1
        s = len(slots)
        while True:
            j += 1 + int(math.log(1.0 - rng.random()) / log_fail)
            if j >= s:
                return
            slots[j] = neighbor


class StreamingAssigner:
    """Algorithm 3, batched over all candidate triangles (two passes)."""

    passes_required = 2

    def __init__(
        self,
        plan: ParameterPlan,
        rng: random.Random,
        meter: Optional[SpaceMeter] = None,
    ) -> None:
        self._plan = plan
        self._rng = rng
        self._meter = meter if meter is not None else SpaceMeter()

    def assign(
        self, scheduler: PassScheduler, triangles: Iterable[Triangle]
    ) -> Dict[Triangle, Optional[Edge]]:
        """Resolve assignments for all distinct triangles in two passes."""
        distinct = sorted(set(triangles))
        if not distinct:
            return {}
        edges = sorted({f for t in distinct for f in triangle_edges(t)})

        degree, bundles = self._pass5_degrees_and_samples(scheduler, edges)
        estimates = self._pass6_estimate_te(scheduler, edges, degree, bundles)
        return self._resolve(distinct, estimates)

    # -- pass 5 --------------------------------------------------------------

    def _pass5_degrees_and_samples(
        self, scheduler: PassScheduler, edges: List[Edge]
    ) -> Tuple[Dict[Vertex, int], Dict[Vertex, _Bundle]]:
        """Count degrees of all candidate-edge endpoints and sample neighbors.

        One bundle of ``s`` reservoirs per *vertex* (shared by every
        candidate edge that vertex may end up owning; see module docstring
        for why sharing is sound).
        """
        s = self._plan.s
        bundles: Dict[Vertex, _Bundle] = {}
        for f in edges:
            for endpoint in f:
                if endpoint not in bundles:
                    bundles[endpoint] = _Bundle(s)
        degree: Dict[Vertex, int] = {v: 0 for v in bundles}
        self._meter.allocate(s * len(bundles), "assignment-reservoirs")
        self._meter.allocate(len(degree), "assignment-degrees")

        rng = self._rng
        for a, b in scheduler.new_pass():
            if a in degree:
                k = degree[a] + 1
                degree[a] = k
                bundles[a].offer(b, k, rng)
            if b in degree:
                k = degree[b] + 1
                degree[b] = k
                bundles[b].offer(a, k, rng)
        return degree, bundles

    # -- pass 6 --------------------------------------------------------------

    def _pass6_estimate_te(
        self,
        scheduler: PassScheduler,
        edges: List[Edge],
        degree: Dict[Vertex, int],
        bundles: Dict[Vertex, _Bundle],
    ) -> Dict[Edge, float]:
        """Check wedge closures and return ``Y_f`` per candidate edge."""
        s = self._plan.s
        watch: Dict[Edge, List[Edge]] = {}
        estimates: Dict[Edge, float] = {}
        for f in edges:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > self._plan.degree_cutoff:
                estimates[f] = float("inf")  # Algorithm 3 line 9
                continue
            estimates[f] = 0.0
            # Section 3 convention: N(e) is the lower-degree endpoint's
            # neighborhood, ties to the second endpoint.
            owner = u if degree[u] < degree[v] else v
            other = v if owner == u else u
            for w in bundles[owner].slots:
                if w is None or w == other:
                    # No sample (impossible for a real edge) or the sample is
                    # the edge's own far endpoint: counts as a miss.
                    continue
                watch.setdefault(canonical_edge(other, w), []).append(f)
        self._meter.allocate(
            2 * len(watch) + sum(len(v) for v in watch.values()), "assignment-watch"
        )

        hits: Dict[Edge, int] = {f: 0 for f in edges}
        for edge in scheduler.new_pass():
            watchers = watch.get(edge)
            if watchers:
                for f in watchers:
                    hits[f] += 1
        for f in edges:
            if estimates[f] != float("inf"):
                u, v = f
                estimates[f] = min(degree[u], degree[v]) * hits[f] / s
        return estimates

    # -- resolution ------------------------------------------------------------

    def _resolve(
        self, distinct: List[Triangle], estimates: Dict[Edge, float]
    ) -> Dict[Triangle, Optional[Edge]]:
        out: Dict[Triangle, Optional[Edge]] = {}
        for t in distinct:
            # Minimum Y_f with canonical-edge tie-break, for consistency.
            best_edge = min(triangle_edges(t), key=lambda f: (estimates[f], f))
            if estimates[best_edge] > self._plan.assignment_cutoff:
                out[t] = None  # Algorithm 3 line 18: return bottom
            else:
                out[t] = best_edge
        return out


class ExactAssigner:
    """Ground-truth assignment double: the ideal min-``t_e`` rule.

    Uses exact per-edge triangle counts from the graph substrate and never
    leaves a triangle unassigned.  Consumes zero passes.  Intended for tests
    and ablation benchmarks that isolate Algorithm 2's sampling error from
    Algorithm 3's estimation error.
    """

    passes_required = 0

    def __init__(self, graph: Graph) -> None:
        self._te = per_edge_triangle_counts(graph)

    def assign(
        self, scheduler: PassScheduler, triangles: Iterable[Triangle]
    ) -> Dict[Triangle, Optional[Edge]]:
        """Assign each triangle to its exact minimum-``t_e`` edge."""
        out: Dict[Triangle, Optional[Edge]] = {}
        for t in set(triangles):
            out[t] = min(triangle_edges(t), key=lambda e: (self._te[e], e))
        return out
