"""Section 5.1: Algorithm 3 - ``IsAssigned`` / ``Assignment`` in the stream.

A triangle should be assigned to its contained edge with the fewest
triangles (smallest ``t_e``) - but ``t_e`` is unknown in the stream, so
Algorithm 3 *estimates* it: for each edge ``f`` of the triangle, draw ``s``
uniform members of ``N(f)`` and count how many close a triangle with ``f``,
giving ``Y_f = (d_f / s) * (closed count)`` with ``E[Y_f] = t_f``.  Two
guard rails keep everything inside the space budget:

* edges with ``d_f`` above the *degree cutoff* ``m*kappa^2/(eps^2*T)`` get
  ``Y_f = infinity`` (line 9; estimating their ``t_f`` would need too many
  samples);
* if even the minimum estimate exceeds the *assignment cutoff*
  ``kappa/(2*eps)`` the triangle is left unassigned (line 18; such "heavy"
  triangles carry at most ``2*eps*T`` triangles in total by Lemma 5.12).

This module implements the procedure *batched*: Algorithm 2 discovers all of
its candidate triangles in pass 4, then a single
:meth:`StreamingAssigner.assign` call resolves every ``Assignment(tau)``
simultaneously in two further passes (passes 5 and 6 of the overall
six-pass estimator):

* pass 5 counts the degree of every vertex appearing in a candidate
  triangle *and*, for each (edge, endpoint) pair, reservoir-samples ``s``
  i.i.d. members of that endpoint's neighborhood (both endpoints are
  sampled because the lower-degree one - whose neighborhood is ``N(f)`` -
  is only identified once degrees are known, at the end of the pass);
* pass 6 watches for the specific closing edges of all sampled wedges.

Two implementation choices worth flagging against the paper's pseudocode:

* **memoization granularity**: the paper memoizes ``Assignment`` per
  triangle; we additionally share each edge's ``Y_f`` estimate across all
  candidate triangles containing it, and share the ``s`` neighborhood
  samples across all candidate edges owned by the same vertex.  Every
  property of Definition 5.2 is proved per-edge (heavy edges receive
  nothing, light edges of good triangles win) by a Chernoff bound on that
  edge's own samples plus a union bound - no independence *across* edges
  is used - so both sharings preserve the analysis while cutting space and
  time by the multiplicity factors.
* **i.i.d. neighborhood samples**: each of the ``s`` sample slots is an
  independent single-item reservoir.  Updating ``s`` slots per incident
  stream edge naively costs ``O(s)``; on the ``k``-th incident edge each
  slot flips with probability ``1/k``, so the flipping subset is drawn
  directly with geometric skips, for ``O(d + s log d)`` total work per
  bundle instead of ``O(s * d)``.

:class:`ExactAssigner` is a test/benchmark double that applies the ideal
min-``t_e`` rule using ground-truth counts from the graph substrate.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Protocol, Tuple

from ..graph.adjacency import Graph
from ..graph.triangles import per_edge_triangle_counts
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, triangle_edges
from . import engine
from .params import ParameterPlan


class Assigner(Protocol):
    """Protocol for assignment procedures usable by Algorithm 2."""

    passes_required: int

    def assign(
        self, scheduler: PassScheduler, triangles: Iterable[Triangle]
    ) -> Dict[Triangle, Optional[Edge]]:
        """Resolve ``Assignment(tau)`` for every given triangle.

        Returns a mapping triangle -> assigned edge, or ``None`` for
        unassigned triangles.  May consume up to ``passes_required`` passes
        from ``scheduler`` (zero if ``triangles`` is empty).
        """
        ...  # pragma: no cover - protocol body


if engine.HAVE_NUMPY:
    import numpy as _np
else:  # pragma: no cover - the CI image bakes NumPy in
    _np = None


class _Bundle:
    """``s`` independent single-item neighbor reservoirs for one vertex.

    The defining invariant: after ``k`` offers, the ``s`` slots are i.i.d.
    uniform samples of the ``k`` offered neighbors.  Only the *multiset* of
    slot values is ever observed (pass 6 counts closing wedges), so with
    NumPy available the bundle stores the compressed form - distinct
    ``values`` with slot ``counts`` summing to ``s`` - and updates it in
    batches:

    * offers buffer up; a flush resolves the whole batch at once.  If the
      state is a multiset of ``s`` uniform samples over ``k0`` offers and
      ``c`` more arrive, each slot independently re-samples from the new
      batch with probability ``c/(k0+c)``; in counts form that is one
      vectorized ``Binomial(count_i, k0/(k0+c))`` thinning of the existing
      entries plus one ``Multinomial`` spread of the re-sampled slots over
      the ``c`` new neighbors - exactly the slot-level distribution, at
      ``O(entries + c)`` cost instead of ``O(s)``;
    * flush thresholds double with the offer count (capped so the buffer
      never exceeds ``max(s, 1024)`` scratch words), so a degree-``d``
      neighborhood costs ``O(min(d, s) log d)`` total work however large
      ``s`` is.

    Without NumPy the bundle keeps explicit slots and draws the adopting
    subset per offer with geometric skips from the caller's stdlib RNG -
    the same distribution, different random bits.

    Callers must :meth:`flush` (in a deterministic bundle order) after the
    pass ends and before reading samples.
    """

    __slots__ = ("capacity", "values", "counts", "_buffer", "_seen", "slots")

    def __init__(self, s: int) -> None:
        self.capacity = s
        if _np is not None:
            self.values = _np.empty(0, dtype=_np.int64)
            self.counts = _np.empty(0, dtype=_np.int64)
            self._buffer: List[Vertex] = []
            self._seen = 0
        else:  # pragma: no cover - the CI image bakes NumPy in
            self.slots = [None] * s

    def offer(self, neighbor: Vertex, k: int, rng) -> None:
        """Offer the ``k``-th neighbor (1-based) to every slot independently.

        ``rng`` is a :class:`SampleSource` on the NumPy path and a
        :class:`random.Random` on the fallback path.
        """
        if _np is not None:
            buffer = self._buffer
            buffer.append(neighbor)
            # Threshold doubles with the offer count, starting at 32 (small
            # neighborhoods resolve in a single end-of-pass flush).
            if len(buffer) >= max(32, min(self._seen, max(self.capacity, 1024))):
                self.flush(rng)
            return
        slots = self.slots  # pragma: no cover - exercised only without NumPy
        if k == 1:  # pragma: no cover
            for j in range(len(slots)):
                slots[j] = neighbor
            return
        # Geometric skips over the slot indices with success prob 1/k.
        log_fail = math.log1p(-1.0 / k)  # pragma: no cover
        j = -1
        s = len(slots)
        while True:
            j += 1 + int(math.log(1.0 - rng.random()) / log_fail)
            if j >= s:
                return
            slots[j] = neighbor

    def flush(self, rng) -> None:
        """Resolve all buffered offers with one batched thinning + spread."""
        if _np is None:
            return  # pragma: no cover - sequential path has no buffer
        buffer = self._buffer
        c = len(buffer)
        if c == 0:
            return
        k0 = self._seen
        new_values = _np.asarray(buffer, dtype=_np.int64)
        spread = _np.full(c, 1.0 / c)
        generator = rng.generator
        if k0 == 0:
            self.values = new_values
            self.counts = generator.multinomial(self.capacity, spread)
        else:
            kept = generator.binomial(self.counts, k0 / (k0 + c))
            adopted = int(self.capacity - kept.sum())
            new_counts = generator.multinomial(adopted, spread)
            values = _np.concatenate((self.values, new_values))
            counts = _np.concatenate((kept, new_counts))
            occupied = counts > 0
            self.values = values[occupied]
            self.counts = counts[occupied]
        self._seen = k0 + c
        buffer.clear()

    def sample_values(self) -> List[Optional[Vertex]]:
        """The slot multiset as plain ints (all ``None`` if never offered)."""
        if _np is not None:
            assert not self._buffer, "bundle read before final flush"
            if self._seen == 0:
                return [None] * self.capacity
            return _np.repeat(self.values, self.counts).tolist()
        return list(self.slots)  # pragma: no cover - exercised only without NumPy


def replay_incident_rows(incident_rows: list, offer) -> None:
    """Replay a fused-sweep incident buffer through a per-edge callback.

    The buffer is what :func:`repro.core.estimator.pass45_closure_and_collect`
    collected during the fused pass-4/5 sweep: every tape edge incident to
    a *superset* of the assignment stage's tracked vertices, in stream
    order (``(k, 2)`` blocks on the chunked engines, edge tuples on the
    Python path).  ``offer`` must ignore untracked endpoints - exactly the
    contract of the pass-5 fold - so replaying the superset produces the
    identical update (and RNG-consumption) sequence a live incident scan
    would have, without consuming a pass.
    """
    for batch in incident_rows:
        if isinstance(batch, tuple):  # Python engine: one edge per entry
            offer(batch[0], batch[1])
        else:  # chunked engines: (k, 2) blocks
            for u, v in batch.tolist():
                offer(u, v)


def stage_closure_hits(
    bundle_rows: List[_Bundle],
    others: List[Vertex],
    meter: SpaceMeter,
    chunked: bool,
) -> "RoundStage":
    """Build the pass-6 closure-counting stage (single and parallel runners).

    Row ``i`` pairs one light candidate edge's owner bundle with the edge's
    far endpoint ``others[i]``; ``finish()`` counts, per row, how many of
    the bundle's sampled wedges close on the tape.  Always charges exactly
    one pass, even with no rows (the pass budget accounting of the
    six-pass layout does not depend on the candidate set).

    The chunked engine builds every watched key in one packed-key
    expression and resolves per-key *occurrence counts* with a single
    vectorized scan (:class:`~repro.core.kernels.PackedKeyCountPlan`) -
    occurrence-weighted, not presence-based, so the engines stay
    bit-identical even on unvalidated tapes with repeated edges.  The
    reference watch-table path below is also the fallback when vertex ids
    overflow the 32-bit packing (a per-row replay - chunk-paced via
    :class:`~repro.core.kernels.EdgeReplayPlan` on the chunked engines, so
    the stage can still share a fused sweep; a pass is a pass either way).
    """
    from .stages import CallbackFold, RoundStage

    if chunked and bundle_rows:
        stage = _closure_hits_vectorized_stage(bundle_rows, others, meter)
        if stage is not None:
            return stage
    watch: Dict[Edge, List[int]] = {}
    for row, (bundle, other) in enumerate(zip(bundle_rows, others)):
        for w in bundle.sample_values():
            if w is None or w == other:
                # No sample (impossible for a real edge) or the sample is
                # the edge's own far endpoint: counts as a miss.
                continue
            watch.setdefault(canonical_edge(other, w), []).append(row)
    meter.allocate(2 * len(watch) + sum(len(v) for v in watch.values()), "assignment-watch")
    hits = [0] * len(bundle_rows)

    def visit(u: Vertex, v: Vertex) -> None:
        watchers = watch.get((u, v))
        if watchers:
            for row in watchers:
                hits[row] += 1

    if chunked:
        from . import kernels

        return RoundStage(plans=[kernels.EdgeReplayPlan(visit)], finish=lambda: hits)
    return RoundStage(fold=CallbackFold(visit), finish=lambda: hits)


def closure_hit_counts(
    scheduler: PassScheduler,
    bundle_rows: List[_Bundle],
    others: List[Vertex],
    meter: SpaceMeter,
    chunked: bool,
) -> List[int]:
    """Pass-6 closure counting as one dedicated sweep (see :func:`stage_closure_hits`)."""
    from .stages import execute_stage

    return execute_stage(scheduler, stage_closure_hits(bundle_rows, others, meter, chunked))


def _closure_hits_vectorized_stage(
    bundle_rows: List[_Bundle],
    others: List[Vertex],
    meter: SpaceMeter,
) -> Optional["RoundStage"]:
    """One ragged packed-key expression + one chunked scan; ``None`` on overflow.

    The bundles store the slot multiset compressed (distinct values with
    counts), so the watched keys are built entry-wise over the ragged
    concatenation of all bundles - ``O(sum_f min(d_f, s))`` work - and hit
    counts weight each fired key by its slot multiplicity, exactly like
    the reference watch table over the expanded slots.
    """
    import numpy as np

    from . import kernels
    from .stages import RoundStage

    lengths = np.fromiter(
        (len(bundle.values) for bundle in bundle_rows), np.int64, count=len(bundle_rows)
    )
    entry_values = (
        np.concatenate([bundle.values for bundle in bundle_rows])
        if len(bundle_rows)
        else np.empty(0, dtype=np.int64)
    )
    entry_counts = (
        np.concatenate([bundle.counts for bundle in bundle_rows])
        if len(bundle_rows)
        else np.empty(0, dtype=np.int64)
    )
    entry_rows = np.repeat(np.arange(len(bundle_rows), dtype=np.int64), lengths)
    entry_others = np.repeat(np.asarray(others, dtype=np.int64), lengths)
    if len(entry_values) and (
        max(int(entry_values.max()), int(entry_others.max())) >= kernels.PACK_LIMIT
    ):
        return None  # ids beyond 32 bits cannot use packed keys
    # Drop entries the expanded reference never watches: samples equal to
    # the edge's own far endpoint, and zero-multiplicity values (a bundle's
    # first flush multinomial may leave zero-count entries; they carry no
    # watchers, so keeping them would only inflate the key set and its
    # space accounting relative to the watch-table path).
    valid = (entry_values != entry_others) & (entry_counts > 0)
    entry_values = entry_values[valid]
    entry_others = entry_others[valid]
    entry_rows = entry_rows[valid]
    entry_counts = entry_counts[valid]
    packed = kernels.pack_canonical_rows(
        np.column_stack(
            (np.minimum(entry_values, entry_others), np.maximum(entry_values, entry_others))
        )
    )
    assert packed is not None  # overflow excluded by the PACK_LIMIT check above
    unique_keys, inverse = np.unique(packed, return_inverse=True)
    # Same accounting as the watch table: 2 words per distinct watched edge
    # plus 1 per watcher entry (slot multiplicities included).
    meter.allocate(2 * len(unique_keys) + int(entry_counts.sum()), "assignment-watch")
    plan = kernels.PackedKeyCountPlan(unique_keys)

    def finish() -> List[int]:
        occurrences = plan.result()
        hits = np.bincount(
            entry_rows, weights=entry_counts * occurrences[inverse], minlength=len(bundle_rows)
        )
        return hits.astype(np.int64).tolist()

    return RoundStage(plans=[plan], finish=finish)


class SampleSource:
    """Blocked uniform variates over one :class:`numpy.random.Generator`.

    Bundle flushes need a few hundred uniforms at unpredictable moments;
    drawing them through per-call ``Generator`` methods costs microseconds
    of call overhead each.  This source draws 16k at a time and hands out
    zero-copy slices, so a flush pays one slice plus the arithmetic.
    Consumption order is deterministic given the flush sequence, which both
    execution engines replay identically.
    """

    __slots__ = ("_gen", "_block", "_pos")

    BLOCK = 1 << 14

    def __init__(self, gen) -> None:
        self._gen = gen
        self._block = None
        self._pos = 0

    def uniforms(self, n: int):
        """Return the next ``n`` uniform [0, 1) variates as an array view."""
        block = self._block
        if block is None or self._pos + n > len(block):
            self._block = block = self._gen.random(max(self.BLOCK, n))
            self._pos = 0
        out = block[self._pos : self._pos + n]
        self._pos += n
        return out

    @property
    def generator(self):
        """The backing generator, for non-uniform draws (binomial etc.)."""
        return self._gen


def derive_sample_generator(rng: random.Random):
    """Derive the vectorized sample source for one run's bundles.

    Draws exactly one 64-bit value from ``rng`` (keeping the stdlib RNG
    stream aligned across engines) and seeds a :class:`SampleSource` from
    it; returns ``rng`` itself when NumPy is unavailable.  Both execution
    engines call this at the same point and then consume the source on the
    same matched edges in the same order, so results stay seed-for-seed
    identical between them.
    """
    seed = rng.getrandbits(64)
    if engine.HAVE_NUMPY:
        return SampleSource(_np.random.default_rng(seed))
    return rng  # pragma: no cover - the CI image bakes NumPy in


class StreamingAssigner:
    """Algorithm 3, batched over all candidate triangles (two passes)."""

    passes_required = 2

    def __init__(
        self,
        plan: ParameterPlan,
        rng: random.Random,
        meter: Optional[SpaceMeter] = None,
    ) -> None:
        self._plan = plan
        self._rng = rng
        self._meter = meter if meter is not None else SpaceMeter()

    def assign(
        self,
        scheduler: PassScheduler,
        triangles: Iterable[Triangle],
        incident_rows: Optional[list] = None,
    ) -> Dict[Triangle, Optional[Edge]]:
        """Resolve assignments for all distinct triangles in two passes.

        When the fused sweep engine already collected the incident edges
        during pass 4, ``incident_rows`` carries that buffer and pass 5
        replays it instead of opening a pass of its own (the pass was
        charged by the fused group) - results are bit-identical either
        way.
        """
        distinct = sorted(set(triangles))
        if not distinct:
            return {}
        edges = sorted({f for t in distinct for f in triangle_edges(t)})
        chunked = engine.use_chunks(scheduler.stream)

        degree, bundles = self._pass5_degrees_and_samples(
            scheduler, edges, chunked, incident_rows
        )
        estimates = self._pass6_estimate_te(scheduler, edges, degree, bundles, chunked)
        return self._resolve(distinct, estimates)

    # -- pass 5 --------------------------------------------------------------

    def _pass5_degrees_and_samples(
        self,
        scheduler: PassScheduler,
        edges: List[Edge],
        chunked: bool = False,
        incident_rows: Optional[list] = None,
    ) -> Tuple[Dict[Vertex, int], Dict[Vertex, _Bundle]]:
        """Count degrees of all candidate-edge endpoints and sample neighbors.

        One bundle of ``s`` reservoirs per *vertex* (shared by every
        candidate edge that vertex may end up owning; see module docstring
        for why sharing is sound).  The heavy-edge degree counters and the
        reservoir bundles only react to edges incident to a candidate
        endpoint, so the chunked engine pre-filters the tape to exactly
        those edges and replays the identical update sequence on them.
        """
        s = self._plan.s
        bundles: Dict[Vertex, _Bundle] = {}
        for f in edges:
            for endpoint in f:
                if endpoint not in bundles:
                    bundles[endpoint] = _Bundle(s)
        degree: Dict[Vertex, int] = {v: 0 for v in bundles}
        self._meter.allocate(s * len(bundles), "assignment-reservoirs")
        self._meter.allocate(len(degree), "assignment-degrees")

        rng = derive_sample_generator(self._rng)

        def offer(a: Vertex, b: Vertex) -> None:
            if a in degree:
                k = degree[a] + 1
                degree[a] = k
                bundles[a].offer(b, k, rng)
            if b in degree:
                k = degree[b] + 1
                degree[b] = k
                bundles[b].offer(a, k, rng)

        if incident_rows is not None:
            # Fused sweep: pass 5's tape reads already happened during the
            # pass-4 sweep; replay the buffered superset (no pass opened).
            replay_incident_rows(incident_rows, offer)
        elif chunked:
            from . import kernels

            kernels.scan_incident_edges(scheduler, degree, engine.chunk_size(), offer)
        else:
            for a, b in scheduler.new_pass():
                offer(a, b)
        for bundle in bundles.values():  # deterministic construction order
            bundle.flush(rng)
        return degree, bundles

    # -- pass 6 --------------------------------------------------------------

    def _pass6_estimate_te(
        self,
        scheduler: PassScheduler,
        edges: List[Edge],
        degree: Dict[Vertex, int],
        bundles: Dict[Vertex, _Bundle],
        chunked: bool = False,
    ) -> Dict[Edge, float]:
        """Check wedge closures and return ``Y_f`` per candidate edge."""
        estimates: Dict[Edge, float] = {}
        light: List[Edge] = []
        light_others: List[Vertex] = []
        for f in edges:
            u, v = f
            d_f = min(degree[u], degree[v])
            if d_f > self._plan.degree_cutoff:
                estimates[f] = float("inf")  # Algorithm 3 line 9
                continue
            estimates[f] = 0.0
            # Section 3 convention: N(e) is the lower-degree endpoint's
            # neighborhood, ties to the second endpoint.
            owner = u if degree[u] < degree[v] else v
            light.append(f)
            light_others.append(v if owner == u else u)
        bundle_rows = [bundles[u if other == v else v] for (u, v), other in zip(light, light_others)]
        hits = closure_hit_counts(scheduler, bundle_rows, light_others, self._meter, chunked)
        s = self._plan.s
        for f, hit_count in zip(light, hits):
            u, v = f
            estimates[f] = min(degree[u], degree[v]) * hit_count / s
        return estimates

    # -- resolution ------------------------------------------------------------

    def _resolve(
        self, distinct: List[Triangle], estimates: Dict[Edge, float]
    ) -> Dict[Triangle, Optional[Edge]]:
        out: Dict[Triangle, Optional[Edge]] = {}
        for t in distinct:
            # Minimum Y_f with canonical-edge tie-break, for consistency.
            best_edge = min(triangle_edges(t), key=lambda f: (estimates[f], f))
            if estimates[best_edge] > self._plan.assignment_cutoff:
                out[t] = None  # Algorithm 3 line 18: return bottom
            else:
                out[t] = best_edge
        return out


class ExactAssigner:
    """Ground-truth assignment double: the ideal min-``t_e`` rule.

    Uses exact per-edge triangle counts from the graph substrate and never
    leaves a triangle unassigned.  Consumes zero passes.  Intended for tests
    and ablation benchmarks that isolate Algorithm 2's sampling error from
    Algorithm 3's estimation error.
    """

    passes_required = 0

    def __init__(self, graph: Graph) -> None:
        self._te = per_edge_triangle_counts(graph)

    def assign(
        self, scheduler: PassScheduler, triangles: Iterable[Triangle]
    ) -> Dict[Triangle, Optional[Edge]]:
        """Assign each triangle to its exact minimum-``t_e`` edge."""
        out: Dict[Triangle, Optional[Edge]] = {}
        for t in set(triangles):
            out[t] = min(triangle_edges(t), key=lambda e: (self._te[e], e))
        return out
