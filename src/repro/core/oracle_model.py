"""Section 4: the abstract model with a free degree oracle, and Algorithm 1.

The warm-up model grants the algorithm a *degree oracle*: queried with a
vertex, it returns the vertex's degree, at zero space cost.  Algorithm 1
(``IdealEstimator``) then runs in three passes:

1. sample an edge ``e`` with probability ``d_e / d_E`` - implemented with
   Chao's weighted reservoir, querying the oracle for ``d_e = min(d_u, d_v)``
   as each edge arrives;
2. sample ``w`` uniformly from ``N(e)`` (the neighborhood of the lower-degree
   endpoint);
3. check whether ``{e, w}`` forms a triangle, and if it does, apply the
   assignment rule (the Section 4 suggestion: assign every triangle "to the
   edge with lowest degree, breaking ties arbitrarily (but consistently)" -
   with a free oracle this costs no passes).

Each copy outputs ``X = d_E * Y``; the unbiasedness ``E[X] = T`` and the
variance bound ``Var[X] <= d_E * T`` from Section 4 hold for *any* unique
full assignment, so the min-degree rule suffices here.  Experiment E7
verifies both properties empirically.

Many copies run in parallel over the same three passes; the final estimate
is the median of means (Section 4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ParameterError
from ..graph.adjacency import Graph
from ..sampling.combine import median_of_means
from ..sampling.reservoir import SingleItemReservoir
from ..sampling.weighted import WeightedReservoir
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Edge, Triangle, Vertex, canonical_edge, canonical_triangle, triangle_edges


class DegreeOracle:
    """The free degree oracle of the Section 4 abstract model.

    Built from the ground-truth graph (the model grants the queries for
    free, so *how* the oracle knows the degrees is outside the model).
    Query counts are recorded so experiments can report them - the paper
    notes its Section 4 estimator makes ``2m`` oracle queries.
    """

    def __init__(self, graph: Graph) -> None:
        self._degrees: Dict[Vertex, int] = graph.degrees()
        self._queries = 0

    @property
    def queries(self) -> int:
        """Number of degree queries served so far."""
        return self._queries

    def degree(self, v: Vertex) -> int:
        """Return ``d_v``; unknown vertices have degree 0 (isolated)."""
        self._queries += 1
        return self._degrees.get(v, 0)

    def edge_degree(self, e: Edge) -> int:
        """Return ``d_e = min(d_u, d_v)`` (two queries)."""
        u, v = e
        return min(self.degree(u), self.degree(v))

    def neighborhood_owner(self, e: Edge) -> Vertex:
        """Return the endpoint defining ``N(e)`` (Section 3 convention)."""
        u, v = e
        return u if self.degree(u) < self.degree(v) else v


def min_degree_edge_assignment(oracle: DegreeOracle, triangle: Triangle) -> Edge:
    """Section 4's assignment rule: the triangle's minimum-``d_e`` edge.

    Ties are broken by canonical edge order, making the rule consistent
    across invocations as the paper requires.
    """
    return min(triangle_edges(triangle), key=lambda e: (oracle.edge_degree(e), e))


@dataclass(frozen=True)
class IdealEstimatorResult:
    """Outcome of one :class:`IdealEstimator` run.

    ``estimate`` is the median-of-means combination; ``raw_estimates`` holds
    every copy's ``X`` value (used by E7 to measure bias and variance);
    ``d_e_sum`` is the exact ``d_E`` accumulated during pass 1.
    """

    estimate: float
    raw_estimates: List[float]
    d_e_sum: float
    passes_used: int
    oracle_queries: int
    space_words_peak: int


class IdealEstimator:
    """Algorithm 1, run as ``copies`` parallel instances over three passes.

    Parameters
    ----------
    oracle:
        The free degree oracle.
    copies:
        Number of independent basic estimators (the paper needs
        ``O~(d_E / T)`` of them for a ``(1 +- eps)`` estimate).
    median_groups:
        Number of groups for the median-of-means combiner; must divide
        ``copies``.
    rng:
        Source of randomness.
    """

    def __init__(
        self,
        oracle: DegreeOracle,
        copies: int,
        rng: random.Random,
        median_groups: int = 1,
    ) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        if median_groups < 1 or copies % median_groups != 0:
            raise ParameterError(
                f"median_groups ({median_groups}) must divide copies ({copies})"
            )
        self._oracle = oracle
        self._copies = copies
        self._groups = median_groups
        self._rng = rng

    def estimate(self, stream: EdgeStream, meter: Optional[SpaceMeter] = None) -> IdealEstimatorResult:
        """Run the three passes and return the combined estimate."""
        meter = meter if meter is not None else SpaceMeter()
        scheduler = PassScheduler(stream, max_passes=3)

        # Pass 1: one weighted reservoir per copy; free degree queries give
        # each arriving edge its weight d_e.
        reservoirs = [
            WeightedReservoir[Edge](self._rng, meter, category="weighted-reservoir")
            for _ in range(self._copies)
        ]
        d_e_sum = 0.0
        for edge in scheduler.new_pass():
            w = float(self._oracle.edge_degree(edge))
            d_e_sum += w
            for res in reservoirs:
                res.offer(edge, w)
        # All reservoirs observed the same total weight; record once.
        sampled: List[Optional[Edge]] = [res.sample() for res in reservoirs]

        # Pass 2: uniform neighbor of the lower-degree endpoint, per copy.
        owners: List[Optional[Vertex]] = [
            self._oracle.neighborhood_owner(e) if e is not None else None for e in sampled
        ]
        neighbor_res: List[SingleItemReservoir[Vertex]] = [
            SingleItemReservoir(self._rng, meter, category="neighbor-reservoir")
            for _ in range(self._copies)
        ]
        by_owner: Dict[Vertex, List[int]] = {}
        for i, x in enumerate(owners):
            if x is not None:
                by_owner.setdefault(x, []).append(i)
        meter.allocate(len(by_owner), "owner-index")
        for a, b in scheduler.new_pass():
            for i in by_owner.get(a, ()):
                neighbor_res[i].offer(b)
            for i in by_owner.get(b, ()):
                neighbor_res[i].offer(a)

        # Pass 3: watch for the single closing edge of each copy's wedge.
        closing: Dict[Edge, List[int]] = {}
        candidates: List[Optional[Triangle]] = [None] * self._copies
        for i, e in enumerate(sampled):
            if e is None:
                continue
            w = neighbor_res[i].sample()
            if w is None:
                continue
            u, v = e
            owner = owners[i]
            other = v if owner == u else u
            if w == other:
                continue  # the "neighbor" is the edge's own endpoint; no wedge
            candidates[i] = canonical_triangle(u, v, w)
            closing.setdefault(canonical_edge(other, w), []).append(i)
        meter.allocate(2 * len(closing), "closing-watch")
        found = [False] * self._copies
        for edge in scheduler.new_pass():
            for i in closing.get(edge, ()):
                found[i] = True

        # Resolve Y per copy and combine.
        raw: List[float] = []
        for i in range(self._copies):
            y = 0.0
            triangle = candidates[i]
            if triangle is not None and found[i] and sampled[i] is not None:
                assigned_to = min_degree_edge_assignment(self._oracle, triangle)
                if assigned_to == sampled[i]:
                    y = 1.0
            raw.append(d_e_sum * y)
        estimate = median_of_means(raw, self._groups)
        return IdealEstimatorResult(
            estimate=estimate,
            raw_estimates=raw,
            d_e_sum=d_e_sum,
            passes_used=scheduler.passes_used,
            oracle_queries=self._oracle.queries,
            space_words_peak=meter.peak_words,
        )
