"""Execution-engine selection: pure Python, chunked NumPy, or sharded.

Every pass of the estimator stack exists in seed-for-seed equivalent
implementations:

* the **pure-Python path** - one interpreter iteration per stream edge,
  exactly as written in the original modules.  Always available, easy to
  audit against the paper's pseudocode, and the reference the parity suite
  checks against;
* the **chunked path** (:mod:`repro.core.kernels`) - edges arrive in
  ``(k, 2)`` int64 NumPy blocks via
  :meth:`~repro.streams.multipass.PassScheduler.new_pass_chunks` and each
  pass does its heavy scanning with vectorized array operations, consuming
  randomness in exactly the same order as the Python path so results are
  bit-identical;
* the **sharded path** (:mod:`repro.core.executor`) - the same chunked
  pass plans, fanned out across a process pool and merged deterministically,
  still bit-identical for the same seeds.  Sharding engages whenever the
  chunked path runs with ``workers > 1``; the ``"sharded"`` mode forces
  the chunked path and defaults the worker count to the machine's cores
  when none was set explicitly.

This module is the single switchboard deciding which path runs.  The policy
(``"auto"`` by default) uses the chunked path whenever NumPy is importable
and the stream advertises a native chunk producer
(:attr:`~repro.streams.base.EdgeStream.supports_native_chunks`); iterator-only
streams stay on the Python path, where the generic batching fallback would
add overhead without removing the per-edge interpreter cost.

The mode, chunk size, and worker count can be forced globally
(:func:`set_engine`), per block (:func:`engine_overrides` - what the parity
suite and benchmarks use), or at process start via the environment:
``REPRO_ENGINE`` (``auto`` | ``chunked`` | ``python`` | ``sharded``) and
``REPRO_WORKERS`` (a positive integer; ``1`` means in-process).

The policy is **process-global, not thread-local**: ``engine_overrides``
(and therefore per-config engine selection on
:class:`~repro.core.driver.EstimatorConfig`) mutates shared module state,
so concurrently running estimators in one process must use the same
engine settings - run differing configurations in separate processes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ParameterError
from ..streams.base import DEFAULT_CHUNK_EDGES, EdgeStream

_MODES = ("auto", "chunked", "python", "sharded")

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image bakes NumPy in
    HAVE_NUMPY = False


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_ENGINE", "auto").strip().lower()
    return mode if mode in _MODES else "auto"


def _initial_workers() -> Optional[int]:
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw.isdigit() and int(raw) >= 1:
        return int(raw)
    return None


def _initial_fuse() -> bool:
    return os.environ.get("REPRO_FUSE", "").strip().lower() in ("1", "true", "on")


#: Depth-2 speculation is the original round-pair driver; it is the
#: default because its worst case (one discarded round) is the mildest.
DEFAULT_SPECULATE_DEPTH = 2


def _valid_env_depth() -> Optional[int]:
    raw = os.environ.get("REPRO_SPECULATE_DEPTH", "").strip()
    if raw.isdigit() and int(raw) >= 2:
        return int(raw)
    return None


def _initial_speculate() -> bool:
    raw = os.environ.get("REPRO_SPECULATE")
    if raw is not None:
        return raw.strip().lower() in ("1", "true", "on")
    # A valid REPRO_SPECULATE_DEPTH with REPRO_SPECULATE unset implies
    # speculation - asking for a depth is asking to speculate, at the
    # environment entry point just like at the config/CLI ones.
    return _valid_env_depth() is not None


def _initial_speculate_depth() -> int:
    depth = _valid_env_depth()
    return depth if depth is not None else DEFAULT_SPECULATE_DEPTH


_mode: str = _initial_mode()
_chunk_size: int = DEFAULT_CHUNK_EDGES
#: ``None`` = never set explicitly (mode ``"sharded"`` may then default it
#: to the core count); an explicit ``1`` always means in-process.
_workers: Optional[int] = _initial_workers()
#: Fused sweeps: independent pass plans of one round share a physical tape
#: sweep (see :func:`repro.core.executor.run_plans`).  Estimates are
#: seed-for-seed identical either way; fusing trades a little extra
#: speculative space for strictly fewer stream sweeps.
_fuse: bool = _initial_fuse()
#: Speculative round fusion: the guessing loop runs round ``i`` and up to
#: ``speculate_depth - 1`` pre-drawn later rounds through shared sweeps,
#: committing the prefix up to the first acceptance and discarding the
#: rest (see :mod:`repro.core.speculate`).  Estimates are bit-identical
#: either way, at any depth.
_speculate: bool = _initial_speculate()
#: How many guessing rounds one speculative window may fuse (>= 2).  Depth
#: 2 is the original round-pair driver; the driver's expected-waste cap
#: may choose a shallower window per round (see
#: :mod:`repro.core.driver`).  ``REPRO_SPECULATE_DEPTH`` seeds it.
_speculate_depth: int = _initial_speculate_depth()


def engine_mode() -> str:
    """The engine policy in force: ``auto``, ``chunked``, ``python``, or ``sharded``."""
    return _mode


def chunk_size() -> int:
    """Edges per chunk used by the chunked path."""
    return _chunk_size


def workers() -> int:
    """The configured worker-process count (``1`` means in-process)."""
    return _workers if _workers is not None else 1


def fuse() -> bool:
    """Whether rounds should fuse their independent pass plans per sweep."""
    return _fuse


def speculate() -> bool:
    """Whether the guessing loop should fuse speculative round windows."""
    return _speculate


def speculate_depth() -> int:
    """Maximum rounds per speculative window (>= 2; 2 = round pairs)."""
    return _speculate_depth


def effective_workers() -> int:
    """The worker count the executor should actually use.

    An explicitly configured count always wins (``1`` = serial in-process
    execution, even under mode ``"sharded"``); with no explicit count,
    mode ``"sharded"`` defaults to the machine's CPU count and every other
    mode stays in-process.
    """
    if _workers is not None:
        return _workers
    if _mode == "sharded":
        return os.cpu_count() or 1
    return 1


def _check_chunk(chunk: Optional[int]) -> None:
    if chunk is not None and chunk < 1:
        raise ParameterError(f"chunk size must be >= 1, got {chunk}")


def _check_workers(num_workers: Optional[int]) -> None:
    if num_workers is not None and num_workers < 1:
        raise ParameterError(f"workers must be >= 1, got {num_workers}")


def _check_depth(depth: Optional[int]) -> None:
    if depth is not None and depth < 2:
        raise ParameterError(f"speculate_depth must be >= 2, got {depth}")


def _apply(
    chunk: Optional[int],
    num_workers: Optional[int],
    fused: Optional[bool] = None,
    speculative: Optional[bool] = None,
    depth: Optional[int] = None,
) -> None:
    """Validate *all* settings before committing any (no partial writes)."""
    global _chunk_size, _workers, _fuse, _speculate, _speculate_depth
    _check_chunk(chunk)
    _check_workers(num_workers)
    _check_depth(depth)
    if chunk is not None:
        _chunk_size = chunk
    if num_workers is not None:
        _workers = num_workers
    if fused is not None:
        _fuse = bool(fused)
    if speculative is not None:
        _speculate = bool(speculative)
    elif depth is not None:
        # Asking for a depth is asking to speculate (an explicit
        # ``speculative`` argument - either way - always wins), so the
        # depth knob is never silently inert at this entry point either.
        _speculate = True
    if depth is not None:
        _speculate_depth = depth


def set_engine(
    mode: str,
    chunk: Optional[int] = None,
    num_workers: Optional[int] = None,
    fused: Optional[bool] = None,
    speculative: Optional[bool] = None,
    speculate_depth: Optional[int] = None,
) -> None:
    """Set the global engine policy (and optionally chunk size / workers / fusing).

    ``"chunked"`` forces the kernels even for iterator-only streams (their
    generic batching fallback feeds the kernels); ``"sharded"`` does the
    same and additionally fans passes across worker processes;
    ``"python"`` forces the reference path; ``"auto"`` picks per stream.
    ``fused`` toggles the fused-sweep execution of each round's independent
    pass plans (any engine mode; estimates are identical either way);
    ``speculative`` toggles the guessing loop's speculative round fusion
    and ``speculate_depth`` (>= 2) bounds how many rounds one speculative
    window may fuse (see :mod:`repro.core.speculate` - estimates are
    identical either way, at any depth).
    All arguments are validated before any global state changes, so a
    rejected call leaves the policy untouched.
    """
    global _mode
    if mode not in _MODES:
        raise ParameterError(f"engine mode must be one of {_MODES}, got {mode!r}")
    if mode in ("chunked", "sharded") and not HAVE_NUMPY:
        raise ParameterError(f"engine mode {mode!r} requires NumPy, which is not installed")
    _apply(chunk, num_workers, fused, speculative, speculate_depth)
    _mode = mode


@contextmanager
def engine_overrides(
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    num_workers: Optional[int] = None,
    fused: Optional[bool] = None,
    speculative: Optional[bool] = None,
    speculate_depth: Optional[int] = None,
) -> Iterator[None]:
    """Temporarily override the engine policy, chunk size, workers, fusing,
    and/or speculative round fusion (on/off and window depth).

    Only *explicit* arguments are validated and applied; ``None`` leaves
    the corresponding setting untouched (in particular, an environment-
    forced ``chunked``/``sharded`` mode on a NumPy-less box is tolerated
    here - it degrades at :func:`use_chunks` - rather than rejected on
    every entry).  Restoration is unconditional.
    """
    global _mode, _chunk_size, _workers, _fuse, _speculate, _speculate_depth
    saved = (_mode, _chunk_size, _workers, _fuse, _speculate, _speculate_depth)
    try:
        if mode is not None:
            set_engine(mode, chunk, num_workers, fused, speculative, speculate_depth)
        else:
            _apply(chunk, num_workers, fused, speculative, speculate_depth)
        yield
    finally:
        (_mode, _chunk_size, _workers, _fuse, _speculate, _speculate_depth) = saved


def use_chunks(stream: EdgeStream) -> bool:
    """Decide whether the chunked kernels should run for ``stream``."""
    if _mode == "python" or not HAVE_NUMPY:
        return False
    if _mode in ("chunked", "sharded"):
        return True
    return stream.supports_native_chunks
