"""Execution-engine selection: chunked NumPy kernels vs. pure Python.

Every pass of the estimator stack exists in two seed-for-seed equivalent
implementations:

* the **pure-Python path** - one interpreter iteration per stream edge,
  exactly as written in the original modules.  Always available, easy to
  audit against the paper's pseudocode, and the reference the parity suite
  checks against;
* the **chunked path** (:mod:`repro.core.kernels`) - edges arrive in
  ``(k, 2)`` int64 NumPy blocks via
  :meth:`~repro.streams.multipass.PassScheduler.new_pass_chunks` and each
  pass does its heavy scanning with vectorized array operations, consuming
  randomness in exactly the same order as the Python path so results are
  bit-identical.

This module is the single switchboard deciding which path runs.  The policy
(``"auto"`` by default) uses the chunked path whenever NumPy is importable
and the stream advertises a native chunk producer
(:attr:`~repro.streams.base.EdgeStream.supports_native_chunks`); iterator-only
streams stay on the Python path, where the generic batching fallback would
add overhead without removing the per-edge interpreter cost.

The mode can be forced globally (:func:`set_engine`), per block
(:func:`engine_overrides` - what the parity suite and benchmarks use), or at
process start via the ``REPRO_ENGINE`` environment variable
(``auto`` | ``chunked`` | ``python``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from ..errors import ParameterError
from ..streams.base import DEFAULT_CHUNK_EDGES, EdgeStream

_MODES = ("auto", "chunked", "python")

try:  # NumPy is an optional accelerator, never a hard dependency.
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image bakes NumPy in
    HAVE_NUMPY = False


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_ENGINE", "auto").strip().lower()
    return mode if mode in _MODES else "auto"


_mode: str = _initial_mode()
_chunk_size: int = DEFAULT_CHUNK_EDGES


def engine_mode() -> str:
    """The engine policy in force: ``auto``, ``chunked``, or ``python``."""
    return _mode


def chunk_size() -> int:
    """Edges per chunk used by the chunked path."""
    return _chunk_size


def set_engine(mode: str, chunk: Optional[int] = None) -> None:
    """Set the global engine policy (and optionally the chunk size).

    ``"chunked"`` forces the kernels even for iterator-only streams (their
    generic batching fallback feeds the kernels); ``"python"`` forces the
    reference path; ``"auto"`` picks per stream.
    """
    global _mode, _chunk_size
    if mode not in _MODES:
        raise ParameterError(f"engine mode must be one of {_MODES}, got {mode!r}")
    if mode == "chunked" and not HAVE_NUMPY:
        raise ParameterError("engine mode 'chunked' requires NumPy, which is not installed")
    if chunk is not None:
        if chunk < 1:
            raise ParameterError(f"chunk size must be >= 1, got {chunk}")
        _chunk_size = chunk
    _mode = mode


@contextmanager
def engine_overrides(mode: Optional[str] = None, chunk: Optional[int] = None) -> Iterator[None]:
    """Temporarily override the engine policy and/or chunk size."""
    saved_mode, saved_chunk = _mode, _chunk_size
    try:
        set_engine(mode if mode is not None else _mode, chunk)
        yield
    finally:
        set_engine(saved_mode, saved_chunk)


def use_chunks(stream: EdgeStream) -> bool:
    """Decide whether the chunked kernels should run for ``stream``."""
    if _mode == "python" or not HAVE_NUMPY:
        return False
    if _mode == "chunked":
        return True
    return stream.supports_native_chunks
