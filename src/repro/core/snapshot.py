"""Durable round-boundary snapshots: the ``.esnap`` container and writer.

PR 6's fault layer survives in-process failures; this module survives
*process death*.  The guessing loop (see :mod:`repro.core.driver`) is a
sequence of committed rounds, and everything the loop carries across a
round boundary is small and explicit: the root generator's state, the
committed :class:`~repro.core.driver.GuessRound` trajectory, the
pass/sweep accounting, and the degradations the recovery ladder recorded.
A snapshot serializes exactly that state, so a run killed between rounds
``k`` and ``k+1`` resumes from round ``k+1`` with bit-identical results -
the same invariant the retry machinery pins for in-process recovery.

The container mirrors the ``.etape`` discipline (:mod:`repro.streams.tape`):

* PNG-style magic bytes (:data:`MAGIC`) so text-mode transfers and format
  confusion are caught immediately;
* a fixed little-endian header (:data:`HEADER_BYTES` bytes) carrying the
  format version, the committed round index, the payload length, a
  CRC-32 of the payload, a SHA-256 *config hash* over the
  trajectory-relevant configuration, and a SHA-256 *stream fingerprint*
  over the input's content;
* a UTF-8 JSON payload with the full estimator state.

Validation is layered to match the failure modes: structural damage
(truncation, bad magic, bad CRC, future version) raises
:class:`~repro.errors.SnapshotFormatError` and the loader falls back to
the previous file in the rotation; a structurally valid snapshot whose
config hash or stream fingerprint disagrees with the resuming run raises
the *hard* :class:`~repro.errors.SnapshotMismatchError` - silently
continuing a different run's trajectory is the one thing durability must
never do.

Writes are atomic and crash-ordered: payload to a temp file in the
checkpoint directory, ``fsync``, ``os.replace`` onto the rotation name,
then a directory ``fsync`` - a ``kill -9`` at any instruction leaves
either the old snapshot or the new one, never a torn file.  The writer
keeps the last ``K`` snapshots (:data:`DEFAULT_KEEP`, via
``REPRO_SNAPSHOT_KEEP``) and persists every ``snapshot_every`` committed
rounds (``REPRO_SNAPSHOT_EVERY``, default every round).  Write failures
flow through the standard fault machinery: the ``snapshot.write``
injection site, the retry policy, and on exhaustion the
``snapshot->skip`` ladder step - the run finishes without further
checkpoints rather than failing, because durability is an add-on, never
a correctness dependency.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..errors import (
    ParameterError,
    SnapshotFormatError,
    SnapshotWriteError,
)
from . import faults as faults_module

#: Leading magic bytes - same construction as the tape's: high bit, a
#: greppable name, and a CR/LF pair that newline translation would mangle.
MAGIC = b"\x89ESNAP\r\n"

#: Current (and only) snapshot format version.
VERSION = 1

#: Fixed header size; the JSON payload starts at this offset.
HEADER_BYTES = 112

#: ``<`` = little-endian: 8s magic, I version, I flags, q round index,
#: q payload length, Q payload CRC-32 (zero-extended), 32s config hash,
#: 32s stream fingerprint, 8x reserved = 112 bytes.
_HEADER_STRUCT = struct.Struct("<8sIIqqQ32s32s8x")

#: Rotation filename pattern: ``snap-r000017.esnap`` = state *entering*
#: round 17 (rounds 0..16 committed).
_NAME_PREFIX = "snap-r"
_NAME_SUFFIX = ".esnap"

#: Default keep-last-K rotation depth.
DEFAULT_KEEP = 3

#: Strided fingerprint sampling for text edge-list files (same policy as
#: the tape fingerprint: bounded reads on inputs of any size).
_SAMPLE_BLOCKS = 64
_SAMPLE_BYTES = 1 << 16


# ---------------------------------------------------------------------------
# knob resolution (config field -> environment -> default)


def resolve_checkpoint_dir(value: Optional[str] = None) -> Optional[str]:
    """The effective checkpoint directory, or ``None`` when disabled.

    ``value`` (the ``EstimatorConfig.checkpoint_dir`` field / CLI
    ``--checkpoint-dir``) wins; otherwise ``REPRO_CHECKPOINT_DIR``; an
    empty string either way means "disabled".
    """
    if value is None:
        value = os.environ.get("REPRO_CHECKPOINT_DIR", "")
    value = str(value).strip()
    return value or None


def _resolve_positive_int(value: Optional[int], env: str, default: int) -> int:
    if value is None:
        raw = os.environ.get(env, "").strip()
        if raw:
            try:
                value = int(raw)
            except ValueError:
                raise ParameterError(f"{env} must be an integer, got {raw!r}")
    if value is None:
        return default
    if value < 1:
        raise ParameterError(f"{env} must be >= 1, got {value}")
    return value


def resolve_snapshot_every(value: Optional[int] = None) -> int:
    """Committed rounds between persisted snapshots (default 1)."""
    return _resolve_positive_int(value, "REPRO_SNAPSHOT_EVERY", 1)


def resolve_snapshot_keep(value: Optional[int] = None) -> int:
    """Rotation depth: how many snapshots to retain (default 3)."""
    return _resolve_positive_int(value, "REPRO_SNAPSHOT_KEEP", DEFAULT_KEEP)


# ---------------------------------------------------------------------------
# hashing: what identifies "the same run"


def config_hash(state: Dict[str, object], kappa: int) -> bytes:
    """SHA-256 over the trajectory-relevant configuration.

    ``state`` is the config document the driver stores in the payload
    (see ``driver._config_state``); only the fields that determine the
    estimate trajectory participate - seed, accuracy, repetitions, the
    parameter-plan mode and constants, the hint, the budget and round
    caps, and the pass-sharing switch, plus the promise ``kappa``.
    Engine and robustness knobs are deliberately excluded: results are
    bit-identical across engines, so a run checkpointed under one engine
    may legitimately resume under another.
    """
    relevant = {
        key: state.get(key)
        for key in (
            "epsilon",
            "repetitions",
            "mode",
            "constants",
            "seed",
            "t_hint",
            "space_budget_words",
            "max_rounds",
            "share_passes",
        )
    }
    relevant["kappa"] = kappa
    canonical = json.dumps(relevant, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).digest()


def _file_fingerprint(path: str, tag: bytes) -> bytes:
    """Size plus strided byte samples of ``path``, SHA-256 digested."""
    digest = hashlib.sha256()
    digest.update(tag)
    try:
        size = os.path.getsize(path)
        digest.update(struct.pack("<q", size))
        with open(path, "rb") as handle:
            if size <= _SAMPLE_BLOCKS * _SAMPLE_BYTES:
                while True:
                    piece = handle.read(1 << 20)
                    if not piece:
                        break
                    digest.update(piece)
            else:
                last = size - _SAMPLE_BYTES
                starts = sorted(
                    {(i * last) // (_SAMPLE_BLOCKS - 1) for i in range(_SAMPLE_BLOCKS)}
                )
                for start in starts:
                    handle.seek(start)
                    digest.update(handle.read(_SAMPLE_BYTES))
    except OSError as exc:
        raise SnapshotWriteError(f"{path}: cannot fingerprint stream: {exc}") from exc
    return digest.digest()


def stream_fingerprint(stream) -> bytes:
    """Content fingerprint of an edge stream, as a 32-byte SHA-256 digest.

    The fingerprint binds a snapshot to its input: a resume against a
    stream with a different digest is refused.  Tapes reuse their own
    :func:`~repro.streams.tape.tape_fingerprint`; text files hash their
    size plus strided byte samples (bounded reads at any size); anything
    else - in-memory streams included - hashes the edge sequence itself.
    Each source kind is domain-tagged so a tape and a text file never
    collide by accident.
    """
    from ..streams.file import FileEdgeStream
    from ..streams.tape import MmapEdgeStream, tape_fingerprint

    if isinstance(stream, MmapEdgeStream):
        digest = hashlib.sha256(b"esnap/tape:")
        digest.update(bytes.fromhex(tape_fingerprint(stream.path)))
        return digest.digest()
    if isinstance(stream, FileEdgeStream):
        return _file_fingerprint(stream.path, b"esnap/text:")
    digest = hashlib.sha256(b"esnap/stream:")
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        np = None
    if np is not None and stream.supports_native_chunks:
        for block in stream.iter_chunks():
            digest.update(np.ascontiguousarray(block, dtype="<i8").tobytes())
    else:
        for u, v in stream:
            digest.update(struct.pack("<qq", u, v))
    return digest.digest()


# ---------------------------------------------------------------------------
# the container


@dataclass(frozen=True)
class Snapshot:
    """One decoded ``.esnap`` file: header fields plus the state payload."""

    version: int
    round_index: int
    config_hash: bytes
    fingerprint: bytes
    payload: Dict[str, object]
    path: Optional[str] = None

    @property
    def config_hash_hex(self) -> str:
        return self.config_hash.hex()

    @property
    def fingerprint_hex(self) -> str:
        return self.fingerprint.hex()


def encode_snapshot(
    payload: Dict[str, object],
    round_index: int,
    config_digest: bytes,
    fingerprint: bytes,
) -> bytes:
    """Serialize one snapshot document to ``.esnap`` container bytes."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    header = _HEADER_STRUCT.pack(
        MAGIC,
        VERSION,
        0,
        round_index,
        len(body),
        zlib.crc32(body),
        config_digest,
        fingerprint,
    )
    return header + body


def decode_snapshot(data: bytes, source: str = "<bytes>") -> Snapshot:
    """Parse and structurally validate ``.esnap`` container bytes.

    Checks, in order: the header is complete, the magic matches, the
    version is supported, the payload length agrees with the data, the
    CRC-32 matches, and the body decodes to a JSON object whose own
    ``round_index`` agrees with the header.  Violations raise
    :class:`~repro.errors.SnapshotFormatError`.
    """
    if len(data) < HEADER_BYTES:
        raise SnapshotFormatError(
            f"{source}: truncated snapshot header ({len(data)} of {HEADER_BYTES} bytes)"
        )
    magic, version, _flags, round_index, length, crc, cfg_digest, fingerprint = (
        _HEADER_STRUCT.unpack(data[:HEADER_BYTES])
    )
    if magic != MAGIC:
        raise SnapshotFormatError(f"{source}: bad magic {magic!r}; not an .esnap snapshot")
    if version != VERSION:
        raise SnapshotFormatError(
            f"{source}: unsupported snapshot version {version} (this build reads {VERSION})"
        )
    body = data[HEADER_BYTES:]
    if length < 0 or len(body) != length:
        raise SnapshotFormatError(
            f"{source}: payload size mismatch - header promises {length} bytes, "
            f"file has {len(body)}"
        )
    if zlib.crc32(body) != crc:
        raise SnapshotFormatError(
            f"{source}: payload checksum mismatch "
            f"(header {crc:#010x}, payload {zlib.crc32(body):#010x})"
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotFormatError(f"{source}: payload is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotFormatError(f"{source}: payload is not a state document")
    if payload.get("round_index") != round_index:
        raise SnapshotFormatError(
            f"{source}: round index disagreement - header says {round_index}, "
            f"payload says {payload.get('round_index')}"
        )
    return Snapshot(
        version=version,
        round_index=round_index,
        config_hash=cfg_digest,
        fingerprint=fingerprint,
        payload=payload,
        path=None if source == "<bytes>" else source,
    )


def read_snapshot(path: Union[str, "os.PathLike[str]"]) -> Snapshot:
    """Read and validate one ``.esnap`` file."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise SnapshotFormatError(f"{path}: cannot read snapshot: {exc}") from exc
    snap = decode_snapshot(data, source=path)
    return Snapshot(
        version=snap.version,
        round_index=snap.round_index,
        config_hash=snap.config_hash,
        fingerprint=snap.fingerprint,
        payload=snap.payload,
        path=path,
    )


def _rotation_files(directory: str) -> List[Tuple[int, str]]:
    """``(round_index, path)`` pairs of the rotation, oldest first."""
    entries: List[Tuple[int, str]] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return entries
    for name in names:
        if not (name.startswith(_NAME_PREFIX) and name.endswith(_NAME_SUFFIX)):
            continue
        middle = name[len(_NAME_PREFIX) : -len(_NAME_SUFFIX)]
        try:
            entries.append((int(middle), os.path.join(directory, name)))
        except ValueError:
            continue
    entries.sort()
    return entries


def load_latest(directory: Union[str, "os.PathLike[str]"]) -> Snapshot:
    """The newest structurally valid snapshot in a checkpoint directory.

    Walks the rotation newest-first, skipping members that fail
    structural validation (a torn write can only damage the newest file,
    but disk corruption is indiscriminate) - the rotation *is* the
    fallback.  Raises :class:`~repro.errors.SnapshotFormatError` when the
    directory holds no snapshot at all or every member is damaged.
    """
    directory = os.fspath(directory)
    entries = _rotation_files(directory)
    if not entries:
        raise SnapshotFormatError(f"{directory}: no .esnap snapshots found")
    last_error: Optional[SnapshotFormatError] = None
    for _, path in reversed(entries):
        try:
            return read_snapshot(path)
        except SnapshotFormatError as exc:
            last_error = exc
    assert last_error is not None
    raise last_error


def load_source(source: Union[str, "os.PathLike[str]", Snapshot]) -> Snapshot:
    """Resolve a resume source: a snapshot file, a checkpoint directory
    (its newest valid member), or an already-decoded :class:`Snapshot`."""
    if isinstance(source, Snapshot):
        return source
    source = os.fspath(source)
    if os.path.isdir(source):
        return load_latest(source)
    return read_snapshot(source)


# ---------------------------------------------------------------------------
# atomic persistence


def atomic_write_bytes(path: Union[str, "os.PathLike[str]"], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically: tmp + fsync + rename.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems), is flushed and fsynced before the
    rename, and the directory entry is fsynced after it - a crash at any
    point leaves either the complete old file or the complete new one.
    Shared by the snapshot writer and the bench suite's history file.
    """
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(data)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def atomic_write_text(path: Union[str, "os.PathLike[str]"], text: str) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


class SnapshotWriter:
    """Round-boundary snapshot persistence with rotation and fault recovery.

    The driver calls :meth:`boundary` after every committed round with the
    freshly built state document; the writer retains the newest document in
    memory, persists per the configured cadence, rotates old files out, and
    on interrupt :meth:`write_final` flushes the retained document so the
    on-disk state is never more than one cadence window stale.

    Persistence failures follow the PR 6 recovery contract: the
    ``snapshot.write`` injection site fires first (deterministic testing),
    transient failures retry under the active
    :class:`~repro.core.faults.RetryPolicy`, and exhausted retries degrade
    ``snapshot->skip`` - the writer disarms itself and the estimate
    continues undisturbed.
    """

    def __init__(
        self,
        directory: Union[str, "os.PathLike[str]"],
        config_digest: bytes,
        fingerprint: bytes,
        every: Optional[int] = None,
        keep: Optional[int] = None,
    ) -> None:
        self._directory = os.fspath(directory)
        self._config_digest = config_digest
        self._fingerprint = fingerprint
        self._every = resolve_snapshot_every(every)
        self._keep = resolve_snapshot_keep(keep)
        self._last_written: Optional[int] = None
        self._retained: Optional[Tuple[int, Dict[str, object]]] = None
        self._disabled = False
        os.makedirs(self._directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def disabled(self) -> bool:
        """Whether the ``snapshot->skip`` ladder step disarmed this writer."""
        return self._disabled

    def path_for(self, round_index: int) -> str:
        return os.path.join(
            self._directory, f"{_NAME_PREFIX}{round_index:06d}{_NAME_SUFFIX}"
        )

    def boundary(self, round_index: int, payload: Dict[str, object]) -> None:
        """Record the state entering ``round_index``; persist per cadence."""
        self._retained = (round_index, payload)
        if self._disabled:
            return
        if self._last_written is not None and (
            round_index - self._last_written < self._every
        ):
            return
        self._persist(round_index, payload)

    def write_final(self) -> None:
        """Flush the retained document (interrupt/shutdown path)."""
        if self._disabled or self._retained is None:
            return
        round_index, payload = self._retained
        if self._last_written is not None and round_index <= self._last_written:
            return
        self._persist(round_index, payload)

    def _persist(self, round_index: int, payload: Dict[str, object]) -> None:
        policy = faults_module.active_policy()
        attempts = 0
        while True:
            try:
                self._write(round_index, payload)
            except Exception as exc:
                if not faults_module.is_transient(exc):
                    raise
                attempts += 1
                if attempts < policy.max_attempts:
                    delay = policy.backoff_delay(attempts)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                faults_module.degrade(
                    faults_module.ACTION_NO_SNAPSHOT,
                    faults_module.site_of(exc),
                    attempts,
                    exc,
                )
                self._disabled = True
                return
            self._last_written = round_index
            self._rotate()
            return

    def _write(self, round_index: int, payload: Dict[str, object]) -> None:
        path = self.path_for(round_index)
        if faults_module.fires(faults_module.SNAPSHOT_WRITE):
            raise SnapshotWriteError(f"{path}: injected fault: snapshot.write")
        data = encode_snapshot(payload, round_index, self._config_digest, self._fingerprint)
        try:
            atomic_write_bytes(path, data)
        except OSError as exc:
            raise SnapshotWriteError(f"{path}: cannot persist snapshot: {exc}") from exc

    def _rotate(self) -> None:
        entries = _rotation_files(self._directory)
        for _, path in entries[: max(0, len(entries) - self._keep)]:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - rotation is best-effort
                pass
