"""The paper's primary contribution: degeneracy-aware triangle estimation.

Layout follows the paper:

* :mod:`~repro.core.params` - the parameter plan ``(r, ell, s)`` and the
  heavy/costly thresholds of Section 5, in both ``theory`` and ``practical``
  constant regimes;
* :mod:`~repro.core.oracle_model` - Section 4: the degree-oracle model and
  Algorithm 1 (``IdealEstimator``);
* :mod:`~repro.core.assignment` - Section 5.1: Algorithm 3
  (``IsAssigned`` / ``Assignment``) as a two-pass streaming procedure;
* :mod:`~repro.core.estimator` - Section 5: Algorithm 2, the six-pass
  estimator;
* :mod:`~repro.core.driver` - the user-facing
  :class:`~repro.core.driver.TriangleCountEstimator`: unknown-``T``
  geometric guessing, median-of-repetitions, diagnostics;
* :mod:`~repro.core.exact_reference` - a store-everything exact one-pass
  counter used as ground truth and as the "no space bound" reference row.

Three execution engines back every pass: the pure-Python reference loops,
the chunked NumPy kernels of :mod:`~repro.core.kernels`, and the sharded
pass executor of :mod:`~repro.core.executor` that fans those kernels
across worker processes - selected per stream by :mod:`~repro.core.engine`
(seed-for-seed identical results; see the engine module for the policy
knobs: mode, chunk size, workers, fused sweeps, round-pair speculation).
Passes are expressed as *stages* (:mod:`~repro.core.stages`) and rounds as
stage *programs* (:mod:`~repro.core.parallel`), which is what lets the
speculative driver (:mod:`~repro.core.speculate`) run two guessing rounds
through shared tape sweeps without perturbing a single bit of the result.
"""

from .engine import engine_mode, engine_overrides, set_engine
from .params import ParameterPlan, PlanConstants
from .oracle_model import DegreeOracle, IdealEstimator, IdealEstimatorResult
from .assignment import ExactAssigner, StreamingAssigner
from .estimator import SinglePassStackResult, run_single_estimate
from .driver import (
    EstimateResult,
    EstimatorConfig,
    ResumeState,
    TriangleCountEstimator,
    resume_from,
)
from .exact_reference import ExactStreamingCounter
from .snapshot import Snapshot, SnapshotWriter, load_latest, read_snapshot

__all__ = [
    "ParameterPlan",
    "PlanConstants",
    "DegreeOracle",
    "IdealEstimator",
    "IdealEstimatorResult",
    "StreamingAssigner",
    "ExactAssigner",
    "run_single_estimate",
    "SinglePassStackResult",
    "TriangleCountEstimator",
    "EstimatorConfig",
    "EstimateResult",
    "ExactStreamingCounter",
    "engine_mode",
    "engine_overrides",
    "set_engine",
    "resume_from",
    "ResumeState",
    "Snapshot",
    "SnapshotWriter",
    "read_snapshot",
    "load_latest",
]
