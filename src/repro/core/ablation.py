"""Ablations of the paper's design choices.

Section 1.2 motivates the assignment rule with the book graph: all
triangles share one edge, so "one cannot estimate T by computing
``sum_{e in R} t_e`` for a small R" - the per-edge triangle counts have
maximal variance.  The ablation here makes that argument measurable:

* :func:`run_single_estimate_third_split` is Algorithm 2 with the
  assignment rule ablated - a discovered triangle is credited ``1/3``
  from whichever edge found it (the natural "no-rule" unbiased estimator,
  the same split the MVV-style baseline uses).  Its estimate remains
  unbiased, but its variance carries ``max_e t_e`` instead of ``tau_max
  = O(kappa)``, which on the book graph is the difference between
  ``Theta(T)`` and ``Theta(1)``.

Benchmark E11 (``benchmarks/bench_ablation.py``) runs both variants on the
book graph (worst case) and the friendship graph (control; every
``t_e = 1``, so the rule should not matter) and reports the empirical
relative variances side by side.

:func:`run_single_estimate_exact_assigner` is the second ablation axis:
Algorithm 2 driven by the ground-truth min-``t_e`` rule, isolating the
sampling error of Algorithm 2 from the estimation error of Algorithm 3.
"""

from __future__ import annotations

import random
from typing import Optional

from ..graph.adjacency import Graph
from ..streams.base import EdgeStream
from ..streams.space import SpaceMeter
from .assignment import ExactAssigner
from .estimator import SinglePassStackResult, run_single_estimate
from .params import ParameterPlan


def run_single_estimate_third_split(
    stream: EdgeStream,
    plan: ParameterPlan,
    rng: random.Random,
    meter: Optional[SpaceMeter] = None,
) -> SinglePassStackResult:
    """Algorithm 2 with the assignment rule ablated (1/3-credit split).

    Identical sampling pipeline (passes 1-4); every discovered triangle
    contributes ``1/3`` regardless of which edge found it, and passes 5-6
    are skipped entirely.  Unbiased (each triangle is reachable from all
    three of its edges), but the variance inherits ``max_e t_e``.
    """

    class _ThirdSplitAssigner:
        """Assigns every triangle to every edge - the no-rule credit."""

        passes_required = 0

        def assign(self, scheduler, triangles):
            # Sentinel mapping: the caller below reinterprets hits.
            return {t: None for t in triangles}

    # Reuse the pipeline but reinterpret the result: a run with the
    # sentinel assigner records wedges_closed (every triangle found),
    # from which the 1/3-split estimate is reconstructed exactly.
    result = run_single_estimate(
        stream,
        plan,
        rng,
        meter=meter,
        assigner_factory=lambda p, r, m: _ThirdSplitAssigner(),
    )
    m = plan.num_edges
    y = (result.wedges_closed / result.ell) / 3.0
    estimate = (m / plan.r) * result.d_r * y
    return SinglePassStackResult(
        estimate=estimate,
        r=result.r,
        ell=result.ell,
        d_r=result.d_r,
        wedges_closed=result.wedges_closed,
        assigned_hits=result.wedges_closed,
        distinct_candidate_triangles=result.distinct_candidate_triangles,
        passes_used=result.passes_used,
        space_words_peak=result.space_words_peak,
        sweeps_used=result.sweeps_used,
    )


def run_single_estimate_exact_assigner(
    stream: EdgeStream,
    plan: ParameterPlan,
    rng: random.Random,
    graph: Graph,
    meter: Optional[SpaceMeter] = None,
) -> SinglePassStackResult:
    """Algorithm 2 driven by the ground-truth min-``t_e`` assignment.

    Isolates Algorithm 2's sampling error from Algorithm 3's estimation
    error; used by the E11 ablation and by unbiasedness tests.
    """
    return run_single_estimate(
        stream,
        plan,
        rng,
        meter=meter,
        assigner_factory=lambda p, r, m: ExactAssigner(graph),
    )
