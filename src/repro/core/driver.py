"""The user-facing estimator: unknown-``T`` search and repetition control.

The paper states its guarantees in terms of the true triangle count ``T``,
leaving the (standard) completion of handling unknown ``T`` implicit.  This
driver supplies it with the geometric guessing loop used throughout the
sublinear-estimation literature (e.g. Eden et al.):

1. start from the Corollary 3.2 upper bound ``T0 = 2 * m * kappa``;
2. run ``repetitions`` independent Algorithm 2 instances sized for the
   current guess and take their median;
3. if the median is at least half the guess, accept it - the guess is then
   within a constant factor of the truth, so the run was adequately
   provisioned; otherwise halve the guess and repeat.

Each halving doubles the sample sizes, so the total space is dominated by
the final, accepted round - i.e. still ``O~(m * kappa / T)``.  A graph with
no triangles walks the guess below 1 and yields estimate 0.
"""

from __future__ import annotations

import dataclasses
import math
import os
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Tuple, Union

from ..errors import (
    EstimationError,
    ParameterError,
    SnapshotFormatError,
    SnapshotMismatchError,
)
from ..rng import decode_state, encode_state, make_rng, spawn
from ..sampling.combine import median
from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from . import engine
from . import faults as faults_module
from . import snapshot as snapshot_module
from .engine import engine_overrides
from .estimator import (
    PASS_BUDGET_PER_ROUND,
    AssignerFactory,
    SinglePassStackResult,
    run_single_estimate,
)
from .faults import FailureReport, RecoveryContext
from .params import ParameterPlan, PlanConstants

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from .stages import TaggedStage


@dataclass(frozen=True)
class EstimatorConfig:
    """Configuration of :class:`TriangleCountEstimator`.

    Attributes
    ----------
    epsilon:
        Target relative accuracy.
    repetitions:
        Independent Algorithm 2 runs per guessing round (median combined);
        odd values make the median a single run's value.
    mode:
        ``"practical"`` (default) or ``"theory"`` parameter constants; see
        :mod:`repro.core.params`.
    constants:
        Optional override of the plan constants.
    seed:
        Root seed; all randomness in the run derives from it.
    t_hint:
        If given, skip the guessing loop and provision directly for this
        triangle-count guess (used by benchmarks to isolate behaviour).
    space_budget_words:
        Optional hard per-run space cap (Section 3's Markov abort).
    max_rounds:
        Optional cap on guessing rounds; default is enough to walk the guess
        from ``2 m kappa`` down below 1.
    share_passes:
        When ``True`` (default), each round's repetitions run *in parallel*
        over six shared passes - the paper's accounting (Theorem 5.1's
        constant passes cover the whole ensemble, and the reported space is
        the ensemble total).  ``False`` runs repetitions sequentially (6
        passes each, per-run space); also the fallback whenever a custom
        ``assigner_factory`` is injected.
    engine_mode:
        Optional execution-engine override for this estimator's runs:
        ``"auto"`` | ``"chunked"`` | ``"python"`` | ``"sharded"`` (see
        :mod:`repro.core.engine`).  ``None`` (default) keeps the global
        policy.  Results are seed-for-seed identical across engines.
    chunk_size:
        Optional edges-per-chunk override for the chunked/sharded engines.
    workers:
        Optional worker-process count for the sharded pass executor
        (``1`` = in-process).  ``None`` keeps the global setting.
    fuse:
        Optional override of the fused sweep engine: each round's closure
        watch (pass 4) and assignment sampling (pass 5) share one physical
        tape sweep (:func:`repro.core.executor.run_plans`).  Estimates are
        seed-for-seed identical with fusing on or off; fusing trades a
        speculative incident buffer (extra space) for strictly fewer
        stream sweeps on rounds that find candidate triangles (a round
        whose wedges all stay open ties - unfused execution skips the
        assignment passes there).  ``None`` keeps the global
        ``REPRO_FUSE`` policy (off by default).
    speculate:
        Optional override of speculative round fusion: the guessing loop
        runs round ``i`` together with up to ``speculate_depth - 1``
        pre-drawn later rounds, each pass-``k`` stage of every live round
        served by one shared tape sweep; the prefix up to the first
        acceptance is committed and everything after it discarded
        (:mod:`repro.core.speculate`).  Estimates, the rounds trajectory,
        and the logical-pass totals are bit-identical either way; a
        ``k``-deep window finishes multi-round estimates in ~``1/k`` of
        the committed sweeps, while an acceptance books the
        speculation-only sweeps as :attr:`EstimateResult.sweeps_wasted`.
        ``None`` keeps the global ``REPRO_SPECULATE`` policy (off by
        default).  Speculation disengages - falling back to the
        sequential loop - whenever a ``t_hint`` (single round), a custom
        ``assigner_factory``, plain ``share_passes=False``, or a
        ``space_budget_words`` cap is in force (a speculative round
        tripping the Markov abort must not fail a run the sequential
        driver would have finished).
    speculate_depth:
        Optional override of the maximum rounds per speculative window
        (``>= 2``; ``2`` reproduces the original round-pair driver
        bit-for-bit).  The driver additionally caps each window's depth
        by the *expected-waste rule*: the previous round's median
        predicts which upcoming guess will accept, and the window never
        speculates past it (a predicted-accepting round runs solo).
        ``None`` keeps the global ``REPRO_SPECULATE_DEPTH`` policy
        (default 2).  An explicit depth implies ``speculate=True`` unless
        ``speculate=False`` is given explicitly - asking for a depth is
        asking to speculate.
    max_retries:
        Optional override of how many times a failed unit of work (a
        sharded task, a round attempt) is retried before the recovery
        ladder degrades a tier (:mod:`repro.core.faults`).  ``0`` disables
        retries but keeps the degradation ladder.  ``None`` keeps the
        ``REPRO_MAX_RETRIES`` policy (default 2).
    task_timeout:
        Optional per-task deadline (seconds) for sharded pool tasks; a
        task overstaying it is presumed hung, its workers are killed, and
        the task is retried on a fresh pool.  ``None`` keeps the
        ``REPRO_TASK_TIMEOUT`` policy (default: wait indefinitely).
    faults:
        Optional deterministic fault-injection plan: a
        :class:`~repro.core.faults.FaultPlan` or a spec string such as
        ``"worker.crash@2;sweep.mid_stage@3"`` (see
        :meth:`~repro.core.faults.FaultPlan.parse`).  ``None`` keeps the
        ``REPRO_FAULTS`` policy (no injection unless the variable is set).
    checkpoint_dir:
        Optional durable-snapshot directory: after each committed
        guessing round the driver atomically writes an ``.esnap``
        snapshot of the full estimator state there
        (:mod:`repro.core.snapshot`), and :func:`resume_from` continues a
        killed run bit-identically from the newest one.  ``None`` keeps
        the ``REPRO_CHECKPOINT_DIR`` policy (no snapshots unless the
        variable is set).  Snapshotting never affects results - runs
        with and without a checkpoint dir are bit-identical.
    snapshot_every:
        Optional snapshot cadence: persist every this-many committed
        rounds (the in-memory state is still refreshed at every
        boundary, so an interrupt flushes at most one cadence window
        late).  ``None`` keeps the ``REPRO_SNAPSHOT_EVERY`` policy
        (default 1 - every round).
    snapshot_keep:
        Optional rotation depth: how many snapshots to retain in the
        checkpoint dir (older ones are deleted after each successful
        write).  ``None`` keeps the ``REPRO_SNAPSHOT_KEEP`` policy
        (default 3).
    """

    epsilon: float = 0.25
    repetitions: int = 5
    mode: str = "practical"
    constants: Optional[PlanConstants] = None
    seed: int = 0
    t_hint: Optional[float] = None
    space_budget_words: Optional[int] = None
    max_rounds: Optional[int] = None
    share_passes: bool = True
    engine_mode: Optional[str] = None
    chunk_size: Optional[int] = None
    workers: Optional[int] = None
    fuse: Optional[bool] = None
    speculate: Optional[bool] = None
    speculate_depth: Optional[int] = None
    max_retries: Optional[int] = None
    task_timeout: Optional[float] = None
    faults: "str | object | None" = None
    checkpoint_dir: Optional[str] = None
    snapshot_every: Optional[int] = None
    snapshot_keep: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 < self.epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.repetitions < 1:
            raise ParameterError(f"repetitions must be >= 1, got {self.repetitions}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.workers is not None and self.workers < 1:
            raise ParameterError(f"workers must be >= 1, got {self.workers}")
        engine._check_depth(self.speculate_depth)  # one validator, one message
        if self.engine_mode is not None and self.engine_mode not in engine._MODES:
            raise ParameterError(
                f"engine_mode must be one of {engine._MODES}, got {self.engine_mode!r}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise ParameterError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ParameterError(f"task_timeout must be positive, got {self.task_timeout}")
        if self.faults is not None and not isinstance(self.faults, faults_module.FaultPlan):
            faults_module.FaultPlan.parse(str(self.faults))  # validate eagerly
        if self.snapshot_every is not None and self.snapshot_every < 1:
            raise ParameterError(f"snapshot_every must be >= 1, got {self.snapshot_every}")
        if self.snapshot_keep is not None and self.snapshot_keep < 1:
            raise ParameterError(f"snapshot_keep must be >= 1, got {self.snapshot_keep}")


@dataclass(frozen=True)
class GuessRound:
    """Record of one guessing round: the guess, every run, and the median."""

    t_guess: float
    runs: List[SinglePassStackResult]
    median_estimate: float
    accepted: bool


@dataclass(frozen=True)
class ResumeState:
    """Decoded snapshot state: everything the guessing loop carries across
    a round boundary (see :mod:`repro.core.snapshot`).

    ``round_index`` is the next round to run; ``rounds`` are the committed
    ones; the accounting fields restore the result totals; ``rng_state``
    is the root generator's ``getstate()`` at the boundary and
    ``rng_stack`` the (normally empty between rounds) speculative
    checkpoint stack; ``degradations`` are the recovery ladder's recorded
    reports up to the snapshot.
    """

    round_index: int
    rounds: List[GuessRound]
    space_words_peak: int
    passes_total: int
    sweeps_total: int
    sweeps_wasted: int
    passes_wasted: int
    rng_state: tuple
    rng_stack: Tuple[tuple, ...]
    degradations: Tuple[FailureReport, ...]


@dataclass(frozen=True)
class EstimateResult:
    """Full outcome of a :meth:`TriangleCountEstimator.estimate` call.

    ``estimate`` is the final triangle-count estimate.  ``rounds`` records
    the guessing trajectory.  ``space_words_peak`` is the largest space used
    by any single run (the model's per-instance space); ``passes_total``
    sums passes over all runs and rounds (each run alone stays within the
    constant six-pass budget - the total reflects the driver's repetition
    and search factors, both ``O(log)``).  ``sweeps_total`` sums the
    *physical tape sweeps* serving the committed rounds - equal to
    ``passes_total`` unfused, strictly smaller when the fused sweep engine
    grouped passes within a round or the speculative driver fused round
    windows.  ``sweeps_wasted`` counts the additional physical sweeps
    that served *only* discarded speculation (pre-drawn rounds thrown
    away because an earlier round of their window accepted): the tape
    traversals actually performed are ``sweeps_total + sweeps_wasted``,
    and ``sweeps_wasted`` is always 0 under the sequential driver.
    ``passes_wasted`` likewise counts the discarded rounds' logical
    passes - the speculative work executed inside shared sweeps and then
    thrown away.  An accepted round's speculative partners always overlap
    it stage for stage (a round that finishes early found no candidates
    and cannot accept), so discards typically show ``passes_wasted > 0``
    with ``sweeps_wasted == 0``: speculation wastes in-sweep compute, not
    extra tape traversals.  ``degradations`` lists every tier the recovery
    ladder dropped while producing this result (empty on a clean run):
    each :class:`~repro.core.faults.FailureReport` names the fault site,
    the action taken, the attempts spent, and the triggering cause.
    """

    estimate: float
    rounds: List[GuessRound]
    space_words_peak: int
    passes_total: int
    final_plan: Optional[ParameterPlan]
    sweeps_total: int = 0
    sweeps_wasted: int = 0
    passes_wasted: int = 0
    degradations: Tuple[FailureReport, ...] = ()

    @property
    def accepted_round(self) -> Optional[GuessRound]:
        """The round that produced the final estimate, if any was accepted."""
        for r in self.rounds:
            if r.accepted:
                return r
        return None


class TriangleCountEstimator:
    """Constant-pass streaming ``(1 +- eps)`` triangle counting (Theorem 1.2).

    Example
    -------
    >>> from repro.generators import wheel_graph
    >>> from repro.streams import InMemoryEdgeStream
    >>> graph = wheel_graph(100)
    >>> stream = InMemoryEdgeStream.from_graph(graph)
    >>> estimator = TriangleCountEstimator(EstimatorConfig(seed=7))
    >>> result = estimator.estimate(stream, kappa=3)
    >>> abs(result.estimate - 99) / 99 < 0.5
    True
    """

    def __init__(self, config: Optional[EstimatorConfig] = None) -> None:
        self._config = config if config is not None else EstimatorConfig()

    @property
    def config(self) -> EstimatorConfig:
        """The configuration in force."""
        return self._config

    def estimate(
        self,
        stream: EdgeStream,
        kappa: int,
        assigner_factory: Optional[AssignerFactory] = None,
        _resume: Optional[ResumeState] = None,
    ) -> EstimateResult:
        """Estimate the triangle count of ``stream``.

        Parameters
        ----------
        stream:
            The input edge stream.
        kappa:
            An upper bound on the graph's degeneracy.  The paper's model
            takes this as a promise on the input class; Theorem 1.2's bound
            degrades gracefully if the supplied value over-estimates the
            true degeneracy (space grows linearly in the bound).
        assigner_factory:
            Optional override of the ``IsAssigned`` implementation.
        _resume:
            Internal: restored snapshot state (use :func:`resume_from`).
        """
        cfg = self._config
        # Engine selection travels with the config: every pass of every
        # round runs under the requested mode / chunk size / worker count
        # (results are seed-for-seed identical across all of them).  An
        # explicit speculate_depth with speculate unset implies
        # speculation - the implication lives in engine._apply, so it
        # holds identically for config, harness, CLI, and direct
        # set_engine/engine_overrides callers.
        with engine_overrides(
            cfg.engine_mode,
            cfg.chunk_size,
            cfg.workers,
            cfg.fuse,
            cfg.speculate,
            cfg.speculate_depth,
        ):
            # The recovery scope installs the retry policy, arms the fault
            # plan, and collects FailureReports; on exit it unwinds any
            # shm/prefetch tiers the ladder dropped (the serial tier is
            # unwound by engine_overrides above).
            with faults_module.recovery_scope(
                policy=faults_module.policy_from_env(cfg.max_retries, cfg.task_timeout),
                plan=cfg.faults,
            ) as recovery:
                return self._estimate(stream, kappa, assigner_factory, recovery, _resume)

    def _estimate(
        self,
        stream: EdgeStream,
        kappa: int,
        assigner_factory: Optional[AssignerFactory],
        recovery: RecoveryContext,
        resume: Optional[ResumeState] = None,
    ) -> EstimateResult:
        cfg = self._config
        if kappa < 1:
            raise ParameterError(f"kappa must be >= 1, got {kappa}")

        def recovering(read):
            """Run a pre-round stream read under the retry/degrade policy.

            The statistics sweep happens before any round - no RNG to
            rewind, no pass accounting to book - so recovery is a plain
            retry loop: transient failures retry with backoff, and on
            exhaustion the tiers a serial in-process read stands on (the
            prefetch thread for text streams, the mapping for mmap tapes
            with a text twin) are dropped before propagating.
            """
            from ..streams import file as file_module
            from ..streams import tape as tape_module
            from ..streams.file import FileEdgeStream
            from ..streams.tape import MmapEdgeStream

            attempts = 0
            while True:
                try:
                    return read()
                except Exception as exc:
                    if not faults_module.is_transient(exc):
                        raise
                    attempts += 1
                    if attempts < recovery.policy.max_attempts:
                        delay = recovery.policy.backoff_delay(attempts)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    if isinstance(stream, FileEdgeStream) and file_module.prefetch_enabled():
                        faults_module.degrade(
                            faults_module.ACTION_SYNC_READS,
                            faults_module.site_of(exc),
                            attempts,
                            exc,
                        )
                        attempts = 0
                        continue
                    if (
                        isinstance(stream, MmapEdgeStream)
                        and stream.has_text_twin
                        and tape_module.mmap_enabled()
                    ):
                        faults_module.degrade(
                            faults_module.ACTION_TEXT,
                            faults_module.site_of(exc),
                            attempts,
                            exc,
                        )
                        attempts = 0
                        continue
                    raise

        m = recovering(lambda: len(stream))
        if m == 0:
            return EstimateResult(
                estimate=0.0,
                rounds=[],
                space_words_peak=0,
                passes_total=0,
                final_plan=None,
                sweeps_total=0,
                degradations=tuple(recovery.reports),
            )
        # The model assumes n is known a priori (Table 1 notes this is the
        # standard assumption); one statistics pass recovers an upper bound.
        n = recovering(lambda: stream.stats().num_vertices_upper)
        root = make_rng(cfg.seed)

        guesses = _guess_schedule(cfg, 2.0 * m * kappa)  # Corollary 3.2 upper bound

        rounds: List[GuessRound] = []
        space_peak = 0
        passes_total = 0
        sweeps_total = 0
        sweeps_wasted = 0
        passes_wasted = 0
        final_plan: Optional[ParameterPlan] = None
        estimate = 0.0

        def build_plan(t_guess: float) -> ParameterPlan:
            return ParameterPlan.build(
                num_vertices=n,
                num_edges=m,
                kappa=kappa,
                t_guess=t_guess,
                epsilon=cfg.epsilon,
                mode=cfg.mode,
                constants=cfg.constants,
            )

        def spawn_round(round_index: int) -> List[random.Random]:
            return [
                spawn(root, f"round{round_index}/rep{rep}")
                for rep in range(cfg.repetitions)
            ]

        def result(final_estimate: float) -> EstimateResult:
            return EstimateResult(
                estimate=final_estimate,
                rounds=rounds,
                space_words_peak=space_peak,
                passes_total=passes_total,
                final_plan=final_plan,
                sweeps_total=sweeps_total,
                sweeps_wasted=sweeps_wasted,
                passes_wasted=passes_wasted,
                degradations=tuple(recovery.reports),
            )

        def record_round(
            t_guess: float, runs: List[SinglePassStackResult], plan: ParameterPlan
        ) -> Tuple[float, bool]:
            """Append one committed round and apply the acceptance rule."""
            nonlocal final_plan, estimate
            med = median([run.estimate for run in runs])
            accepted = cfg.t_hint is not None or med >= t_guess / 2.0
            rounds.append(
                GuessRound(
                    t_guess=t_guess, runs=runs, median_estimate=med, accepted=accepted
                )
            )
            final_plan = plan
            estimate = med
            return med, accepted

        share = cfg.share_passes and assigner_factory is None
        # Speculative round fusion preserves the sequential loop's
        # semantics only where the sequential loop actually has rounds to
        # fuse and no per-run abort can fire mid-window; everywhere else
        # it disengages.
        speculative = (
            engine.speculate()
            and share
            and cfg.t_hint is None
            and cfg.space_budget_words is None
        )

        def window_depth(round_index: int) -> int:
            return _pick_window_depth(
                guesses,
                round_index,
                engine.speculate_depth(),
                rounds[-1].median_estimate if rounds else None,
            )

        def attempt_window(
            round_index: int, depth: int, sched_cell: List[PassScheduler]
        ) -> Tuple[str, int | float]:
            """One speculative-window attempt over rounds ``round_index..+depth-1``."""
            nonlocal space_peak, passes_total, sweeps_total, sweeps_wasted, passes_wasted
            from .speculate import PASSES_PER_ROUND, run_speculative_window

            window_guesses = guesses[round_index : round_index + depth]
            plans = [build_plan(g) for g in window_guesses]
            rng_lists = [spawn_round(round_index)]
            # Checkpoint the root generator before each speculative
            # round's spawns: if an earlier round accepts, the
            # sequential driver would never have drawn the later
            # rounds' generators, and rewinding to the checkpoint of
            # the first discarded round keeps the root's consumption
            # bit-identical to the sequential trajectory.
            checkpoints = []
            for j in range(1, depth):
                checkpoints.append(root.getstate())
                rng_lists.append(spawn_round(round_index + j))
            meters = [SpaceMeter() for _ in range(depth)]
            # The scheduler is built here rather than inside the window so
            # that a failed attempt's sweep counters stay readable for the
            # retry loop's wasted-work bookkeeping.
            scheduler = PassScheduler(stream, max_passes=PASSES_PER_ROUND * depth)
            sched_cell.append(scheduler)
            try:
                window = run_speculative_window(
                    stream, plans, rng_lists, meters, scheduler=scheduler
                )
            except BaseException:
                # A failed shared sweep aborts the whole window; the
                # speculative rounds' RNG consumption must not leak
                # into the root generator's state (callers observing
                # the root - or retrying against it - would diverge
                # from the sequential trajectory).
                root.setstate(checkpoints[0])
                raise
            # Walk the window in sequential order: commit every round
            # up to (and including) the first acceptance.
            committed = 0
            accepted = False
            med = 0.0
            for j in range(depth):
                space_peak = max(space_peak, meters[j].peak_words)
                passes_total += window.results[j][0].passes_used
                med, accepted = record_round(
                    window_guesses[j], window.results[j], plans[j]
                )
                committed += 1
                if accepted:
                    break
            try:
                if committed < depth:
                    # The suffix is work the sequential driver would
                    # never have run: drop its results and meters,
                    # rewind the root RNG past its spawns, and book
                    # the sweeps that served only it as wasted.
                    window.discard_from(committed)
                    root.setstate(checkpoints[committed - 1])
                    for j in range(committed, depth):
                        passes_wasted += window.results[j][0].passes_used
            finally:
                sweeps_total += window.sweeps_committed
                sweeps_wasted += window.sweeps_wasted
            return ("accepted", med) if accepted else ("advance", depth)

        def attempt_sequential(
            round_index: int, t_guess: float, sched_cell: List[PassScheduler]
        ) -> Tuple[str, int | float]:
            """One sequential round attempt (shared passes or per-rep runs)."""
            nonlocal space_peak, passes_total, sweeps_total
            plan = build_plan(t_guess)
            runs: List[SinglePassStackResult] = []
            if share:
                # The paper's accounting: all repetitions in parallel over
                # six shared passes; space is the ensemble total.
                from .parallel import run_parallel_estimates

                rngs = spawn_round(round_index)
                meter = SpaceMeter(budget_words=cfg.space_budget_words)
                scheduler = PassScheduler(stream, max_passes=PASS_BUDGET_PER_ROUND)
                sched_cell.append(scheduler)
                runs = run_parallel_estimates(
                    stream, plan, rngs, meter=meter, scheduler=scheduler
                )
                space_peak = max(space_peak, meter.peak_words)
                passes_total += runs[0].passes_used if runs else 0
                sweeps_total += runs[0].sweeps_used if runs else 0
            else:
                # Commit the bookkeeping only once *all* repetitions have
                # succeeded: a retry of this round must not double-count
                # the reps that completed before the failure.
                for rep in range(cfg.repetitions):
                    rng = spawn(root, f"round{round_index}/rep{rep}")
                    meter = SpaceMeter(budget_words=cfg.space_budget_words)
                    runs.append(
                        run_single_estimate(
                            stream,
                            plan,
                            rng,
                            meter=meter,
                            assigner_factory=assigner_factory,
                        )
                    )
                for run in runs:
                    space_peak = max(space_peak, run.space_words_peak)
                    passes_total += run.passes_used
                    sweeps_total += run.sweeps_used
            med, accepted = record_round(t_guess, runs, plan)
            return ("accepted", med) if accepted else ("advance", 1)

        def pick_step(exc: BaseException, depth: int) -> Optional[str]:
            """The degradation ladder: which tier to drop for this failure.

            Prefers the step matching the failure's classified site, then
            falls through the ladder in order; ``None`` when no applicable
            tier is left to drop (the failure then propagates).
            """
            from ..streams import file as file_module
            from ..streams import shm
            from ..streams import tape as tape_module
            from ..streams.file import FileEdgeStream
            from ..streams.tape import MmapEdgeStream

            mmap_tier = (
                isinstance(stream, MmapEdgeStream)
                and stream.has_text_twin
                and tape_module.mmap_enabled()
            )
            applicable: List[str] = []
            if engine.effective_workers() > 1 and not recovery.serial_degraded:
                applicable.append(faults_module.ACTION_SERIAL)
            if engine.effective_workers() > 1 and shm.shm_enabled():
                applicable.append(faults_module.ACTION_PICKLE)
            if isinstance(stream, FileEdgeStream) and file_module.prefetch_enabled():
                applicable.append(faults_module.ACTION_SYNC_READS)
            if mmap_tier:
                applicable.append(faults_module.ACTION_TEXT)
            if depth >= 2 and not recovery.speculation_degraded:
                applicable.append(faults_module.ACTION_SEQUENTIAL)
            if not applicable:
                return None
            preferred = {
                faults_module.WORKER_CRASH: faults_module.ACTION_SERIAL,
                faults_module.TASK_TIMEOUT: faults_module.ACTION_SERIAL,
                faults_module.SHM_ATTACH: faults_module.ACTION_PICKLE,
                faults_module.FILE_READ: (
                    faults_module.ACTION_TEXT
                    if mmap_tier
                    else faults_module.ACTION_SYNC_READS
                ),
            }.get(faults_module.site_of(exc))
            return preferred if preferred in applicable else applicable[0]

        def run_round(round_index: int, t_guess: float) -> Tuple[str, int | float]:
            """Run one guessing step to completion, retrying and degrading.

            Returns ``("accepted", median)`` or ``("advance", k)`` with
            ``k`` the number of rounds the step committed.  Every failed
            attempt rewinds the root generator to the state it had before
            the attempt's spawns, so a retry re-draws bit-identical
            per-rep generators and the committed trajectory never depends
            on how many attempts the round took.
            """
            nonlocal sweeps_wasted, passes_wasted
            base_state = root.getstate()
            attempts = 0
            while True:
                depth = (
                    window_depth(round_index)
                    if speculative and not recovery.speculation_degraded
                    else 1
                )
                sched_cell: List[PassScheduler] = []
                try:
                    if depth >= 2:
                        return attempt_window(round_index, depth, sched_cell)
                    return attempt_sequential(round_index, t_guess, sched_cell)
                except Exception as exc:
                    if not faults_module.is_transient(exc):
                        raise
                    attempts += 1
                    if sched_cell:
                        # The aborted attempt's physical sweeps are real
                        # traversals lost to the failure - booked as
                        # wasted, never as committed work.
                        sweeps_wasted += sched_cell[0].sweeps_used
                        passes_wasted += sched_cell[0].passes_used
                    if attempts < recovery.policy.max_attempts:
                        root.setstate(base_state)
                        delay = recovery.policy.backoff_delay(attempts)
                        if delay > 0:
                            time.sleep(delay)
                        continue
                    step = pick_step(exc, depth)
                    if step is None:
                        # No tier left to drop: propagate without touching
                        # the root state (a window attempt has already
                        # rewound its own speculative spawns).
                        raise
                    faults_module.degrade(
                        step, faults_module.site_of(exc), attempts, exc
                    )
                    attempts = 0
                    root.setstate(base_state)

        round_index = 0
        if resume is not None:
            # Restore the loop state the snapshot captured: the committed
            # trajectory, the accounting totals, the recovery reports, and
            # - the linchpin of bit-identity - the root generator's exact
            # state at the boundary.  The guesses list is recomputed above
            # from (m, kappa, config), which the snapshot's config hash
            # and stream fingerprint have already pinned.
            rounds.extend(resume.rounds)
            space_peak = resume.space_words_peak
            passes_total = resume.passes_total
            sweeps_total = resume.sweeps_total
            sweeps_wasted = resume.sweeps_wasted
            passes_wasted = resume.passes_wasted
            if rounds:
                estimate = rounds[-1].median_estimate
                final_plan = build_plan(rounds[-1].t_guess)
            root.setstate(resume.rng_state)
            recovery.reports.extend(resume.degradations)
            round_index = resume.round_index

        writer: Optional[snapshot_module.SnapshotWriter] = None
        checkpoint_dir = snapshot_module.resolve_checkpoint_dir(cfg.checkpoint_dir)
        if checkpoint_dir is not None:
            writer = snapshot_module.SnapshotWriter(
                checkpoint_dir,
                config_digest=snapshot_module.config_hash(_config_state(cfg), kappa),
                fingerprint=snapshot_module.stream_fingerprint(stream),
                every=cfg.snapshot_every,
                keep=cfg.snapshot_keep,
            )

        def boundary_payload(next_round: int) -> Dict[str, object]:
            """The full estimator state entering round ``next_round``."""
            return {
                "kappa": kappa,
                "config": _config_state(cfg),
                "round_index": next_round,
                "rounds": [_round_state(r) for r in rounds],
                "accounting": {
                    "space_words_peak": space_peak,
                    "passes_total": passes_total,
                    "sweeps_total": sweeps_total,
                    "sweeps_wasted": sweeps_wasted,
                    "passes_wasted": passes_wasted,
                },
                # Between rounds the speculative checkpoint stack is always
                # empty (windows rewind or commit before the boundary); the
                # format still carries it for the dynamic-stream roadmap.
                "rng": {"state": encode_state(root.getstate()), "stack": []},
                "degradations": [dataclasses.asdict(rep) for rep in recovery.reports],
                # Round-boundary state holds no live reservoirs (each round
                # rebuilds its own); the slot is the extension point for
                # mid-pass checkpoints (see sampling.reservoir.state_dict).
                "reservoirs": {},
            }

        try:
            if writer is not None:
                writer.boundary(round_index, boundary_payload(round_index))
            while round_index < len(guesses):
                t_guess = guesses[round_index]
                if t_guess < 1.0 and cfg.t_hint is None:
                    break  # fewer than one triangle remains plausible: answer 0
                verdict, value = run_round(round_index, t_guess)
                if verdict == "accepted":
                    return result(float(value))
                round_index += int(value)
                if writer is not None:
                    writer.boundary(round_index, boundary_payload(round_index))
        except (KeyboardInterrupt, SystemExit):
            # Process shutdown mid-round: the root generator may be
            # mid-window, so the durable state is the *retained boundary*
            # document, not the live locals - flush it and re-raise.
            if writer is not None:
                writer.write_final()
            raise

        if cfg.t_hint is not None:  # pragma: no cover - hint rounds always accept
            raise EstimationError("hinted round did not record a result")
        # All guesses rejected: consistent with a (near-)triangle-free graph.
        return result(0.0 if estimate < 1.0 else estimate)


# ---------------------------------------------------------------------------
# the guessing loop as pure schedule helpers and as a stage program


def _guess_schedule(cfg: EstimatorConfig, upper: float) -> List[float]:
    """The geometric guess sequence the loop will walk (or the single hint).

    Shared by the in-process driver and :func:`estimate_program` so the
    two can never disagree on the trajectory.
    """
    if cfg.t_hint is not None:
        if cfg.t_hint <= 0:
            raise ParameterError(f"t_hint must be positive, got {cfg.t_hint}")
        return [float(cfg.t_hint)]
    max_rounds = cfg.max_rounds
    if max_rounds is None:
        max_rounds = max(1, math.ceil(math.log2(upper)) + 2)
    return [upper / (2.0 ** k) for k in range(max_rounds)]


def _pick_window_depth(
    guesses: List[float],
    round_index: int,
    max_depth: int,
    last_median: Optional[float],
) -> int:
    """How many rounds the next speculative window should fuse.

    Bounded by the configured depth and by the guesses the sequential
    loop could still run (``t_guess >= 1``), then capped by the
    *expected-waste rule*: acceptance is predictable from committed data
    alone - medians are roughly stable round to round while guesses
    halve, so the first upcoming guess whose bar the previous round's
    median already clears is where the loop is expected to terminate.
    Rounds past it would be pre-drawn only to be discarded, so the
    window never speculates beyond it (and a predicted-accepting
    *current* round runs solo).  The committed rounds are identical at
    any depth; only the sweep-sharing layout changes, so bit-identity is
    unaffected.
    """
    depth = 1
    while (
        depth < max_depth
        and round_index + depth < len(guesses)
        and guesses[round_index + depth] >= 1.0
    ):
        depth += 1
    if last_median is not None:
        for offset in range(depth):
            if last_median >= guesses[round_index + offset] / 2.0:
                return offset + 1
    return depth


@dataclass(frozen=True)
class ProgramOutcome:
    """What :func:`estimate_program` returns when it runs to completion.

    ``result`` reproduces the solo driver's :class:`EstimateResult` for
    the same seed and config - including the sweep accounting, which the
    program books against *private* ledgers so the numbers match a solo
    run even when its stages physically rode sweeps shared with other
    jobs.  ``root_state`` is the root generator's final ``getstate()``
    (the bit-identity witness the parity tests compare).
    ``discarded_owners`` lists the owner tags of discarded speculation;
    an entity driving many programs on one shared scheduler applies them
    via ``discard_owner`` so the *physical* committed/wasted split stays
    truthful too.
    """

    result: EstimateResult
    root_state: tuple
    discarded_owners: Tuple[str, ...] = ()


def estimate_program(
    stream: EdgeStream,
    kappa: int,
    config: Optional[EstimatorConfig] = None,
    owner_prefix: str = "",
) -> "Generator[List[TaggedStage], None, ProgramOutcome]":
    """The whole guessing loop as a stage program: yields, never sweeps.

    The generator inversion of :meth:`TriangleCountEstimator.estimate`'s
    clean path: it yields each pending batch of owner-tagged stages (one
    batch per tape sweep the solo driver would perform) and leaves the
    *execution* of those sweeps to whoever drives it -
    :func:`run_estimate_program` with a private scheduler, or the serving
    layer's per-tape scheduler, which merges batches from many live
    programs into shared traversals.  Stage owners are tagged
    ``f"{owner_prefix}w{window}.{round_tag}"``, so on a shared scheduler
    ``owner_report(owner_prefix)`` recovers this job's slice and each
    discard names one window's round unambiguously.

    Bit-identity contract: for the same ``(stream, kappa, config)``, the
    returned :class:`ProgramOutcome` carries an estimate, rounds
    trajectory, ``passes_total``, sweep accounting, and final root-RNG
    state identical to a clean solo
    :meth:`~TriangleCountEstimator.estimate` run under the same ambient
    engine policy - regardless of what else rode the physical sweeps.

    Restrictions: ``share_passes`` must be on (the default) and
    ``space_budget_words`` must be unset - a per-run Markov abort fires
    mid-sweep, and on a shared traversal that would fail jobs the solo
    driver would have finished.  The retry/degradation ladder and
    snapshot writing stay with the solo driver; a failed sweep simply
    propagates to (and through) the driving entity, which must ``close()``
    the generator so round programs clean up.
    """
    cfg = config if config is not None else EstimatorConfig()
    if kappa < 1:
        raise ParameterError(f"kappa must be >= 1, got {kappa}")
    if not cfg.share_passes:
        raise ParameterError("estimate_program requires share_passes=True")
    if cfg.space_budget_words is not None:
        raise ParameterError(
            "estimate_program does not support space_budget_words: a Markov "
            "abort inside a shared sweep would fail co-riding jobs"
        )
    from ..streams.multipass import OwnerLedger
    from .speculate import _owner_tags, window_program

    m = len(stream)
    root = make_rng(cfg.seed)
    if m == 0:
        return ProgramOutcome(
            result=EstimateResult(
                estimate=0.0,
                rounds=[],
                space_words_peak=0,
                passes_total=0,
                final_plan=None,
                sweeps_total=0,
            ),
            root_state=root.getstate(),
        )
    n = stream.stats().num_vertices_upper
    chunked = engine.use_chunks(stream)
    guesses = _guess_schedule(cfg, 2.0 * m * kappa)

    rounds: List[GuessRound] = []
    space_peak = 0
    passes_total = 0
    sweeps_total = 0
    sweeps_wasted = 0
    passes_wasted = 0
    final_plan: Optional[ParameterPlan] = None
    estimate = 0.0
    discarded: List[str] = []

    def build_plan(t_guess: float) -> ParameterPlan:
        return ParameterPlan.build(
            num_vertices=n,
            num_edges=m,
            kappa=kappa,
            t_guess=t_guess,
            epsilon=cfg.epsilon,
            mode=cfg.mode,
            constants=cfg.constants,
        )

    def spawn_round(round_index: int) -> List[random.Random]:
        return [
            spawn(root, f"round{round_index}/rep{rep}")
            for rep in range(cfg.repetitions)
        ]

    speculative = engine.speculate() and cfg.t_hint is None
    round_index = 0
    window_seq = 0
    accepted = False
    while round_index < len(guesses):
        t_guess = guesses[round_index]
        if t_guess < 1.0 and cfg.t_hint is None:
            break  # fewer than one triangle remains plausible: answer 0
        depth = (
            _pick_window_depth(
                guesses,
                round_index,
                engine.speculate_depth(),
                rounds[-1].median_estimate if rounds else None,
            )
            if speculative
            else 1
        )
        window_guesses = guesses[round_index : round_index + depth]
        plans = [build_plan(g) for g in window_guesses]
        rng_lists = [spawn_round(round_index)]
        # Checkpoint the root generator before each speculative round's
        # spawns, exactly as the solo driver's window does: an acceptance
        # rewinds past the discarded rounds' draws (see attempt_window).
        checkpoints = []
        for j in range(1, depth):
            checkpoints.append(root.getstate())
            rng_lists.append(spawn_round(round_index + j))
        meters = [SpaceMeter() for _ in range(depth)]
        owners = [
            f"{owner_prefix}w{window_seq}.{tag}" for tag in _owner_tags(depth)
        ]
        window_seq += 1
        # A private ledger mirrors the solo scheduler's sweep accounting:
        # one entry per yielded batch (= one solo sweep), so the result's
        # sweep totals match a solo run no matter how the driving entity
        # physically served the batches.
        ledger = OwnerLedger()
        program = window_program(m, plans, rng_lists, meters, chunked, owners)
        try:
            try:
                batch = next(program)
                while True:
                    ledger.record([owner for owner, _ in batch])
                    yield batch
                    batch = program.send(None)
            except StopIteration as stop:
                window_results = stop.value
        except BaseException:
            if checkpoints:
                root.setstate(checkpoints[0])
            raise
        finally:
            program.close()
        # Walk the window in sequential order: commit every round up to
        # (and including) the first acceptance, discard the rest.
        committed = 0
        med = 0.0
        for j in range(depth):
            space_peak = max(space_peak, meters[j].peak_words)
            passes_total += window_results[j][0].passes_used
            med = median([run.estimate for run in window_results[j]])
            accepted = cfg.t_hint is not None or med >= window_guesses[j] / 2.0
            rounds.append(
                GuessRound(
                    t_guess=window_guesses[j],
                    runs=window_results[j],
                    median_estimate=med,
                    accepted=accepted,
                )
            )
            final_plan = plans[j]
            estimate = med
            committed += 1
            if accepted:
                break
        if committed < depth:
            for owner in owners[committed:]:
                ledger.discard(owner)
                discarded.append(owner)
            root.setstate(checkpoints[committed - 1])
            for j in range(committed, depth):
                passes_wasted += window_results[j][0].passes_used
        sweeps_total += ledger.sweeps_committed
        sweeps_wasted += ledger.sweeps_wasted
        if accepted:
            break
        round_index += depth
    if not accepted and estimate < 1.0:
        # All guesses rejected: consistent with a (near-)triangle-free graph.
        estimate = 0.0
    return ProgramOutcome(
        result=EstimateResult(
            estimate=float(estimate),
            rounds=rounds,
            space_words_peak=space_peak,
            passes_total=passes_total,
            final_plan=final_plan,
            sweeps_total=sweeps_total,
            sweeps_wasted=sweeps_wasted,
            passes_wasted=passes_wasted,
        ),
        root_state=root.getstate(),
        discarded_owners=tuple(discarded),
    )


def run_estimate_program(
    stream: EdgeStream,
    kappa: int,
    config: Optional[EstimatorConfig] = None,
    scheduler: Optional[PassScheduler] = None,
) -> ProgramOutcome:
    """Drive :func:`estimate_program` to completion on its own sweeps.

    The reference solo harness for the program path (and the parity
    baseline the serving tests compare against): each yielded batch runs
    as a private fused sweep on ``scheduler`` (a fresh unbudgeted one by
    default), and discarded speculation is booked on it so its physical
    committed/wasted split agrees with the returned result.
    """
    from .stages import sweep_tagged_stages

    if scheduler is None:
        scheduler = PassScheduler(stream)
    program = estimate_program(stream, kappa, config)
    try:
        batch = next(program)
        while True:
            sweep_tagged_stages(scheduler, batch)
            batch = program.send(None)
    except StopIteration as stop:
        outcome = stop.value
    finally:
        program.close()
    for owner in outcome.discarded_owners:
        scheduler.discard_owner(owner)
    return outcome


# ---------------------------------------------------------------------------
# snapshot serialization and resume


def _config_state(cfg: EstimatorConfig) -> Dict[str, object]:
    """The config as a JSON document, for snapshot payloads.

    ``faults`` is deliberately dropped: an injection plan is a testing
    aid whose scheduled indices were (partly) consumed by the run that
    wrote the snapshot - replaying it on resume would fire faults the
    uninterrupted run never saw.
    """
    state = {
        f.name: getattr(cfg, f.name)
        for f in dataclasses.fields(EstimatorConfig)
        if f.name != "faults"
    }
    constants = state["constants"]
    if constants is not None:
        state["constants"] = [constants.c_r, constants.c_ell, constants.c_s]
    return state


def _config_from_state(state: Dict[str, object]) -> EstimatorConfig:
    """Rebuild an :class:`EstimatorConfig` from a snapshot's document."""
    known = {f.name for f in dataclasses.fields(EstimatorConfig)}
    kwargs = {key: value for key, value in state.items() if key in known}
    constants = kwargs.get("constants")
    if constants is not None:
        kwargs["constants"] = PlanConstants(*constants)
    try:
        return EstimatorConfig(**kwargs)
    except (TypeError, ParameterError) as exc:
        raise SnapshotFormatError(f"snapshot config does not reconstruct: {exc}") from exc


def _round_state(round_: GuessRound) -> Dict[str, object]:
    return {
        "t_guess": round_.t_guess,
        "median_estimate": round_.median_estimate,
        "accepted": round_.accepted,
        "runs": [run.to_state() for run in round_.runs],
    }


def _round_from_state(state: Dict[str, object]) -> GuessRound:
    return GuessRound(
        t_guess=float(state["t_guess"]),
        runs=[SinglePassStackResult.from_state(s) for s in state["runs"]],
        median_estimate=float(state["median_estimate"]),
        accepted=bool(state["accepted"]),
    )


def _resume_state(payload: Dict[str, object]) -> ResumeState:
    """Decode a snapshot payload into loop state; malformed documents that
    passed the CRC (a writer bug, not disk damage) still raise the typed
    :class:`~repro.errors.SnapshotFormatError`."""
    try:
        accounting = payload.get("accounting", {})
        rng = payload["rng"]
        return ResumeState(
            round_index=int(payload["round_index"]),
            rounds=[_round_from_state(s) for s in payload.get("rounds", [])],
            space_words_peak=int(accounting.get("space_words_peak", 0)),
            passes_total=int(accounting.get("passes_total", 0)),
            sweeps_total=int(accounting.get("sweeps_total", 0)),
            sweeps_wasted=int(accounting.get("sweeps_wasted", 0)),
            passes_wasted=int(accounting.get("passes_wasted", 0)),
            rng_state=decode_state(rng["state"]),
            rng_stack=tuple(decode_state(s) for s in rng.get("stack", [])),
            degradations=tuple(
                FailureReport(**report) for report in payload.get("degradations", [])
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotFormatError(f"snapshot payload malformed: {exc!r}") from exc


def resume_from(
    source: "Union[str, snapshot_module.Snapshot]",
    stream: EdgeStream,
    config: Optional[EstimatorConfig] = None,
    assigner_factory: Optional[AssignerFactory] = None,
    overrides: Optional[Dict[str, object]] = None,
) -> EstimateResult:
    """Resume an interrupted estimate from a durable snapshot.

    ``source`` is an ``.esnap`` file, a checkpoint directory (its newest
    structurally valid snapshot is used - the rotation is the fallback
    when the newest write was torn), or an already-decoded
    :class:`~repro.core.snapshot.Snapshot`.  The run continues from the
    snapshot's round boundary and is bit-identical to one that was never
    interrupted: same estimates, same trajectory, same ``passes_total``,
    same final root-RNG state.

    Validation is two-staged and typed.  Structural damage raised while
    loading is :class:`~repro.errors.SnapshotFormatError`; a valid
    snapshot that belongs to a different run -- the resuming stream's
    content fingerprint or the config's trajectory hash disagrees with
    the header -- is the hard :class:`~repro.errors.SnapshotMismatchError`.
    Engine and robustness knobs are *outside* the hash: a run
    checkpointed under ``--engine python`` may resume under the sharded
    engine (results are bit-identical across engines), which ``config``
    or ``overrides`` (a dict of :class:`EstimatorConfig` field
    replacements applied over the snapshot's stored config) select.

    Checkpointing continues by default: when neither the effective config
    nor the environment names a checkpoint dir, the directory the
    snapshot was loaded from is reused.
    """
    snap = snapshot_module.load_source(source)
    fingerprint = snapshot_module.stream_fingerprint(stream)
    where = snap.path or "<snapshot>"
    if fingerprint != snap.fingerprint:
        raise SnapshotMismatchError(
            f"{where}: stream fingerprint mismatch - snapshot records "
            f"{snap.fingerprint_hex[:16]}..., resuming stream hashes to "
            f"{fingerprint.hex()[:16]}...; refusing to resume against a "
            "different input"
        )
    payload = snap.payload
    kappa = int(payload.get("kappa", 0))
    if config is None:
        config = _config_from_state(payload.get("config") or {})
    if overrides:
        try:
            config = dataclasses.replace(config, **overrides)
        except TypeError as exc:
            raise ParameterError(f"unknown resume override: {exc}") from exc
    if (
        snapshot_module.resolve_checkpoint_dir(config.checkpoint_dir) is None
        and snap.path is not None
    ):
        config = dataclasses.replace(
            config, checkpoint_dir=os.path.dirname(os.path.abspath(snap.path))
        )
    if snapshot_module.config_hash(_config_state(config), kappa) != snap.config_hash:
        raise SnapshotMismatchError(
            f"{where}: config hash mismatch - the resuming configuration's "
            "trajectory-relevant fields (seed, epsilon, repetitions, mode, "
            "constants, hint, budgets, pass sharing) or kappa differ from "
            "the run that wrote this snapshot"
        )
    state = _resume_state(payload)
    return TriangleCountEstimator(config).estimate(
        stream, kappa, assigner_factory, _resume=state
    )
