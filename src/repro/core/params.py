"""Parameter plans for Algorithm 2 and Algorithm 3.

The paper fixes its sample sizes in three places:

* Lemma 5.5: ``r = (c / eps^2) * log(n) * m * tau_max / T`` uniform edges in
  pass 1, where ``tau_max <= kappa / eps`` by Definition 5.2(3);
* Lemma 5.7: ``ell = (c / eps^2) * log(n) * m * d_R / (r * T)`` degree-
  proportional draws from ``R``;
* Theorem 5.13: ``s = (c / eps^2) * log(n) * m * kappa / T`` neighbor samples
  per edge inside ``Assignment``, plus the two thresholds

  - *degree cutoff* ``m * kappa^2 / (eps^2 * T)``: edges above it get
    ``Y_e = infinity`` (Algorithm 3 line 9),
  - *assignment cutoff* ``kappa / (2 * eps)``: a triangle whose minimum
    estimate exceeds it is left unassigned (Algorithm 3 line 18).

With the paper's constants (``c > 6``, ``c > 20``, ``c > 60``) these sizes
are astronomically conservative - correct but useless on a laptop.  The
library therefore supports two regimes with identical functional forms:

* ``theory``: the paper's formulas verbatim (including ``log n`` and the
  stated constants);
* ``practical``: the same formulas with small tunable constants and no
  ``log n`` factor (the ``log n`` is an artifact of union-bounding to
  ``1/poly(n)`` failure probability; the experiments drive failure
  probability down with median-of-repetitions instead).

Both regimes preserve the *scaling* in ``m * kappa / T``, which is what the
experiments measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError


@dataclass(frozen=True)
class PlanConstants:
    """Leading constants of the three sample-size formulas.

    The theory regime uses the smallest constants permitted by the lemmas
    (``c_r > 6``, ``c_ell > 20``, ``c_s > 60``); the practical regime uses
    small constants tuned so that laptop-scale runs concentrate well.
    """

    c_r: float
    c_ell: float
    c_s: float

    THEORY: "PlanConstants" = None  # type: ignore[assignment]  # set below
    PRACTICAL: "PlanConstants" = None  # type: ignore[assignment]  # set below

    def __post_init__(self) -> None:
        if min(self.c_r, self.c_ell, self.c_s) <= 0:
            raise ParameterError("plan constants must be positive")


# The lemmas require c > 6 (Lemma 5.5), c > 20 (Lemma 5.7), c > 60 (Thm 5.13).
PlanConstants.THEORY = PlanConstants(c_r=7.0, c_ell=21.0, c_s=61.0)
PlanConstants.PRACTICAL = PlanConstants(c_r=3.0, c_ell=3.0, c_s=3.0)


@dataclass(frozen=True)
class ParameterPlan:
    """A fully resolved parameter set for one Algorithm 2 run.

    Attributes
    ----------
    epsilon:
        Target relative accuracy of this run.
    num_vertices, num_edges, kappa, t_guess:
        The instance parameters the plan was derived from.  ``t_guess`` is
        the current guess for ``T`` (driver supplies it; Corollary 3.2 caps
        the first guess at ``2 * m * kappa``).
    r:
        Pass-1 uniform sample size (edges, with replacement).
    s:
        Per-edge neighbor samples inside Algorithm 3.
    degree_cutoff:
        ``m * kappa^2 / (eps^2 * T)`` - Algorithm 3 line 9 threshold.
    assignment_cutoff:
        ``kappa / (2 * eps)`` - Algorithm 3 line 18 threshold.
    mode:
        ``"theory"`` or ``"practical"`` (informational).
    """

    epsilon: float
    num_vertices: int
    num_edges: int
    kappa: int
    t_guess: float
    r: int
    s: int
    degree_cutoff: float
    assignment_cutoff: float
    mode: str
    c_ell: float
    log_factor: float

    def ell(self, d_r: float) -> int:
        """Pass-dependent draw count ``ell`` (Lemma 5.7).

        ``d_R = sum_{e in R} d_e`` is only known after pass 2, so ``ell`` is
        resolved per run: ``ell = (c / eps^2) * log-factor * m * d_R / (r * T)``.
        """
        if d_r < 0:
            raise ParameterError(f"d_R must be non-negative, got {d_r}")
        raw = self.c_ell * self.log_factor * self.num_edges * d_r / (
            self.r * self.t_guess * self.epsilon * self.epsilon
        )
        # Clamped for the same reason as ``r`` (see :meth:`build`): past a few
        # stream-lengths' worth of draws, exact counting would be cheaper.
        return min(max(8, math.ceil(raw)), max(8, 4 * self.num_edges))

    @property
    def predicted_space_words(self) -> float:
        """The headline bound this plan should realize: ``O(m * kappa / T)``
        up to the plan's constants and log factor (used for sanity plots)."""
        return self.num_edges * self.kappa / self.t_guess

    @staticmethod
    def _validate(num_vertices: int, num_edges: int, kappa: int, t_guess: float, epsilon: float) -> None:
        if num_vertices < 1:
            raise ParameterError(f"num_vertices must be >= 1, got {num_vertices}")
        if num_edges < 1:
            raise ParameterError(f"num_edges must be >= 1, got {num_edges}")
        if kappa < 1:
            raise ParameterError(f"kappa must be >= 1, got {kappa}")
        if t_guess <= 0:
            raise ParameterError(f"t_guess must be positive, got {t_guess}")
        if not 0 < epsilon < 1:
            raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")

    @classmethod
    def build(
        cls,
        num_vertices: int,
        num_edges: int,
        kappa: int,
        t_guess: float,
        epsilon: float,
        mode: str = "practical",
        constants: PlanConstants | None = None,
    ) -> "ParameterPlan":
        """Resolve a plan for the given instance parameters.

        ``mode="theory"`` applies the paper's formulas with the ``log n``
        factor and Lemma-mandated constants; ``mode="practical"`` drops the
        log factor and uses :attr:`PlanConstants.PRACTICAL` (or the supplied
        ``constants``).
        """
        cls._validate(num_vertices, num_edges, kappa, t_guess, epsilon)
        if mode not in ("theory", "practical"):
            raise ParameterError(f"mode must be 'theory' or 'practical', got {mode!r}")
        if constants is None:
            constants = PlanConstants.THEORY if mode == "theory" else PlanConstants.PRACTICAL
        log_factor = max(1.0, math.log(max(2, num_vertices))) if mode == "theory" else 1.0
        eps_sq = epsilon * epsilon

        # Lemma 5.5 with tau_max bounded by kappa / eps (Definition 5.2(3)).
        tau_max_bound = kappa / epsilon if mode == "theory" else float(kappa)
        r_raw = constants.c_r * log_factor * num_edges * tau_max_bound / (t_guess * eps_sq)
        # Beyond ~4m samples the run would store (a multiset as large as) the
        # whole stream, at which point exact counting is cheaper; clamping
        # keeps degenerate guesses from exhausting memory without affecting
        # any regime where the algorithm is supposed to win.
        r = min(max(8, math.ceil(r_raw)), max(8, 4 * num_edges))

        # Theorem 5.13.
        s_raw = constants.c_s * log_factor * num_edges * kappa / (t_guess * eps_sq)
        s = min(max(4, math.ceil(s_raw)), max(4, 4 * num_edges))

        return cls(
            epsilon=epsilon,
            num_vertices=num_vertices,
            num_edges=num_edges,
            kappa=kappa,
            t_guess=t_guess,
            r=r,
            s=s,
            degree_cutoff=num_edges * kappa * kappa / (eps_sq * t_guess),
            assignment_cutoff=kappa / (2 * epsilon),
            mode=mode,
            c_ell=constants.c_ell,
            log_factor=log_factor,
        )
