"""Empirical confidence intervals for repeated estimates.

The paper's guarantee is an ``(eps, delta)`` statement; practitioners want
an interval.  Since the driver already runs ``repetitions`` independent
Algorithm 2 instances, an order-statistics (quantile) interval over those
estimates is free to compute and makes the repetition spread visible.
Intervals here are *descriptive* (spread of the observed runs), not the
formal ``(1 +- eps)`` guarantee - the docstring of
:func:`estimate_with_interval` spells out the distinction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..errors import ParameterError
from ..streams.base import EdgeStream
from .driver import EstimateResult, EstimatorConfig, TriangleCountEstimator


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided empirical interval around a point estimate."""

    point: float
    low: float
    high: float
    level: float

    def __post_init__(self) -> None:
        if not self.low <= self.point <= self.high:
            raise ParameterError(
                f"inconsistent interval: {self.low} <= {self.point} <= {self.high} fails"
            )

    @property
    def width(self) -> float:
        """Interval width ``high - low``."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile (the numpy default), dependency-free."""
    if not values:
        raise ParameterError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ParameterError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def interval_from_estimates(
    estimates: Sequence[float], level: float = 0.9
) -> ConfidenceInterval:
    """Empirical quantile interval of repeated estimator outputs.

    The point estimate is the median (matching the driver's combiner); the
    interval spans the central ``level`` mass of the observed runs.
    Requires at least 3 estimates for a non-degenerate interval.
    """
    if len(estimates) < 3:
        raise ParameterError(f"need >= 3 estimates for an interval, got {len(estimates)}")
    if not 0.0 < level < 1.0:
        raise ParameterError(f"level must be in (0, 1), got {level}")
    tail = (1.0 - level) / 2.0
    point = quantile(estimates, 0.5)
    return ConfidenceInterval(
        point=point,
        low=min(quantile(estimates, tail), point),
        high=max(quantile(estimates, 1.0 - tail), point),
        level=level,
    )


def estimate_with_interval(
    stream: EdgeStream,
    kappa: int,
    config: Optional[EstimatorConfig] = None,
    level: float = 0.9,
) -> tuple[EstimateResult, ConfidenceInterval]:
    """Run the driver and attach an empirical interval to its result.

    The interval is computed from the accepted round's independent runs.
    It describes run-to-run spread; the formal ``(1 +- eps)`` guarantee
    comes from the configuration (``epsilon``, ``repetitions``), not from
    this interval.  Needs ``repetitions >= 3``.
    """
    config = config if config is not None else EstimatorConfig()
    if config.repetitions < 3:
        raise ParameterError("estimate_with_interval needs repetitions >= 3")
    result = TriangleCountEstimator(config).estimate(stream, kappa=kappa)
    round_ = result.accepted_round if result.accepted_round is not None else (
        result.rounds[-1] if result.rounds else None
    )
    if round_ is None:
        interval = ConfidenceInterval(point=0.0, low=0.0, high=0.0, level=level)
    else:
        interval = interval_from_estimates([r.estimate for r in round_.runs], level=level)
    return result, interval
