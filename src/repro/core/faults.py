"""Fault model for the execution engine: retry, degradation, injection.

The sharded engine's determinism argument (pure per-chunk kernels plus
stream-ordered absorption, see :mod:`repro.core.executor`) does more than
make every execution mode bit-identical - it makes *recovery* bit-identical
too.  A task that died on a worker crash recomputes the exact same partial
when resubmitted; a round whose shared sweep aborted mid-stage replays the
exact same trajectory once the root generator is rewound (the PR 5
checkpoint machinery).  This module packages that argument into three
cooperating pieces:

* :class:`RetryPolicy` - deterministic retry with exponential backoff.
  ``max_attempts`` bounds attempts per failure site, ``backoff_base``
  seeds the exponential delay, ``jitter_seed`` derives the (deterministic)
  jitter stream - never the estimator's root RNG - and ``timeout`` is the
  per-task result deadline for sharded pool tasks.  Defaults come from
  ``REPRO_MAX_RETRIES`` (extra attempts after the first) and
  ``REPRO_TASK_TIMEOUT`` (seconds).

* the **degradation ladder** - when retries exhaust at one tier the run
  drops a tier and re-executes instead of failing the estimate:
  sharded -> serial execution, shm transport -> pickled blocks, prefetch
  thread -> synchronous reads, mmap tape -> its registered text twin,
  speculative window -> sequential rounds.
  Each step is recorded as a :class:`FailureReport` on the active
  :class:`RecoveryContext` and surfaces on
  ``EstimateResult.degradations``.

* :class:`FaultPlan` - pluggable deterministic fault injection.  A plan
  maps named sites to the 0-based occurrence indices at which the site
  fires, e.g. ``"worker.crash@2;shm.attach@40;sweep.mid_stage@3"``.  Sites
  count their events process-wide while the plan is installed (sharded
  task submissions, sweep openings, parsed file chunks), and each index
  fires exactly once, so a fault lands at a reproducible point of the
  execution no matter which mode runs it.  Plans come from the
  ``REPRO_FAULTS`` environment variable, the ``faults=`` estimator config
  field, or explicitly via :func:`fault_scope` in tests.

State is process-global, matching :mod:`repro.core.engine`'s switchboard:
one estimate runs at a time per process and worker processes re-derive
nothing from it (injection decisions are made parent-side and shipped with
the task).
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import (
    ParameterError,
    ReproError,
    ShmTransportError,
    SnapshotWriteError,
    StreamReadError,
    TaskTimeoutError,
    WorkerCrashError,
)

# ---------------------------------------------------------------------------
# fault sites

#: A sharded pool task's worker process dies (``os._exit``) mid-task.
WORKER_CRASH = "worker.crash"
#: A worker fails to attach the task's shared-memory segment.
SHM_ATTACH = "shm.attach"
#: A chunked file parse fails (raised from the prefetch thread when active).
FILE_READ = "file.read"
#: The tape dies after the first item of a scheduler sweep.
SWEEP_MID_STAGE = "sweep.mid_stage"
#: A sharded pool task hangs past the per-task timeout.
TASK_TIMEOUT = "task.timeout"
#: Persisting a round-boundary snapshot to the checkpoint dir fails.
SNAPSHOT_WRITE = "snapshot.write"

ALL_SITES = (
    WORKER_CRASH,
    SHM_ATTACH,
    FILE_READ,
    SWEEP_MID_STAGE,
    TASK_TIMEOUT,
    SNAPSHOT_WRITE,
)

# ---------------------------------------------------------------------------
# degradation actions

ACTION_SERIAL = "sharded->serial"
ACTION_PICKLE = "shm->pickle"
ACTION_SYNC_READS = "prefetch->sync"
ACTION_TEXT = "mmap->text"
ACTION_SEQUENTIAL = "speculative->sequential"
ACTION_NO_SNAPSHOT = "snapshot->skip"

#: Ladder order used when the failure's preferred step is unavailable.
LADDER = (
    ACTION_SERIAL,
    ACTION_PICKLE,
    ACTION_SYNC_READS,
    ACTION_TEXT,
    ACTION_SEQUENTIAL,
    ACTION_NO_SNAPSHOT,
)


@dataclass(frozen=True)
class FailureReport:
    """One recorded recovery action: where it failed and what was dropped."""

    #: Fault site (one of :data:`ALL_SITES`, or a classified error site).
    site: str
    #: Degradation applied (one of :data:`LADDER`).
    action: str
    #: Failed attempts at the tier before the ladder stepped down.
    attempts: int
    #: Human-readable cause (the final exception, ``repr``-formatted).
    cause: str


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic retry schedule for recoverable execution failures."""

    #: Total attempts per failure site (1 = no retries).
    max_attempts: int = 3
    #: Base delay in seconds; attempt ``k`` backs off ``base * 2**(k-1)``.
    backoff_base: float = 0.02
    #: Seed for the jitter stream (independent of the estimator root RNG).
    jitter_seed: int = 0
    #: Per-task result deadline in seconds for sharded pool tasks, or
    #: ``None`` to wait indefinitely (hangs are then not recoverable).
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ParameterError("backoff_base must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ParameterError("timeout must be positive")

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), deterministic in
        ``(backoff_base, jitter_seed, attempt)``.

        Exponential base delay plus up to 25% jitter drawn from a private
        ``random.Random`` - the estimator's root generator is never
        touched, so retries cannot perturb the result trajectory.
        """
        if self.backoff_base == 0:
            return 0.0
        base = self.backoff_base * (2 ** (attempt - 1))
        jitter = random.Random(self.jitter_seed * 1000003 + attempt).random()
        return base * (1.0 + 0.25 * jitter)

    @property
    def retries(self) -> int:
        """Extra attempts after the first (the ``REPRO_MAX_RETRIES`` knob)."""
        return self.max_attempts - 1


def policy_from_env(
    max_retries: Optional[int] = None, timeout: Optional[float] = None
) -> RetryPolicy:
    """Build a :class:`RetryPolicy` from the environment knobs.

    ``max_retries`` / ``timeout`` override ``REPRO_MAX_RETRIES`` /
    ``REPRO_TASK_TIMEOUT``; malformed environment values raise
    :class:`~repro.errors.ParameterError` like any other bad parameter.
    """
    if max_retries is None:
        raw = os.environ.get("REPRO_MAX_RETRIES", "").strip()
        if raw:
            try:
                max_retries = int(raw)
            except ValueError:
                raise ParameterError(f"REPRO_MAX_RETRIES must be an integer, got {raw!r}")
    if max_retries is not None and max_retries < 0:
        raise ParameterError("max retries must be >= 0")
    if timeout is None:
        raw = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
        if raw:
            try:
                timeout = float(raw)
            except ValueError:
                raise ParameterError(f"REPRO_TASK_TIMEOUT must be a number, got {raw!r}")
    attempts = 3 if max_retries is None else max_retries + 1
    return RetryPolicy(max_attempts=attempts, timeout=timeout)


class FaultPlan:
    """Deterministic injection schedule: site -> occurrence indices.

    Each named site keeps a process-wide event counter while the plan is
    installed; :meth:`fires` increments the counter and reports whether the
    current event index was scheduled.  Indices are consumed (each fires at
    most once), so a retried task or replayed sweep does not re-trip the
    same fault.
    """

    def __init__(self, schedule: Dict[str, Tuple[int, ...]]) -> None:
        for site in schedule:
            if site not in ALL_SITES:
                raise ParameterError(
                    f"unknown fault site {site!r}; expected one of {', '.join(ALL_SITES)}"
                )
        self._schedule: Dict[str, Tuple[int, ...]] = {
            site: tuple(sorted(set(indices))) for site, indices in schedule.items()
        }
        self._counters: Dict[str, int] = {}
        self._pending: Dict[str, set] = {}
        self.reset()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``"site@i;site@j,k"`` spec (the ``REPRO_FAULTS`` format).

        Entries are semicolon-separated; each is ``site@indices`` where
        ``indices`` is a comma-separated list of 0-based event indices
        (``site`` alone means index 0).  Repeated sites merge.
        """
        schedule: Dict[str, List[int]] = {}
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            site, _, raw_indices = entry.partition("@")
            site = site.strip()
            if not raw_indices.strip():
                indices = [0]
            else:
                try:
                    indices = [int(tok) for tok in raw_indices.split(",") if tok.strip()]
                except ValueError:
                    raise ParameterError(f"malformed fault indices in {entry!r}")
            if any(i < 0 for i in indices):
                raise ParameterError(f"fault indices must be >= 0 in {entry!r}")
            schedule.setdefault(site, []).extend(indices)
        return cls({site: tuple(indices) for site, indices in schedule.items()})

    def reset(self) -> None:
        """Rewind every site counter and re-arm all scheduled indices."""
        self._counters = {site: 0 for site in self._schedule}
        self._pending = {site: set(indices) for site, indices in self._schedule.items()}

    def fires(self, site: str) -> bool:
        """Count one event at ``site``; True when a scheduled index fired."""
        if site not in self._pending:
            return False
        index = self._counters[site]
        self._counters[site] = index + 1
        pending = self._pending[site]
        if index in pending:
            pending.discard(index)
            return True
        return False

    def armed(self, site: str) -> bool:
        """Whether ``site`` still has scheduled indices left to fire."""
        return bool(self._pending.get(site))

    def describe(self) -> str:
        """The plan in ``REPRO_FAULTS`` syntax (normalized)."""
        return ";".join(
            f"{site}@{','.join(str(i) for i in indices)}"
            for site, indices in sorted(self._schedule.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"FaultPlan({self.describe()!r})"


def plan_from(value: Union[None, str, FaultPlan]) -> Optional[FaultPlan]:
    """Coerce a config value (``None`` / spec string / plan) to a plan.

    Falls back to ``REPRO_FAULTS`` when ``value`` is ``None``; an empty
    spec yields ``None`` (no injection).
    """
    if value is None:
        value = os.environ.get("REPRO_FAULTS", "")
    if isinstance(value, FaultPlan):
        return value
    spec = str(value).strip()
    if not spec:
        return None
    return FaultPlan.parse(spec)


# ---------------------------------------------------------------------------
# process-global installation

@dataclass
class RecoveryContext:
    """Mutable recovery state for one estimate (or one explicit scope)."""

    policy: RetryPolicy
    plan: Optional[FaultPlan] = None
    reports: List[FailureReport] = field(default_factory=list)
    #: Ladder flags - which tiers this context has already dropped.
    speculation_degraded: bool = False
    shm_degraded: bool = False
    prefetch_degraded: bool = False
    mmap_degraded: bool = False
    serial_degraded: bool = False
    snapshot_degraded: bool = False

    def applied(self, action: str) -> bool:
        return {
            ACTION_SERIAL: self.serial_degraded,
            ACTION_PICKLE: self.shm_degraded,
            ACTION_SYNC_READS: self.prefetch_degraded,
            ACTION_TEXT: self.mmap_degraded,
            ACTION_SEQUENTIAL: self.speculation_degraded,
            ACTION_NO_SNAPSHOT: self.snapshot_degraded,
        }[action]


_active_policy: Optional[RetryPolicy] = None
_active_plan: Optional[FaultPlan] = plan_from(None)
_active_recovery: Optional[RecoveryContext] = None


def active_policy() -> RetryPolicy:
    """The installed retry policy, or one freshly derived from the env."""
    if _active_policy is not None:
        return _active_policy
    return policy_from_env()


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, if any."""
    return _active_plan


def active_recovery() -> Optional[RecoveryContext]:
    """The recovery context of the estimate in progress, if any."""
    return _active_recovery


def fires(site: str) -> bool:
    """Count one event at ``site`` against the installed plan (if any)."""
    plan = _active_plan
    return plan is not None and plan.fires(site)


def task_injection() -> Optional[str]:
    """Injection verdict for one *new* sharded task submission.

    Consulted parent-side exactly once per first submission (retries of
    the same task are not new events): ``"crash"`` makes the worker die,
    ``"hang"`` makes it sleep past any timeout, ``"shm"`` makes it raise
    :class:`~repro.errors.ShmTransportError`.
    """
    plan = _active_plan
    if plan is None:
        return None
    if plan.fires(WORKER_CRASH):
        return "crash"
    if plan.fires(TASK_TIMEOUT):
        return "hang"
    if plan.fires(SHM_ATTACH):
        return "shm"
    return None


def degrade(action: str, site: str, attempts: int, cause: BaseException) -> None:
    """Apply one ladder step under the active recovery context and record it.

    Without a context (bare executor calls outside an estimate) this is a
    no-op: the caller handles its own sweep-local fallback and no global
    state is mutated.  Under a context the step persists for the rest of
    the estimate - the engine override / recovery scope unwinds it when
    the estimate returns.
    """
    ctx = _active_recovery
    if ctx is None:
        return
    if action == ACTION_SERIAL:
        from . import engine

        engine._apply(None, 1)
        ctx.serial_degraded = True
    elif action == ACTION_PICKLE:
        from ..streams import shm

        shm.disable_shm()
        ctx.shm_degraded = True
    elif action == ACTION_SYNC_READS:
        from ..streams import file as file_module

        file_module.set_prefetch(False)
        ctx.prefetch_degraded = True
    elif action == ACTION_TEXT:
        from ..streams import tape as tape_module

        tape_module.set_mmap(False)
        ctx.mmap_degraded = True
    elif action == ACTION_SEQUENTIAL:
        ctx.speculation_degraded = True
    elif action == ACTION_NO_SNAPSHOT:
        # The writer itself stops persisting (see core.snapshot); the
        # context only records that durability was dropped for this run.
        ctx.snapshot_degraded = True
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown degradation action {action!r}")
    ctx.reports.append(
        FailureReport(site=site, action=action, attempts=attempts, cause=repr(cause))
    )


def is_transient(exc: BaseException) -> bool:
    """Whether retrying or degrading can plausibly help with ``exc``.

    Worker crashes, task timeouts, shm transport failures, and stream
    *read* errors are transient; every other library error (budget
    violations, protocol misuse, bad parameters) is deterministic and
    retrying would just replay it.  Bare ``OSError`` from outside the
    library (user streams raising ``IOError``) counts as transient.
    """
    if isinstance(
        exc, (WorkerCrashError, TaskTimeoutError, ShmTransportError, StreamReadError)
    ):
        return True
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, OSError)


def site_of(exc: BaseException) -> str:
    """The fault site an exception is classified under (for reports)."""
    if isinstance(exc, WorkerCrashError):
        return WORKER_CRASH
    if isinstance(exc, TaskTimeoutError):
        return TASK_TIMEOUT
    if isinstance(exc, ShmTransportError):
        return SHM_ATTACH
    if isinstance(exc, SnapshotWriteError):
        return SNAPSHOT_WRITE
    return FILE_READ if isinstance(exc, (StreamReadError, OSError)) else "unknown"


@contextmanager
def fault_scope(
    plan: Union[None, str, FaultPlan] = None,
    policy: Optional[RetryPolicy] = None,
) -> Iterator[Optional[FaultPlan]]:
    """Install a fault plan (and optionally a policy) without a recovery
    context - the low-level hook for executor/scheduler-layer tests."""
    global _active_policy, _active_plan
    resolved = plan_from(plan)
    if resolved is not None:
        resolved.reset()
    saved = (_active_policy, _active_plan)
    _active_policy = policy if policy is not None else _active_policy
    _active_plan = resolved
    try:
        yield resolved
    finally:
        _active_policy, _active_plan = saved


@contextmanager
def recovery_scope(
    policy: Optional[RetryPolicy] = None,
    plan: Union[None, str, FaultPlan] = None,
) -> Iterator[RecoveryContext]:
    """Install the recovery machinery for one estimate.

    Sets up the retry policy (env-derived when not given), the fault plan
    (``REPRO_FAULTS`` when not given, counters re-armed), and a fresh
    :class:`RecoveryContext` collecting :class:`FailureReport` entries.
    On exit the previous installation is restored and *transient*
    degradations are unwound: a shm or prefetch tier dropped by this
    context's ladder is re-enabled so one failing estimate does not
    degrade the rest of the process.  (The serial tier lives in the engine
    switchboard and is unwound by ``engine_overrides``.)
    """
    global _active_policy, _active_plan, _active_recovery
    ctx = RecoveryContext(
        policy=policy if policy is not None else policy_from_env(),
        plan=plan_from(plan),
    )
    if ctx.plan is not None:
        ctx.plan.reset()
    from ..streams import file as file_module
    from ..streams import shm
    from ..streams import tape as tape_module

    saved = (_active_policy, _active_plan, _active_recovery)
    saved_shm_enabled = shm.shm_enabled()
    saved_prefetch_enabled = file_module.prefetch_enabled()
    saved_mmap_enabled = tape_module.mmap_enabled()
    _active_policy, _active_plan, _active_recovery = ctx.policy, ctx.plan, ctx
    try:
        yield ctx
    finally:
        _active_policy, _active_plan, _active_recovery = saved
        if ctx.shm_degraded and saved_shm_enabled:
            shm._set_enabled(True)
        if ctx.prefetch_degraded and saved_prefetch_enabled:
            file_module.set_prefetch(True)
        if ctx.mmap_degraded and saved_mmap_enabled:
            tape_module.set_mmap(True)
