"""Vectorized pass kernels for the chunked stream engine, as executor plans.

The six passes of Algorithm 2 (plus Algorithm 3's two assignment passes)
share a common shape: a tiny amount of per-run state (samples, watch
tables, counters) is updated by a full scan of the edge tape.  The pure
Python implementations pay one interpreter iteration *per edge* for that
scan; at a million edges the interpreter, not the algorithm, dominates.

Each pass here is a :class:`~repro.core.executor.PassPlan`: a picklable
*spec*, a pure module-level *kernel* over ``(spec, start_row, rows)``
blocks, and an ordered *absorb* fold - which is exactly the decomposition
the sharded executor needs to fan one pass out across worker processes
while staying bit-identical to the serial scan (see
:mod:`repro.core.executor`).  The public functions at the bottom keep the
original call signatures and simply run the matching plan through
:func:`~repro.core.executor.run_plan`, so every caller - serial or
sharded - goes through one execution spine.

Plan-to-pass map (Algorithm 2 / Algorithm 3 of the paper):

====================================  =====================================
plan                                  pass it accelerates
====================================  =====================================
:class:`PositionCollectPlan`          pass 1 - collect the ``r`` pre-drawn
                                      uniform positions of the sample ``R``
                                      (sorted positions + ``searchsorted``;
                                      merge fills slots keyed by the sorted
                                      rank, so shard order is irrelevant)
:class:`DegreeCountPlan`              pass 2 - degrees of the endpoints of
                                      ``R`` (id remap via ``searchsorted``
                                      + ``bincount``; merge sums the
                                      per-shard count tables)
:class:`IncidentEdgePlan`             passes 3 and 5 - only edges incident
                                      to a tracked owner matter; matched
                                      edges are replayed to a callback in
                                      stream order, so the caller's
                                      sequential RNG consumption runs
                                      unchanged on the matches
:class:`IncidentCollectPlan`          fused pass 4+5 - the same incident
                                      filter, but matched blocks are
                                      *buffered* in stream order for a
                                      post-sweep replay (no callback, no
                                      in-sweep RNG), which is what lets
                                      the closure watch and the assignment
                                      stage's sampling share one sweep
:class:`NeighborPositionPlan`         pass 3 - the neighbor at each
                                      requested (owner, occurrence) event;
                                      shards report per-batch occurrence
                                      counts and hits, merged in stream-
                                      offset order
:class:`WatchKeyPlan`                 passes 4 and 6 - closure watches:
                                      which of the wedges' missing edges
                                      appear anywhere on the tape (packed
                                      64-bit keys; merge unions the hit
                                      sets)
:class:`PackedKeyCountPlan`           pass 6 - occurrence counts of packed
                                      watch keys (merge sums)
:class:`EdgeReplayPlan`               any pass - identity kernel + per-row
                                      parent-side replay; the plan-shaped
                                      fallback for scans with no
                                      vectorized kernel (overflowing watch
                                      keys) so they can still share a
                                      fused sweep
====================================  =====================================

Seed-for-seed parity with the Python path is a hard invariant, enforced by
``tests/test_kernels_parity.py`` and ``tests/test_executor_sharded.py``:
the kernels consume no randomness at all (all RNG draws happen either
before the scan or in the parent on the same matched edges in the same
stream order), so estimates, diagnostics, pass counts, and space
accounting are bit-identical between engines and across worker counts.

Vertex ids must fit in unsigned 32 bits for the packed-key scans; streams
with larger ids transparently fall back to per-row set membership inside
the affected chunk (correct, just slower).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..streams.multipass import PassScheduler
from ..types import Edge, Vertex
from .executor import PassPlan, run_plan

#: Vertex ids must stay below this for the packed-key scans; larger ids
#: take the per-row set-membership fallback.
PACK_LIMIT = 1 << 32


def _membership(sorted_ids: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask of which ``values`` occur in ``sorted_ids`` (sorted)."""
    if len(sorted_ids) == 0:
        return np.zeros(len(values), dtype=bool)
    idx = np.searchsorted(sorted_ids, values)
    np.minimum(idx, len(sorted_ids) - 1, out=idx)
    return sorted_ids[idx] == values


def _lookup(sorted_ids: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(indices, found)`` of ``values`` in ``sorted_ids`` (sorted)."""
    idx = np.searchsorted(sorted_ids, values)
    np.minimum(idx, max(len(sorted_ids) - 1, 0), out=idx)
    found = sorted_ids[idx] == values if len(sorted_ids) else np.zeros(len(values), dtype=bool)
    return idx, found


def pack_canonical_rows(rows: np.ndarray) -> Optional[np.ndarray]:
    """Pack canonical ``(u, v)`` rows into uint64 keys, or ``None`` on overflow."""
    if len(rows) and int(rows.max()) >= PACK_LIMIT:
        return None
    packed = rows[:, 0].astype(np.uint64)
    packed <<= np.uint64(32)
    packed |= rows[:, 1].astype(np.uint64)
    return packed


# ---------------------------------------------------------------------------
# pass 1 - pre-drawn uniform stream positions


def _positions_kernel(spec: np.ndarray, start_row: int, rows: np.ndarray):
    """Rows at the requested (sorted) stream positions inside this block."""
    sorted_positions = spec
    lo = int(np.searchsorted(sorted_positions, start_row, side="left"))
    hi = int(np.searchsorted(sorted_positions, start_row + len(rows), side="left"))
    if hi == lo:
        return None
    return lo, rows[sorted_positions[lo:hi] - start_row]


class PositionCollectPlan(PassPlan):
    """Pass-1 plan: fetch the edge at each requested stream position.

    ``positions`` holds the pre-drawn uniform positions (duplicates allowed,
    order preserved in the result); the pass is abandoned as soon as the
    largest requested position has been served.  Merge is order-free: each
    partial carries its rank range into the sorted position array, and a
    stream position lives in exactly one block.
    """

    name = "pass1/positions"
    kernel = staticmethod(_positions_kernel)

    def __init__(self, positions: np.ndarray) -> None:
        self._r = len(positions)
        self._order = np.argsort(positions, kind="stable")
        self._sorted = positions[self._order]
        self._collected: List[Optional[Edge]] = [None] * self._r
        self._served = 0

    def spec(self) -> np.ndarray:
        return self._sorted

    def absorb(self, partial) -> None:
        lo, rows = partial
        slots = self._order[lo : lo + len(rows)]
        for slot, (u, v) in zip(slots.tolist(), rows.tolist()):
            self._collected[slot] = (u, v)
        self._served = max(self._served, lo + len(rows))

    def finished(self) -> bool:
        return self._served >= self._r

    def stop_row(self) -> Optional[int]:
        return int(self._sorted[-1]) + 1 if self._r else 0

    def result(self) -> List[Edge]:
        if self._served < self._r:
            raise ValueError(
                f"stream ended with unserved sample positions "
                f"(max requested {int(self._sorted[-1]) if self._r else -1})"
            )
        return self._collected  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# pass 2 - tracked-vertex degree counting


def _degree_kernel(spec: np.ndarray, start_row: int, rows: np.ndarray):
    """Per-block ``bincount`` of tracked-endpoint occurrences."""
    tracked_ids = spec
    if len(tracked_ids) == 0:
        return None
    idx, found = _lookup(tracked_ids, rows.reshape(-1))
    if not found.any():
        return None
    return np.bincount(idx[found], minlength=len(tracked_ids))


class DegreeCountPlan(PassPlan):
    """Pass-2 plan: degree of every tracked vertex id (merge: summed tables).

    ``tracked_ids`` must be sorted and unique; the result is the aligned
    int64 count vector.  Also serves Algorithm 3's heavy-edge degree
    counters when given the candidate-triangle endpoints.
    """

    name = "pass2/degrees"
    kernel = staticmethod(_degree_kernel)

    def __init__(self, tracked_ids: np.ndarray) -> None:
        self._ids = tracked_ids
        self._counts = np.zeros(len(tracked_ids), dtype=np.int64)

    def spec(self) -> np.ndarray:
        return self._ids

    def absorb(self, partial) -> None:
        self._counts += partial

    def finished(self) -> bool:
        return len(self._ids) == 0

    def result(self) -> np.ndarray:
        return self._counts


# ---------------------------------------------------------------------------
# passes 3 and 5 - edges incident to a tracked owner, replayed in order


def _incident_kernel(spec: np.ndarray, start_row: int, rows: np.ndarray):
    """The block's rows with a tracked endpoint, in stream order."""
    tracked_ids = spec
    if len(tracked_ids) == 0:
        return None
    hit = _membership(tracked_ids, rows[:, 0])
    hit |= _membership(tracked_ids, rows[:, 1])
    sel = np.flatnonzero(hit)
    if not len(sel):
        return None
    return rows[sel]


class IncidentCollectPlan(PassPlan):
    """Buffer (instead of replay) the edges incident to a tracked set.

    Same kernel as :class:`IncidentEdgePlan`, but ``absorb`` stores the
    matched blocks in stream order rather than invoking a callback - which
    makes the plan independent of anything computed in the same sweep.
    The fused pass-4/5 sweep uses it to collect every edge incident to a
    *superset* of the assignment stage's tracked vertices (all wedge
    vertices, closed or not) while the closure watch resolves in the same
    traversal; the caller then replays the buffer through the sequential
    per-edge logic once the true tracked set is known.  Replaying a
    superset is exact: untracked endpoints are no-ops in the replayed
    fold, so the fold sees the identical update (and RNG-consumption)
    sequence a dedicated incident pass would have produced.

    ``result()`` is the list of matched ``(k, 2)`` blocks in stream order.
    """

    name = "pass5/incident-collect"
    kernel = staticmethod(_incident_kernel)

    def __init__(self, tracked_ids: Sequence[Vertex]) -> None:
        self._ids = np.asarray(sorted(set(tracked_ids)), dtype=np.int64)
        self._blocks: List[np.ndarray] = []

    def spec(self) -> np.ndarray:
        return self._ids

    def absorb(self, partial) -> None:
        self._blocks.append(partial)

    def finished(self) -> bool:
        return len(self._ids) == 0

    def result(self) -> List[np.ndarray]:
        return self._blocks


class IncidentEdgePlan(PassPlan):
    """Pass-3/5 plan: replay edges with a tracked endpoint to a callback.

    The caller's per-edge logic (reservoir offers, degree bumps - anything
    that consumes RNG sequentially) runs in the parent on the matched
    edges exactly as it would on a full Python pass; since untracked edges
    are no-ops there, filtering them out in the kernels preserves
    behaviour bit for bit, sharded or not (absorb order is stream order).
    """

    name = "pass5/incident"
    kernel = staticmethod(_incident_kernel)

    def __init__(self, tracked_ids: Sequence[Vertex], visit: Callable[[Vertex, Vertex], None]) -> None:
        self._ids = np.asarray(sorted(set(tracked_ids)), dtype=np.int64)
        self._visit = visit

    def spec(self) -> np.ndarray:
        return self._ids

    def absorb(self, partial) -> None:
        visit = self._visit
        for u, v in partial.tolist():
            visit(u, v)

    def finished(self) -> bool:
        return len(self._ids) == 0

    def result(self) -> None:
        return None


def _rows_kernel(spec, start_row: int, rows: np.ndarray):
    """Identity kernel: ship the block back for a parent-side replay."""
    return rows


class EdgeReplayPlan(PassPlan):
    """Replay every tape row to a parent-side callback, chunk-paced.

    The plan-shaped form of a plain Python pass: the identity kernel ships
    each block back unchanged and ``absorb`` replays it row by row in
    stream order.  Used when a scan has no vectorized kernel (watched keys
    overflowing the 64-bit packing) but must still be expressible as a
    :class:`~repro.core.executor.PassPlan` so it can share a chunked sweep
    with other plans.  Sharded execution ships whole blocks through the
    pool - correct but wasteful, acceptable for the rare fallback.
    """

    name = "fallback/replay"
    kernel = staticmethod(_rows_kernel)

    def __init__(self, visit: Callable[[Vertex, Vertex], None]) -> None:
        self._visit = visit

    def spec(self) -> None:
        return None

    def absorb(self, partial) -> None:
        visit = self._visit
        for u, v in partial.tolist():
            visit(u, v)

    def result(self) -> None:
        return None


# ---------------------------------------------------------------------------
# pass 3 - neighbor at a requested (owner, occurrence) event


def _neighbor_kernel(spec, start_row: int, rows: np.ndarray):
    """Per-block incident events: occurrence counts plus prunable hits.

    Returns ``(counts, owners, local_occurrences, neighbors)`` where
    ``counts`` is the per-owner incidence count of this block (always
    needed by the merge to maintain global occurrence bases) and the
    remaining arrays list the block's events whose *local* occurrence
    rank could still match a request (global occurrence = base + local
    rank >= local rank, so ranks beyond the largest requested position of
    an owner can never match and are dropped in the worker).
    """
    owner_ids, max_position = spec
    endpoints = rows.reshape(-1)
    neighbors = rows[:, ::-1].reshape(-1)
    idx, tracked = _lookup(owner_ids, endpoints)
    if not tracked.any():
        return None
    event_owner = idx[tracked]
    event_neighbor = neighbors[tracked]
    order = np.argsort(event_owner, kind="stable")
    grouped_owner = event_owner[order]
    counts = np.bincount(grouped_owner, minlength=len(owner_ids))
    starts = np.zeros(len(owner_ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    local = np.arange(len(grouped_owner), dtype=np.int64) - starts[grouped_owner]
    keep = local <= max_position[grouped_owner]
    return counts, grouped_owner[keep], local[keep], event_neighbor[order][keep]


class NeighborPositionPlan(PassPlan):
    """Pass-3 plan: the neighbor at each requested incident-stream position.

    Request ``i`` asks for the ``request_positions[i]``-th (0-based) edge
    incident to ``owner_ids[request_owner_index[i]]``, in stream order, and
    receives that edge's far endpoint.  ``owner_ids`` must be sorted and
    unique.  The merge folds per-batch occurrence counts into a running
    per-owner base (in stream-offset order - the one order-sensitive part)
    and matches the offset events against the packed request keys;
    duplicate requests for the same position are all served.  The pass is
    abandoned once every request is served; unserved requests (a position
    beyond the owner's degree) come back as ``-1``.
    """

    name = "pass3/neighbors"
    kernel = staticmethod(_neighbor_kernel)

    def __init__(
        self,
        owner_ids: np.ndarray,
        request_owner_index: np.ndarray,
        request_positions: np.ndarray,
    ) -> None:
        self._owner_ids = owner_ids
        self._total = len(request_positions)
        request_keys = request_owner_index.astype(np.uint64)
        request_keys <<= np.uint64(32)
        request_keys |= request_positions.astype(np.uint64)
        self._request_order = np.argsort(request_keys, kind="stable")
        self._sorted_request_keys = request_keys[self._request_order]
        max_position = np.full(len(owner_ids), -1, dtype=np.int64)
        if self._total:
            np.maximum.at(max_position, request_owner_index, request_positions)
        self._max_position = max_position
        self._base = np.zeros(len(owner_ids), dtype=np.int64)
        self._out = np.full(self._total, -1, dtype=np.int64)
        self._served = 0

    def spec(self):
        return self._owner_ids, self._max_position

    def absorb(self, partial) -> None:
        counts, owners, local, neighbors = partial
        if len(owners):
            occurrence = self._base[owners] + local
            event_keys = owners.astype(np.uint64)
            event_keys <<= np.uint64(32)
            event_keys |= occurrence.astype(np.uint64)
            lo = np.searchsorted(self._sorted_request_keys, event_keys, side="left")
            hi = np.searchsorted(self._sorted_request_keys, event_keys, side="right")
            matched = np.flatnonzero(hi > lo)
            if len(matched):
                neighbor_list = neighbors[matched].tolist()
                for event, neighbor in zip(matched.tolist(), neighbor_list):
                    for at in range(lo[event], hi[event]):
                        self._out[self._request_order[at]] = neighbor
                        self._served += 1
        self._base += counts

    def finished(self) -> bool:
        return self._served >= self._total

    def result(self) -> np.ndarray:
        return self._out


# ---------------------------------------------------------------------------
# passes 4 and 6 - packed-key closure watches


def _watch_kernel(spec, start_row: int, rows: np.ndarray):
    """Indices (into the sorted key list) of watched keys seen in the block."""
    packed_keys, key_index = spec
    if packed_keys is not None:
        packed_block = pack_canonical_rows(rows)
        if packed_block is None:
            # Overflowing ids (> 32 bits) in this block cannot match any
            # packed key; scan only the rows that still could.
            small = rows[(rows < PACK_LIMIT).all(axis=1)]
            packed_block = pack_canonical_rows(small)
        idx, hit = _lookup(packed_keys, packed_block)
        if not hit.any():
            return None
        return np.unique(idx[hit])
    if key_index is None:
        return None  # no watched keys at all
    # Keys beyond the 32-bit packing: per-row membership against the
    # prebuilt index, still chunk-paced.
    found = {key_index[(u, v)] for u, v in rows.tolist() if (u, v) in key_index}
    if not found:
        return None
    return np.asarray(sorted(found), dtype=np.int64)


class WatchKeyPlan(PassPlan):
    """Pass-4/6 plan: which watched edges appear anywhere on the tape.

    Edges on the tape are distinct (the paper's model), so presence is all
    the closure passes need; the merge unions the per-shard hit sets and
    the pass is abandoned early once every watched key has been seen.
    When several estimator instances watch overlapping keys the caller
    passes the *union* once - the scan cost is per unique key, and the
    per-instance fan-out happens on the caller's side of the result.
    The spec ships the packed key array alone when the keys fit the 32-bit
    packing; only overflowing key sets ship the key -> rank index for the
    per-row fallback.
    """

    name = "pass4/watch"
    kernel = staticmethod(_watch_kernel)

    def __init__(self, keys: Sequence[Edge]) -> None:
        self._key_list = sorted(keys)
        self._packed = (
            pack_canonical_rows(np.asarray(self._key_list, dtype=np.int64).reshape(-1, 2))
            if self._key_list
            else None
        )
        self._key_index = (
            {key: i for i, key in enumerate(self._key_list)}
            if self._key_list and self._packed is None
            else None
        )
        self._seen = np.zeros(len(self._key_list), dtype=bool)

    def spec(self):
        return self._packed, self._key_index

    def absorb(self, partial) -> None:
        self._seen[partial] = True

    def finished(self) -> bool:
        return bool(self._seen.all())

    def result(self) -> Set[Edge]:
        return {key for key, ok in zip(self._key_list, self._seen.tolist()) if ok}


def _packed_count_kernel(spec: np.ndarray, start_row: int, rows: np.ndarray):
    """Per-block occurrence ``bincount`` of the packed watch keys."""
    packed_keys = spec
    if len(packed_keys) == 0:
        return None
    packed_block = pack_canonical_rows(rows)
    if packed_block is None:
        small = rows[(rows < PACK_LIMIT).all(axis=1)]
        packed_block = pack_canonical_rows(small)
    idx, hit = _lookup(packed_keys, packed_block)
    if not hit.any():
        return None
    return np.bincount(idx[hit], minlength=len(packed_keys))


class PackedKeyCountPlan(PassPlan):
    """Pass-6 plan: occurrence counts of pre-packed uint64 edge keys.

    ``packed_keys`` must be sorted, unique, and built from ids below
    :data:`PACK_LIMIT` (the caller checks); the result is the aligned
    int64 occurrence-count vector (merge: summed).  The model's tape has
    unrepeated edges, but unvalidated streams may not - counting per
    occurrence (rather than presence) keeps the chunked engine
    bit-identical to the Python watch loop either way, so no early
    abandon is possible here.  Stream rows whose ids overflow the packing
    cannot match any key and are skipped.  Always consumes exactly one
    pass, even with no keys.
    """

    name = "pass6/packed-counts"
    kernel = staticmethod(_packed_count_kernel)

    def __init__(self, packed_keys: np.ndarray) -> None:
        self._keys = packed_keys
        self._counts = np.zeros(len(packed_keys), dtype=np.int64)

    def spec(self) -> np.ndarray:
        return self._keys

    def absorb(self, partial) -> None:
        self._counts += partial

    def finished(self) -> bool:
        return len(self._keys) == 0

    def result(self) -> np.ndarray:
        return self._counts


# ---------------------------------------------------------------------------
# public entry points (original signatures, now routed through the executor)


def collect_stream_positions(
    scheduler: PassScheduler, positions: np.ndarray, chunk_size: int
) -> List[Edge]:
    """Pass-1 scan: fetch the edge at each requested stream position."""
    return run_plan(scheduler, PositionCollectPlan(positions), chunk_size=chunk_size)


def count_tracked_degrees(
    scheduler: PassScheduler, tracked_ids: np.ndarray, chunk_size: int
) -> np.ndarray:
    """Pass-2 scan: degree of every tracked vertex id, in one chunked pass."""
    return run_plan(scheduler, DegreeCountPlan(tracked_ids), chunk_size=chunk_size)


def scan_incident_edges(
    scheduler: PassScheduler,
    tracked_ids: Sequence[Vertex],
    chunk_size: int,
    visit: Callable[[Vertex, Vertex], None],
) -> None:
    """Pass-3/5 scan: replay edges with a tracked endpoint to ``visit``."""
    run_plan(scheduler, IncidentEdgePlan(tracked_ids, visit), chunk_size=chunk_size)


def collect_neighbor_positions(
    scheduler: PassScheduler,
    owner_ids: np.ndarray,
    request_owner_index: np.ndarray,
    request_positions: np.ndarray,
    chunk_size: int,
) -> np.ndarray:
    """Pass-3 scan: the neighbor at each requested incident-stream position."""
    plan = NeighborPositionPlan(owner_ids, request_owner_index, request_positions)
    return run_plan(scheduler, plan, chunk_size=chunk_size)


def scan_watch_keys(
    scheduler: PassScheduler, keys: Sequence[Edge], chunk_size: int
) -> Set[Edge]:
    """Pass-4/6 scan: which watched edges appear anywhere on the tape."""
    return run_plan(scheduler, WatchKeyPlan(keys), chunk_size=chunk_size)


def scan_packed_keys(
    scheduler: PassScheduler, packed_keys: np.ndarray, chunk_size: int
) -> np.ndarray:
    """Pass-6 scan: occurrence counts of pre-packed uint64 edge keys."""
    return run_plan(scheduler, PackedKeyCountPlan(packed_keys), chunk_size=chunk_size)
