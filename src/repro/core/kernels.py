"""Vectorized pass kernels for the chunked stream engine.

The six passes of Algorithm 2 (plus Algorithm 3's two assignment passes)
share a common shape: a tiny amount of per-run state (samples, watch
tables, counters) is updated by a full scan of the edge tape.  The pure
Python implementations pay one interpreter iteration *per edge* for that
scan; at a million edges the interpreter, not the algorithm, dominates.
The kernels below do the same scans over ``(k, 2)`` int64 NumPy chunks from
:meth:`~repro.streams.multipass.PassScheduler.new_pass_chunks`, touching
Python only for the (rare) edges that actually interact with the run's
state.

Kernel-to-pass map (Algorithm 2 / Algorithm 3 of the paper):

====================================  =====================================
kernel                                pass it accelerates
====================================  =====================================
:func:`collect_stream_positions`      pass 1 - collect the ``r`` pre-drawn
                                      uniform positions of the sample ``R``
                                      (sorted positions + ``searchsorted``
                                      per chunk; abandons the pass once all
                                      slots are filled)
:func:`count_tracked_degrees`         pass 2 - degrees of the endpoints of
                                      ``R`` (id remap via ``searchsorted``
                                      + ``bincount``); also Algorithm 3's
                                      heavy-edge degree counters when the
                                      caller tracks candidate endpoints
:func:`iter_incident_edges`           passes 3 and 5 - reservoir updates
                                      only fire on edges incident to a
                                      tracked owner, so the kernel yields
                                      exactly those edges (vectorized
                                      membership filter per chunk) and the
                                      caller's reservoir logic - with its
                                      sequential RNG consumption - runs
                                      unchanged on the matches
:func:`scan_watch_keys`               passes 4 and 6 - closure watches:
                                      which of the wedges' missing edges
                                      appear anywhere on the tape (packed
                                      64-bit edge keys + ``searchsorted``
                                      per chunk; abandons the pass once
                                      every watched key was seen)
====================================  =====================================

Seed-for-seed parity with the Python path is a hard invariant, enforced by
``tests/test_kernels_parity.py``: the kernels consume randomness in exactly
the same order (all RNG draws happen either before the scan or on the same
matched edges in the same stream order), so estimates, diagnostics, pass
counts, and space accounting are bit-identical between engines.

Vertex ids must fit in unsigned 32 bits for the packed-key scans; streams
with larger ids transparently fall back to per-row set membership inside
the affected chunk (correct, just slower).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..streams.multipass import PassScheduler
from ..types import Edge, Vertex

#: Vertex ids must stay below this for the packed-key scans; larger ids
#: take the per-row set-membership fallback.
PACK_LIMIT = 1 << 32


def _membership(sorted_ids: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Boolean mask of which ``values`` occur in ``sorted_ids`` (sorted)."""
    if len(sorted_ids) == 0:
        return np.zeros(len(values), dtype=bool)
    idx = np.searchsorted(sorted_ids, values)
    np.minimum(idx, len(sorted_ids) - 1, out=idx)
    return sorted_ids[idx] == values


def _lookup(sorted_ids: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(indices, found)`` of ``values`` in ``sorted_ids`` (sorted)."""
    idx = np.searchsorted(sorted_ids, values)
    np.minimum(idx, max(len(sorted_ids) - 1, 0), out=idx)
    found = sorted_ids[idx] == values if len(sorted_ids) else np.zeros(len(values), dtype=bool)
    return idx, found


def pack_canonical_rows(rows: np.ndarray) -> Optional[np.ndarray]:
    """Pack canonical ``(u, v)`` rows into uint64 keys, or ``None`` on overflow."""
    if len(rows) and int(rows.max()) >= PACK_LIMIT:
        return None
    packed = rows[:, 0].astype(np.uint64)
    packed <<= np.uint64(32)
    packed |= rows[:, 1].astype(np.uint64)
    return packed


def collect_stream_positions(
    scheduler: PassScheduler, positions: np.ndarray, chunk_size: int
) -> List[Edge]:
    """Pass-1 kernel: fetch the edge at each requested stream position.

    ``positions`` holds the pre-drawn uniform positions (duplicates allowed,
    order preserved in the result).  One chunked pass; the pass is abandoned
    as soon as the largest requested position has been served.
    """
    r = len(positions)
    order = np.argsort(positions, kind="stable")
    sorted_positions = positions[order]
    collected: List[Optional[Edge]] = [None] * r
    offset = 0
    served = 0
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            end = offset + len(block)
            hi = int(np.searchsorted(sorted_positions, end, side="left"))
            if hi > served:
                local = sorted_positions[served:hi] - offset
                slots = order[served:hi]
                rows = block[local]
                for slot, (u, v) in zip(slots.tolist(), rows.tolist()):
                    collected[slot] = (u, v)
                served = hi
            offset = end
            if served >= r:
                break  # every slot filled: the rest of the pass is dead tape
    finally:
        pass_chunks.close()
    if any(e is None for e in collected):
        raise ValueError(
            f"stream ended at position {offset} with unserved sample positions "
            f"(max requested {int(sorted_positions[-1]) if r else -1})"
        )
    return collected  # type: ignore[return-value]


def count_tracked_degrees(
    scheduler: PassScheduler, tracked_ids: np.ndarray, chunk_size: int
) -> np.ndarray:
    """Pass-2 kernel: degree of every tracked vertex id, in one chunked pass.

    ``tracked_ids`` must be sorted and unique; returns the aligned int64
    count vector.  Also serves Algorithm 3's pass-5 heavy-edge degree
    counters when given the candidate-triangle endpoints.
    """
    counts = np.zeros(len(tracked_ids), dtype=np.int64)
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            if len(tracked_ids) == 0:
                break
            endpoints = block.reshape(-1)
            idx, found = _lookup(tracked_ids, endpoints)
            counts += np.bincount(idx[found], minlength=len(tracked_ids))
    finally:
        pass_chunks.close()
    return counts


def iter_incident_edges(
    scheduler: PassScheduler, tracked_ids: Sequence[Vertex], chunk_size: int
) -> Iterator[Edge]:
    """Pass-3/5 kernel: yield only the edges with a tracked endpoint, in order.

    The caller runs its per-edge logic (reservoir offers, degree bumps -
    anything that consumes RNG sequentially) on the yielded edges exactly as
    it would on a full Python pass; since untracked edges are no-ops there,
    filtering them out vectorized preserves behaviour bit for bit.
    """
    ids = np.asarray(sorted(set(tracked_ids)), dtype=np.int64)
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            if len(ids) == 0:
                break
            hit = _membership(ids, block[:, 0])
            hit |= _membership(ids, block[:, 1])
            rows = np.flatnonzero(hit)
            if len(rows):
                for u, v in block[rows].tolist():
                    yield (u, v)
    finally:
        pass_chunks.close()


def collect_neighbor_positions(
    scheduler: PassScheduler,
    owner_ids: np.ndarray,
    request_owner_index: np.ndarray,
    request_positions: np.ndarray,
    chunk_size: int,
) -> np.ndarray:
    """Pass-3 kernel: the neighbor at each requested incident-stream position.

    Request ``i`` asks for the ``request_positions[i]``-th (0-based) edge
    incident to ``owner_ids[request_owner_index[i]]``, in stream order, and
    receives that edge's far endpoint.  ``owner_ids`` must be sorted and
    unique.  Per chunk, every (owner, occurrence-number) event is computed
    with a grouped cumulative count and matched against the packed request
    keys - duplicate requests for the same position are all served.  The
    pass is abandoned once every request is served; unserved requests (a
    position beyond the owner's degree) come back as ``-1``.
    """
    total_requests = len(request_positions)
    request_keys = request_owner_index.astype(np.uint64)
    request_keys <<= np.uint64(32)
    request_keys |= request_positions.astype(np.uint64)
    request_order = np.argsort(request_keys, kind="stable")
    sorted_request_keys = request_keys[request_order]
    out = np.full(total_requests, -1, dtype=np.int64)
    base = np.zeros(len(owner_ids), dtype=np.int64)
    served = 0
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            if total_requests == 0:
                break
            endpoints = block.reshape(-1)
            neighbors = block[:, ::-1].reshape(-1)
            idx, tracked = _lookup(owner_ids, endpoints)
            event_owner = idx[tracked]
            if len(event_owner) == 0:
                continue
            event_neighbor = neighbors[tracked]
            event_order = np.argsort(event_owner, kind="stable")
            grouped_owner = event_owner[event_order]
            counts = np.bincount(grouped_owner, minlength=len(owner_ids))
            starts = np.zeros(len(owner_ids) + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            occurrence = base[grouped_owner] + (
                np.arange(len(grouped_owner), dtype=np.int64) - starts[grouped_owner]
            )
            event_keys = grouped_owner.astype(np.uint64)
            event_keys <<= np.uint64(32)
            event_keys |= occurrence.astype(np.uint64)
            lo = np.searchsorted(sorted_request_keys, event_keys, side="left")
            hi = np.searchsorted(sorted_request_keys, event_keys, side="right")
            matched = np.flatnonzero(hi > lo)
            if len(matched):
                grouped_neighbor = event_neighbor[event_order]
                for event in matched.tolist():
                    neighbor = grouped_neighbor[event]
                    for at in range(lo[event], hi[event]):
                        out[request_order[at]] = neighbor
                        served += 1
            base += counts
            if served >= total_requests:
                break  # every request served: the rest of the pass is dead tape
    finally:
        pass_chunks.close()
    return out


def scan_watch_keys(
    scheduler: PassScheduler, keys: Sequence[Edge], chunk_size: int
) -> Set[Edge]:
    """Pass-4/6 kernel: which watched edges appear anywhere on the tape.

    Edges on the tape are distinct (the paper's model), so presence is all
    the closure passes need; the pass is abandoned early once every watched
    key has been seen.  Chunks whose vertex ids overflow the 32-bit packing
    fall back to per-row set membership.
    """
    found: Set[Edge] = set()
    key_list = sorted(keys)
    packed_keys = pack_canonical_rows(np.asarray(key_list, dtype=np.int64).reshape(-1, 2)) if key_list else None
    key_set = set(key_list) if (key_list and packed_keys is None) else None
    seen = np.zeros(len(key_list), dtype=bool)
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            if not key_list:
                break
            packed_block = pack_canonical_rows(block) if packed_keys is not None else None
            if packed_keys is not None and packed_block is not None:
                idx, hit = _lookup(packed_keys, packed_block)
                if hit.any():
                    seen[idx[hit]] = True
                    if seen.all():
                        break
            else:
                # Overflowing ids (> 32 bits) in this chunk or in the keys:
                # per-row membership against a plain set, still chunk-paced.
                if key_set is None:
                    key_set = set(key_list)
                for u, v in block.tolist():
                    if (u, v) in key_set:
                        found.add((u, v))
                if len(found) == len(key_list):
                    break
    finally:
        pass_chunks.close()
    if len(key_list):
        found.update(key for key, ok in zip(key_list, seen.tolist()) if ok)
    return found


def scan_packed_keys(
    scheduler: PassScheduler, packed_keys: np.ndarray, chunk_size: int
) -> np.ndarray:
    """Pass-6 kernel: occurrence counts of pre-packed uint64 edge keys.

    ``packed_keys`` must be sorted, unique, and built from ids below
    :data:`PACK_LIMIT` (the caller checks); returns the aligned int64
    occurrence-count vector.  The model's tape has unrepeated edges, but
    unvalidated streams may not - counting per occurrence (rather than
    presence) keeps the chunked engine bit-identical to the Python watch
    loop either way, so no early abandon is possible here.  Stream rows
    whose ids overflow the packing cannot match any key and are skipped.
    Always consumes exactly one pass, even with no keys.
    """
    counts = np.zeros(len(packed_keys), dtype=np.int64)
    pass_chunks = scheduler.new_pass_chunks(chunk_size)
    try:
        for block in pass_chunks:
            if len(packed_keys) == 0:
                break
            packed_block = pack_canonical_rows(block)
            if packed_block is None:
                small = block[(block < PACK_LIMIT).all(axis=1)]
                packed_block = pack_canonical_rows(small)
            idx, hit = _lookup(packed_keys, packed_block)
            if hit.any():
                counts += np.bincount(idx[hit], minlength=len(packed_keys))
    finally:
        pass_chunks.close()
    return counts
