"""Exact one-pass triangle counting by storing the whole graph.

:class:`ExactStreamingCounter` is the ``Theta(m)``-space reference point of
every comparison table: as each edge ``(u, v)`` arrives, the triangles it
completes are exactly the common neighbors of ``u`` and ``v`` among the
already-seen edges, so a running total over the stream counts each triangle
exactly once (at its last-arriving edge).  This is the standard exact
baseline; the interesting algorithms trade its ``Theta(m)`` space for
sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..streams.space import SpaceMeter
from ..types import Vertex


@dataclass(frozen=True)
class ExactCountResult:
    """Outcome of the exact counter: the true ``T`` plus accounting."""

    triangles: int
    passes_used: int
    space_words_peak: int


class ExactStreamingCounter:
    """One-pass exact triangle counting with full edge storage."""

    def count(self, stream: EdgeStream, meter: Optional[SpaceMeter] = None) -> ExactCountResult:
        """Count the triangles of ``stream`` exactly in one pass."""
        meter = meter if meter is not None else SpaceMeter()
        scheduler = PassScheduler(stream, max_passes=1)
        adjacency: Dict[Vertex, Set[Vertex]] = {}
        total = 0
        for u, v in scheduler.new_pass():
            nu = adjacency.get(u)
            nv = adjacency.get(v)
            if nu is not None and nv is not None:
                small, large = (nu, nv) if len(nu) <= len(nv) else (nv, nu)
                total += sum(1 for w in small if w in large)
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
            meter.allocate(2, "adjacency")
        return ExactCountResult(
            triangles=total,
            passes_used=scheduler.passes_used,
            space_words_peak=meter.peak_words,
        )
