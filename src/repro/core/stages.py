"""Round stages: every estimator pass as a (request, finish) pair.

A *stage* is one tape sweep a round is waiting on, held in executable
form instead of being run inline against a scheduler.  On the chunked
engines a stage carries the :class:`~repro.core.executor.PassPlan` set
that :func:`~repro.core.executor.run_plans` drives through one sweep; on
the pure-Python engine it carries a per-edge :class:`EdgeFold` instead.
Either way the stage's ``finish()`` reads the result once its sweep has
executed.

Separating *what a pass needs from the tape* (the stage) from *when the
tape is traversed* (the sweep) is what lets independent rounds compose:
:func:`execute_stage` runs one round's stage as its own sweep - exactly
the pre-stage behaviour of the sequential runners - while the k-deep
speculative driver (:mod:`repro.core.speculate`) hands the same-numbered
stages of any number of rounds to :func:`sweep_stages`, which serves them
with a **single** shared traversal.  Each stage still receives exactly the fold it would
have received alone (plans via the executor's per-plan partial streams,
folds via :func:`drive_folds`'s per-fold early-abandon), so results are
bit-identical whether a stage's sweep was private or shared.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..streams.multipass import PassScheduler
from ..types import Vertex
from . import engine


class RoundStage:
    """One tape sweep a round is waiting on, in executable form.

    Exactly one of ``plans`` (chunked engines) or ``fold`` (Python engine)
    is set.  ``passes`` is the logical-pass charge against the scheduler
    budget (defaults to ``len(plans)``; the fused pass-4/5 Python fold
    charges 2 for its single fold).  ``finish()`` is only valid after the
    stage's sweep has run.
    """

    __slots__ = ("plans", "fold", "passes", "_finish")

    def __init__(self, *, plans=None, fold=None, passes: Optional[int] = None, finish=None):
        self.plans = plans
        self.fold = fold
        self.passes = passes if passes is not None else (len(plans) if plans else 1)
        self._finish = finish

    def finish(self):
        """The stage result (valid only after its sweep has executed)."""
        return self._finish() if self._finish is not None else None


class EdgeFold:
    """Per-edge fold protocol for the pure-Python stage path.

    ``edge(u, v)`` folds one tape edge; ``done()`` declares the rest of
    the tape dead (only consulted when :attr:`can_finish_early` is set -
    the sweep driver skips the per-edge check otherwise, mirroring the
    reference loops that scan the full tape).
    """

    can_finish_early = False

    def edge(self, u: Vertex, v: Vertex) -> None:  # pragma: no cover - protocol
        raise NotImplementedError

    def done(self) -> bool:
        return False


class CallbackFold(EdgeFold):
    """Generic fold: replay every tape edge to a per-edge callback.

    The pure-Python mirror of :class:`~repro.core.kernels.IncidentEdgePlan`
    without the pre-filter: the callback ignores untracked endpoints, so
    feeding it the whole tape is the reference behaviour (and what the
    Python engine's plain pass loops always did).
    """

    __slots__ = ("_visit",)

    def __init__(self, visit) -> None:
        self._visit = visit

    def edge(self, u: Vertex, v: Vertex) -> None:
        self._visit(u, v)


def drive_folds(pass_iter, folds: List[EdgeFold]) -> None:
    """Feed one edge sweep to every fold, honoring early-finish hints.

    Each fold receives exactly the edge sequence it would have received
    from a dedicated sweep (a finished fold stops receiving edges, exactly
    like an abandoned pass); the sweep itself is abandoned once every fold
    is done.
    """
    active = [fold for fold in folds if not fold.done()]
    try:
        if not any(fold.can_finish_early for fold in active):
            for u, v in pass_iter:
                for fold in active:
                    fold.edge(u, v)
            return
        for u, v in pass_iter:
            finished = False
            for fold in active:
                fold.edge(u, v)
                finished = finished or (fold.can_finish_early and fold.done())
            if finished:
                active = [fold for fold in active if not fold.done()]
                if not active:
                    break  # every fold served: the rest of the sweep is dead tape
    finally:
        pass_iter.close()


def sweep_stages(
    scheduler: PassScheduler,
    stages: List[RoundStage],
    owners: Optional[List[str]] = None,
) -> None:
    """Execute the sweeps of ``stages`` as **one** physical tape traversal.

    All stages must be of one kind (all plan-backed or all fold-backed -
    guaranteed when they come from rounds running under the same engine);
    the logical-pass charge is the sum of the stages' charges, and the
    sweep is tagged with ``owners`` for the scheduler's committed/wasted
    accounting (the speculative window driver tags each shared sweep with
    the rounds whose stages rode it; see
    :meth:`~repro.streams.multipass.PassScheduler.discard_owner`).
    """
    passes = sum(stage.passes for stage in stages)
    if all(stage.plans is not None for stage in stages):
        from .executor import run_plans

        run_plans(
            scheduler,
            [plan for stage in stages for plan in stage.plans],
            chunk_size=engine.chunk_size(),
            passes=passes,
            owners=owners,
        )
        return
    if any(stage.plans is not None for stage in stages):
        raise ValueError("cannot fuse plan-backed and fold-backed stages in one sweep")
    drive_folds(
        scheduler.new_fused_pass(passes, owners=owners),
        [stage.fold for stage in stages],
    )


#: One owner-tagged unit of sweep demand: ``(owner, stage)``.  Stage
#: programs (:func:`repro.core.speculate.window_program`,
#: :func:`repro.core.driver.estimate_program`) yield lists of these; the
#: entity driving the programs decides which batches share a traversal.
TaggedStage = Tuple[str, RoundStage]


def sweep_tagged_stages(scheduler: PassScheduler, tagged: List[TaggedStage]) -> int:
    """Serve a batch of owner-tagged stages in the fewest possible sweeps.

    Unlike :func:`sweep_stages`, the batch may mix plan-backed and
    fold-backed stages (batches merged across independent jobs need not
    come from the same engine decision - chunked engines fall back to
    folds per-stream capability).  Stages are grouped by backing kind and
    each group rides one fused sweep tagged with its stages' owners.
    Returns the number of physical sweeps performed (1, or 2 for a mixed
    batch).
    """
    plan_group = [(owner, stage) for owner, stage in tagged if stage.plans is not None]
    fold_group = [(owner, stage) for owner, stage in tagged if stage.plans is None]
    sweeps = 0
    for group in (plan_group, fold_group):
        if group:
            sweep_stages(
                scheduler,
                [stage for _, stage in group],
                owners=[owner for owner, _ in group],
            )
            sweeps += 1
    return sweeps


def execute_stage(scheduler: PassScheduler, stage: RoundStage):
    """Run one stage as its own sweep and return its result."""
    sweep_stages(scheduler, [stage])
    return stage.finish()
