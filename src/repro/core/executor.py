"""The sharded pass executor: one execution spine for every chunked pass.

Every pass of the estimator stack is a fold with three separable parts:

* a tiny **spec** - the pass's read-only state (sorted position arrays,
  tracked-id tables, packed watch keys), cheap to pickle;
* a pure **kernel** - a function of ``(spec, start_row, rows)`` mapping one
  contiguous block of tape rows (with its global row offset) to a small
  *partial* result, touching no shared state and consuming no randomness;
* an ordered **absorb** step - folding partials back into the pass's
  mutable state *in stream order*, which is where anything sequential
  (RNG replay on matched edges, occurrence numbering) lives.

:class:`PassPlan` is the declarative description of one such pass and
:func:`run_plan` is the single executor both runners use.  It has two
strategies:

* **serial** (``workers <= 1``) - one :meth:`PassScheduler.new_pass_chunks`
  sweep in-process, kernel per chunk, absorb immediately, honoring the
  plan's early-abandon hints (``finished`` / ``stop_row``) exactly like
  the pre-executor kernels did;
* **sharded** (``workers > 1``) - the same chunk stream is split into
  batches of consecutive chunks and dealt round-robin to a process pool
  (one kernel invocation per batch - the kernels being pure functions of
  ``(rows, spec)`` is what makes this safe); the parent absorbs the
  returned partials strictly in submission order, so the fold sees the
  identical sequence it would have seen serially and results are
  bit-identical for the same seeds, whatever the worker count.

The merge discipline per partial type (summed ``bincount`` degree tables,
position/occurrence hits applied in stream-offset order, unioned
packed-key watch hits) lives in the concrete plans in
:mod:`repro.core.kernels`; this module only guarantees the ordering and
the process plumbing.

Pass accounting is unchanged: the parent drives the one sanctioned
``new_pass_chunks`` iterator per plan, so a sharded pass is still exactly
one pass against the :class:`~repro.streams.multipass.PassScheduler`
budget.  Worker pools are created lazily per worker count, reused across
passes and runs, and torn down at interpreter exit (or explicitly via
:func:`shutdown_pools`).
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from . import engine

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

    from ..streams.multipass import PassScheduler

#: Batches dealt to the pool are padded with consecutive chunks until they
#: reach at least this many rows, so tiny chunk sizes do not drown the pool
#: in per-task overhead.  Tests shrink it to force multi-batch merges.
TASK_ROWS_FLOOR = 16384

#: Upper bound on in-flight pool tasks, as a multiple of the worker count.
#: Bounds parent-side memory while keeping every worker busy.
INFLIGHT_PER_WORKER = 2


class PassPlan(ABC):
    """Declarative description of one chunked pass (see module docstring).

    Concrete plans set :attr:`kernel` to a *module-level* function (it is
    pickled by reference into worker processes) and implement the
    parent-side fold.  ``absorb`` is always called in stream order; plans
    whose partials are commutative (summed counts, unioned hits) simply
    don't depend on that, while order-sensitive plans (occurrence
    numbering, RNG replay) rely on it.
    """

    #: Human-readable pass label, for diagnostics.
    name: str = "pass"

    #: ``kernel(spec, start_row, rows) -> partial | None``; must be a
    #: module-level function (picklable by reference) and pure: no shared
    #: state, no randomness, output a function of its arguments only.
    kernel: Callable[[Any, int, "numpy.ndarray"], Any]

    @abstractmethod
    def spec(self) -> Any:
        """The small picklable read-only state shipped to every kernel call."""

    @abstractmethod
    def absorb(self, partial: Any) -> None:
        """Fold one non-``None`` partial into the plan state (stream order)."""

    def finished(self) -> bool:
        """True once the rest of the tape is dead for this pass (early stop)."""
        return False

    def stop_row(self) -> Optional[int]:
        """Static row bound past which the tape is dead, or ``None``."""
        return None

    @abstractmethod
    def result(self) -> Any:
        """The pass result, read after the scan completes or abandons."""


#: Worker-side cache of decoded specs, keyed by the parent's pass token.
#: Every task ships the pre-pickled spec bytes (a memcpy, not a fresh
#: serialization), but each worker decodes them only once per pass.
_SPEC_CACHE_SLOTS = 8
_worker_specs: "OrderedDict[str, Any]" = OrderedDict()

#: Parent-side pass-token source (unique per process + pass).
_pass_tokens = itertools.count()


def _decode_spec(token: str, spec_bytes: bytes) -> Any:
    spec = _worker_specs.get(token)
    if token not in _worker_specs:
        spec = pickle.loads(spec_bytes)
        _worker_specs[token] = spec
        while len(_worker_specs) > _SPEC_CACHE_SLOTS:
            _worker_specs.popitem(last=False)
    return spec


def _run_shard(kernel: Callable, token: str, spec_bytes: bytes, start_row: int, blocks: List) -> Any:
    """Pool task: one kernel invocation over a batch of consecutive chunks."""
    import numpy as np

    spec = _decode_spec(token, spec_bytes)
    rows = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=0)
    return kernel(spec, start_row, rows)


_POOLS: Dict[int, Any] = {}


def _get_pool(workers: int):
    """The shared process pool for ``workers``, created on first use.

    Workers use the ``spawn`` start method: passes may have a prefetch
    reader thread live (:class:`~repro.streams.file.FileEdgeStream`), and
    forking a multi-threaded parent can hand a child a lock frozen in the
    held state.  Spawned workers cost a fresh interpreter each, but pools
    are cached for the life of the process, so the cost is paid once per
    worker count.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every lazily-created worker pool (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def run_plan(
    scheduler: "PassScheduler",
    plan: PassPlan,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> Any:
    """Execute ``plan`` as exactly one pass of ``scheduler``.

    ``chunk_size`` and ``workers`` default to the global engine policy
    (:func:`repro.core.engine.chunk_size` /
    :func:`repro.core.engine.effective_workers`).  With ``workers > 1``
    the pass is sharded across the process pool; results are bit-identical
    to the serial strategy either way.
    """
    chunk = chunk_size if chunk_size is not None else engine.chunk_size()
    shard_count = workers if workers is not None else engine.effective_workers()
    if shard_count > 1:
        return _run_sharded(scheduler, plan, chunk, shard_count)
    return _run_serial(scheduler, plan, chunk)


def _run_serial(scheduler: "PassScheduler", plan: PassPlan, chunk: int) -> Any:
    spec = plan.spec()
    kernel = plan.kernel
    stop = plan.stop_row()
    offset = 0
    chunks = scheduler.new_pass_chunks(chunk)
    try:
        for block in chunks:
            partial = kernel(spec, offset, block)
            offset += len(block)
            if partial is not None:
                plan.absorb(partial)
            if plan.finished():
                break  # the rest of the pass is dead tape
            if stop is not None and offset >= stop:
                break
    finally:
        chunks.close()
    return plan.result()


def _run_sharded(scheduler: "PassScheduler", plan: PassPlan, chunk: int, workers: int) -> Any:
    if plan.finished():
        # Nothing to scan (e.g. an empty tracked set): the serial strategy
        # already implements the one-chunk open-and-abandon semantics.
        return _run_serial(scheduler, plan, chunk)
    pool = _get_pool(workers)
    token = f"{os.getpid()}:{next(_pass_tokens)}"
    spec_bytes = pickle.dumps(plan.spec(), protocol=pickle.HIGHEST_PROTOCOL)
    kernel = plan.kernel
    stop = plan.stop_row()
    task_rows = max(chunk, TASK_ROWS_FLOOR)
    max_inflight = max(2, INFLIGHT_PER_WORKER * workers)

    window: deque = deque()  # in-flight futures, strictly FIFO = stream order
    batch: List = []
    batch_rows = 0
    batch_start = 0
    offset = 0
    done = False

    def submit_batch() -> None:
        nonlocal batch, batch_rows
        window.append(pool.submit(_run_shard, kernel, token, spec_bytes, batch_start, batch))
        batch = []
        batch_rows = 0

    def absorb_next() -> None:
        nonlocal done
        partial = window.popleft().result()
        if done:
            return  # already finished: discard results past the stop point
        if partial is not None:
            plan.absorb(partial)
        if plan.finished():
            done = True

    chunks = scheduler.new_pass_chunks(chunk)
    try:
        try:
            for block in chunks:
                if not batch:
                    batch_start = offset
                batch.append(block)
                batch_rows += len(block)
                offset += len(block)
                if batch_rows >= task_rows:
                    submit_batch()
                    while len(window) >= max_inflight:
                        absorb_next()
                    # Opportunistic drain: fold whatever already completed
                    # so early-abandon can trigger before the window fills.
                    while window and not done and window[0].done():
                        absorb_next()
                if done:
                    break
                if stop is not None and offset >= stop:
                    break
            if batch and not done:
                submit_batch()
        finally:
            chunks.close()
        while window:
            if done:
                # The remaining tasks scan dead tape the serial path would
                # never have read: cancel what hasn't started and discard
                # results *and failures* of what has - a dead-tape worker
                # error must not fail a pass whose result is complete.
                future = window.popleft()
                if not future.cancel():
                    try:
                        future.result()
                    except Exception:
                        pass
                continue
            absorb_next()
    except BaseException:
        for future in window:  # abort: drop whatever is still in flight
            future.cancel()
        window.clear()
        raise
    return plan.result()
