"""The sharded pass executor: one execution spine for every chunked pass.

Every pass of the estimator stack is a fold with three separable parts:

* a tiny **spec** - the pass's read-only state (sorted position arrays,
  tracked-id tables, packed watch keys), cheap to pickle;
* a pure **kernel** - a function of ``(spec, start_row, rows)`` mapping one
  contiguous block of tape rows (with its global row offset) to a small
  *partial* result, touching no shared state and consuming no randomness;
* an ordered **absorb** step - folding partials back into the pass's
  mutable state *in stream order*, which is where anything sequential
  (RNG replay on matched edges, occurrence numbering) lives.

:class:`PassPlan` is the declarative description of one such pass.
:func:`run_plans` is the executor: it drives any set of *mutually
independent* plans through **one** sweep of the tape (a fused pass group
on the :class:`~repro.streams.multipass.PassScheduler`: one logical pass
per plan, one physical sweep), and :func:`run_plan` is its single-plan
case.  Two strategies:

* **serial** (``workers <= 1``) - one chunk sweep in-process; every still-
  active plan's kernel runs on the shared chunk and absorbs immediately,
  honoring each plan's early-abandon hints (``finished`` / ``stop_row``)
  exactly like the pre-executor kernels did.  The sweep ends as soon as
  every plan is done;
* **sharded** (``workers > 1``) - the same chunk stream is split into
  batches of consecutive chunks and dealt round-robin to a process pool;
  each task carries the specs of all still-active plans and returns a
  tuple of partials (the kernels being pure functions of ``(rows, spec)``
  is what makes this safe).  The parent absorbs returned partials strictly
  in submission order per plan, so every fold sees the identical sequence
  it would have seen serially and results are bit-identical to the serial
  strategy - and to per-plan :func:`run_plan` execution - for the same
  seeds, whatever the worker count.

Sharded block transport is **zero-copy by default**: chunk *handles* from
the scheduler either name row ranges of a stream-owned shared-memory
segment (:class:`~repro.streams.memory.InMemoryEdgeStream` mirrors its
backing array once, then every task ships ``(name, start, rows)``
descriptors and workers map the rows directly), or carry parsed blocks
(:class:`~repro.streams.file.FileEdgeStream`) which the executor spools
into per-task segments - one memcpy instead of a pickle round trip.
``REPRO_SHM=0``, or any shared-memory failure, falls back to pickled
blocks with identical results (see :mod:`repro.streams.shm`).

The merge discipline per partial type (summed ``bincount`` degree tables,
position/occurrence hits applied in stream-offset order, unioned
packed-key watch hits) lives in the concrete plans in
:mod:`repro.core.kernels`; this module only guarantees the ordering and
the process plumbing.

Pass accounting: the parent drives the one sanctioned scheduler iterator
per plan group, so a sharded pass is still exactly one logical pass - and
a fused group of ``n`` plans is ``n`` logical passes on **one** physical
sweep - against the :class:`~repro.streams.multipass.PassScheduler`
budget.  Worker pools are created lazily per worker count, reused across
passes and runs, and torn down at interpreter exit (or explicitly via
:func:`shutdown_pools`).

**Fault tolerance** (see :mod:`repro.core.faults`): because kernels are
pure and absorption is stream-ordered, a failed task can simply be rerun -
the recomputed partial is bit-identical to what the first attempt would
have produced.  ``_run_sharded`` keeps every in-flight task resubmittable
(its blocks and spool segment live until the partial is absorbed) and
applies the active :class:`~repro.core.faults.RetryPolicy`: a broken pool
is invalidated and respawned (so one crashed worker never poisons later
``run_plans`` calls), a task timeout kills the hung workers before the
respawn, and an shm attach failure retries and then falls back to pickled
blocks.  When retries exhaust, the sweep *degrades* instead of failing:
the remaining tasks run in-process through the identical kernel/absorb
path, which preserves bit-identity and costs no extra tape sweeps.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import time
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from concurrent.futures import BrokenExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..errors import ShmTransportError
from ..streams import shm
from . import engine, faults

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

    from ..streams.multipass import PassScheduler

#: Batches dealt to the pool are padded with consecutive chunks until they
#: reach at least this many rows, so tiny chunk sizes do not drown the pool
#: in per-task overhead.  Tests shrink it to force multi-batch merges.
TASK_ROWS_FLOOR = 16384

#: Upper bound on in-flight pool tasks, as a multiple of the worker count.
#: Bounds parent-side memory while keeping every worker busy.
INFLIGHT_PER_WORKER = 2


class PassPlan(ABC):
    """Declarative description of one chunked pass (see module docstring).

    Concrete plans set :attr:`kernel` to a *module-level* function (it is
    pickled by reference into worker processes) and implement the
    parent-side fold.  ``absorb`` is always called in stream order; plans
    whose partials are commutative (summed counts, unioned hits) simply
    don't depend on that, while order-sensitive plans (occurrence
    numbering, RNG replay) rely on it.

    ``finished()`` returning ``True`` declares the rest of the tape dead
    *and* any not-yet-absorbed partials discardable - the executor may
    skip kernel invocations for a finished plan entirely.
    """

    #: Human-readable pass label, for diagnostics.
    name: str = "pass"

    #: ``kernel(spec, start_row, rows) -> partial | None``; must be a
    #: module-level function (picklable by reference) and pure: no shared
    #: state, no randomness, output a function of its arguments only.
    kernel: Callable[[Any, int, "numpy.ndarray"], Any]

    @abstractmethod
    def spec(self) -> Any:
        """The small picklable read-only state shipped to every kernel call."""

    @abstractmethod
    def absorb(self, partial: Any) -> None:
        """Fold one non-``None`` partial into the plan state (stream order)."""

    def finished(self) -> bool:
        """True once the rest of the tape is dead for this pass (early stop)."""
        return False

    def stop_row(self) -> Optional[int]:
        """Static row bound past which the tape is dead, or ``None``."""
        return None

    @abstractmethod
    def result(self) -> Any:
        """The pass result, read after the scan completes or abandons."""


#: Worker-side cache of decoded spec tuples, keyed by the parent's group
#: token.  Every task ships the pre-pickled spec bytes (a memcpy, not a
#: fresh serialization), but each worker decodes them only once per group.
_SPEC_CACHE_SLOTS = 8
_worker_specs: "OrderedDict[str, Any]" = OrderedDict()

#: Parent-side group-token source (unique per process + pass group).
_group_tokens = itertools.count()


def _decode_specs(token: str, spec_bytes: bytes) -> Any:
    specs = _worker_specs.get(token)
    if token not in _worker_specs:
        specs = pickle.loads(spec_bytes)
        _worker_specs[token] = specs
        while len(_worker_specs) > _SPEC_CACHE_SLOTS:
            _worker_specs.popitem(last=False)
    return specs


def _run_shard(
    kernels: Sequence[Callable],
    token: str,
    spec_bytes: bytes,
    active: Sequence[int],
    start_row: int,
    blocks: List,
    inject: Optional[str] = None,
) -> tuple:
    """Pool task: one kernel invocation per active plan over a chunk batch.

    ``blocks`` entries are raw ndarrays or shared-memory descriptors (see
    :func:`repro.streams.shm.resolve_block`); ``active`` indexes into the
    group's plans and the returned tuple of partials aligns with it.

    ``inject`` carries a parent-side fault-injection verdict (decided once
    per task by :func:`repro.core.faults.task_injection`; resubmissions
    ship ``None``): ``"crash"`` kills the worker process, ``"hang"`` makes
    the task overstay any per-task timeout, ``"shm"`` simulates a failed
    segment attach.
    """
    import numpy as np

    if inject == "crash":
        os._exit(1)
    elif inject == "hang":
        time.sleep(3600)
    elif inject == "shm":
        raise ShmTransportError(f"injected fault: {faults.SHM_ATTACH}")
    specs = _decode_specs(token, spec_bytes)
    arrays = [shm.resolve_block(block) for block in blocks]
    rows = arrays[0] if len(arrays) == 1 else np.concatenate(arrays, axis=0)
    return tuple(kernels[i](specs[i], start_row, rows) for i in active)


_POOLS: Dict[int, Any] = {}


def _get_pool(workers: int):
    """The shared process pool for ``workers``, created on first use.

    Workers use the ``spawn`` start method: passes may have a prefetch
    reader thread live (:class:`~repro.streams.file.FileEdgeStream`), and
    forking a multi-threaded parent can hand a child a lock frozen in the
    held state.  Spawned workers cost a fresh interpreter each, but pools
    are cached for the life of the process, so the cost is paid once per
    worker count.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=multiprocessing.get_context("spawn")
        )
        _POOLS[workers] = pool
    return pool


def _invalidate_pool(workers: int, pool: Any = None, kill: bool = False) -> None:
    """Drop (and shut down) the cached pool for ``workers``.

    Called when a pool is observed broken (``BrokenProcessPool``) or hung
    (task timeout) so the *next* ``_get_pool`` call spawns a fresh one -
    a crashed worker must never poison subsequent ``run_plans`` calls.
    ``kill=True`` terminates the worker processes first: a hung worker
    never observes ``shutdown()``, and waiting on it would hang the parent
    (including the ``atexit`` hook) forever.
    """
    cached = _POOLS.get(workers)
    if pool is None:
        pool = cached
    if cached is not None and cached is pool:
        _POOLS.pop(workers, None)
    if pool is None:
        return
    if kill:
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Tear down every lazily-created worker pool (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def run_plan(
    scheduler: "PassScheduler",
    plan: PassPlan,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> Any:
    """Execute ``plan`` as exactly one pass (and one sweep) of ``scheduler``.

    ``chunk_size`` and ``workers`` default to the global engine policy
    (:func:`repro.core.engine.chunk_size` /
    :func:`repro.core.engine.effective_workers`).  With ``workers > 1``
    the pass is sharded across the process pool; results are bit-identical
    to the serial strategy either way.
    """
    return run_plans(scheduler, [plan], chunk_size=chunk_size, workers=workers)[0]


def run_plans(
    scheduler: "PassScheduler",
    plans: Sequence[PassPlan],
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    passes: Optional[int] = None,
    owners: Optional[Sequence[str]] = None,
) -> List[Any]:
    """Execute independent ``plans`` through **one** sweep of ``scheduler``.

    Opens ``len(plans)`` logical passes served by a single physical sweep
    (the scheduler's fused pass group), so ``n`` independent scans cost one
    traversal of the tape instead of ``n``.  The plans must be mutually
    independent: each receives exactly the kernel-partial fold it would
    have received from its own :func:`run_plan` sweep, so per-plan results
    are bit-identical to per-plan execution at any worker count.  Returns
    the plans' results in order.

    ``passes`` overrides the logical-pass charge for the group (defaults to
    ``len(plans)``); ``owners`` tags the sweep for the scheduler's
    committed/wasted accounting (the speculative round-pair driver tags
    shared sweeps with the rounds they serve).
    """
    if not plans:
        raise ValueError("run_plans needs at least one plan")
    chunk = chunk_size if chunk_size is not None else engine.chunk_size()
    shard_count = workers if workers is not None else engine.effective_workers()
    charged = passes if passes is not None else len(plans)
    if shard_count > 1 and not all(plan.finished() for plan in plans):
        return _run_sharded(scheduler, plans, chunk, shard_count, charged, owners)
    return _run_serial(scheduler, plans, chunk, charged, owners)


class _PlanState:
    """Executor-side tracking of one plan inside a sweep."""

    __slots__ = ("plan", "stop", "done")

    def __init__(self, plan: PassPlan) -> None:
        self.plan = plan
        self.stop = plan.stop_row()
        self.done = plan.finished() or self.stop == 0

    def absorb(self, partial: Any, offset_after: int) -> None:
        """Fold one partial (stream order) and refresh the done flag."""
        if self.done:
            return  # finished plans discard any late partials
        if partial is not None:
            self.plan.absorb(partial)
        if self.plan.finished() or (self.stop is not None and offset_after >= self.stop):
            self.done = True


def _run_serial(
    scheduler: "PassScheduler",
    plans: Sequence[PassPlan],
    chunk: int,
    passes: int,
    owners: Optional[Sequence[str]] = None,
) -> List[Any]:
    states = [_PlanState(plan) for plan in plans]
    specs = [plan.spec() for plan in plans]
    offset = 0
    chunks = scheduler.new_fused_pass_chunks(chunk, passes=passes, owners=owners)
    try:
        for block in chunks:
            offset += len(block)
            for state, spec in zip(states, specs):
                if not state.done:
                    state.absorb(state.plan.kernel(spec, offset - len(block), block), offset)
            if all(state.done for state in states):
                break  # the rest of the sweep is dead tape for every plan
    finally:
        chunks.close()
    return [plan.result() for plan in plans]


class _ShardTask:
    """One sharded chunk batch, kept resubmittable until absorbed.

    The blocks (and the per-task spool segment, when one was created) stay
    alive until the task's partial is folded in, so any failed attempt can
    be rerun with the identical inputs - the retry invariant of
    :mod:`repro.core.faults`.  ``inject`` is the parent-side fault verdict
    for the *first* submission only.
    """

    __slots__ = ("future", "active", "start", "end", "segment", "blocks", "attempts", "inject")

    def __init__(
        self,
        active: tuple,
        start: int,
        end: int,
        segment: Any,
        blocks: List,
        inject: Optional[str],
    ) -> None:
        self.future: Any = None
        self.active = active
        self.start = start
        self.end = end
        self.segment = segment
        self.blocks = blocks
        self.attempts = 0
        self.inject = inject


def _run_sharded(
    scheduler: "PassScheduler",
    plans: Sequence[PassPlan],
    chunk: int,
    workers: int,
    passes: int,
    owners: Optional[Sequence[str]] = None,
) -> List[Any]:
    policy = faults.active_policy()
    pool = _get_pool(workers)
    token = f"{os.getpid()}:{next(_group_tokens)}"
    spec_bytes = pickle.dumps(
        tuple(plan.spec() for plan in plans), protocol=pickle.HIGHEST_PROTOCOL
    )
    kernels = tuple(plan.kernel for plan in plans)
    states = [_PlanState(plan) for plan in plans]
    task_rows = max(chunk, TASK_ROWS_FLOOR)
    max_inflight = max(2, INFLIGHT_PER_WORKER * workers)

    # In-flight tasks, strictly FIFO = stream order; absorption happens
    # only at the head, so the fold sequence matches serial execution.
    window: "deque[_ShardTask]" = deque()
    batch_refs: List = []  # shared-memory descriptors (stream-owned segments)
    batch_blocks: List = []  # raw ndarrays (pickled or spooled per task)
    batch_rows = 0
    batch_start = 0
    offset = 0
    inline = False  # degraded: remaining tasks run in-process
    pool_strikes = 0  # pool-level breakages observed during this sweep
    strike_cap = max(2, policy.max_attempts)

    def absorb_task(task: _ShardTask, partials: tuple) -> None:
        if task.segment is not None:
            task.segment.destroy()
            task.segment = None
        for i, partial in zip(task.active, partials):
            states[i].absorb(partial, task.end)

    def drain_inline() -> None:
        # The degraded path: compute each pending task in-process through
        # the identical kernel/absorb sequence - bit-identical results,
        # no further pool exposure, no extra tape sweeps.  Tasks stay in
        # the window until absorbed so the cleanup path owns their spools.
        while window:
            task = window[0]
            partials = _run_shard(kernels, token, spec_bytes, task.active, task.start, task.blocks)
            window.popleft()
            absorb_task(task, partials)

    def submit(task: _ShardTask) -> None:
        inject, task.inject = task.inject, None
        task.future = pool.submit(
            _run_shard, kernels, token, spec_bytes, task.active, task.start, task.blocks, inject
        )

    def rebuild_pool(kill: bool = False) -> None:
        nonlocal pool
        _invalidate_pool(workers, pool, kill=kill)
        pool = _get_pool(workers)

    def resubmit_pending() -> None:
        # After a pool rebuild: completed results survived the breakage,
        # everything else reruns (FIFO, so stream order is preserved).
        for task in window:
            future = task.future
            if future is not None and future.done() and future.exception() is None:
                continue
            submit(task)

    def degrade_serial(site: str, attempts: int, cause: BaseException, pending=None) -> None:
        nonlocal inline
        inline = True
        faults.degrade(faults.ACTION_SERIAL, site, attempts, cause)
        if pending is not None:
            window.append(pending)
        drain_inline()

    def dispatch(task: _ShardTask) -> None:
        nonlocal pool_strikes
        if inline:
            window.append(task)
            drain_inline()
            return
        while True:
            try:
                submit(task)
            except BrokenExecutor as exc:
                # A pool broken *at submit* (e.g. poisoned by an earlier
                # run with retries disabled): rebuild and try again, up to
                # the policy bound, then finish the sweep in-process.
                pool_strikes += 1
                task.attempts += 1
                rebuild_pool()
                if pool_strikes >= strike_cap or task.attempts >= policy.max_attempts:
                    degrade_serial(faults.WORKER_CRASH, task.attempts, exc, pending=task)
                    return
                resubmit_pending()
                continue
            window.append(task)
            return

    def handle_failure(task: _ShardTask, exc: BaseException) -> None:
        """Recover the window head's failed attempt, or re-raise.

        Retries leave the head task in the window with a fresh future;
        exhausted retries step down a tier (serial execution for crashes
        and timeouts, pickled blocks for shm failures) and keep going.
        Anything not classified as recoverable - kernel bugs above all -
        propagates unchanged.
        """
        nonlocal pool_strikes
        if isinstance(exc, BrokenExecutor):
            task.attempts += 1
            pool_strikes += 1
            rebuild_pool()
            if task.attempts >= policy.max_attempts or pool_strikes >= strike_cap:
                degrade_serial(faults.WORKER_CRASH, task.attempts, exc)
                return
            time.sleep(policy.backoff_delay(task.attempts))
            resubmit_pending()
        elif isinstance(exc, TimeoutError):
            task.attempts += 1
            # A hung worker never observes shutdown(); kill the processes
            # before respawning or the parent would wait on them forever.
            rebuild_pool(kill=True)
            if task.attempts >= policy.max_attempts:
                degrade_serial(faults.TASK_TIMEOUT, task.attempts, exc)
                return
            time.sleep(policy.backoff_delay(task.attempts))
            resubmit_pending()
        elif isinstance(exc, ShmTransportError):
            task.attempts += 1
            if task.attempts >= policy.max_attempts:
                # Degrade the transport, not the executor: materialize the
                # rows parent-side, resubmit them pickled, and stop minting
                # new descriptors for the rest of the process run.
                import numpy as np

                materialized = [np.array(shm.resolve_block(b), copy=True) for b in task.blocks]
                if task.segment is not None:
                    task.segment.destroy()
                    task.segment = None
                task.blocks = materialized
                shm.disable_shm()
                faults.degrade(faults.ACTION_PICKLE, faults.SHM_ATTACH, task.attempts, exc)
                submit(task)
                return
            time.sleep(policy.backoff_delay(task.attempts))
            submit(task)
        else:
            raise exc

    def absorb_next() -> None:
        task = window[0]
        try:
            if policy.timeout is not None:
                partials = task.future.result(timeout=policy.timeout)
            else:
                partials = task.future.result()
        except (BrokenExecutor, TimeoutError, ShmTransportError) as exc:
            handle_failure(task, exc)
            return
        window.popleft()
        absorb_task(task, partials)

    def flush_batch() -> None:
        nonlocal batch_refs, batch_blocks, batch_rows
        active = tuple(i for i, state in enumerate(states) if not state.done)
        blocks: List = shm.coalesce_refs(batch_refs)
        segment = None
        if batch_blocks:
            segment = shm.new_segment_from_blocks(batch_blocks)
            if segment is not None:
                blocks.append(segment.block_ref(0, segment.rows))
            else:  # shared memory unavailable: pickle the rows
                blocks.extend(batch_blocks)
        task = _ShardTask(
            active,
            batch_start,
            batch_start + batch_rows,
            segment,
            blocks,
            faults.task_injection(),
        )
        batch_refs = []
        batch_blocks = []
        batch_rows = 0
        try:
            dispatch(task)
        except BaseException:
            # A task that never reached the window (a non-pool submit
            # failure) would otherwise orphan its freshly spooled segment:
            # every error path below releases only window-tracked spools.
            if task.segment is not None and task not in window:
                task.segment.destroy()
            raise

    handles = scheduler.new_pass_chunk_handles(chunk, passes=passes, owners=owners)
    try:
        try:
            for handle in handles:
                if not batch_rows:
                    batch_start = offset
                if handle.ref is not None:
                    batch_refs.append(handle.ref)
                else:
                    batch_blocks.append(handle.block)
                batch_rows += handle.rows
                offset += handle.rows
                if batch_rows >= task_rows:
                    flush_batch()
                    while len(window) >= max_inflight:
                        absorb_next()
                    # Opportunistic drain: fold whatever already completed
                    # so early-abandon can trigger before the window fills.
                    while window and window[0].future is not None and window[0].future.done():
                        absorb_next()
                if all(state.done for state in states):
                    break
                stops = [state.stop for state in states if not state.done]
                if all(stop is not None for stop in stops) and offset >= max(stops):
                    break
            if batch_rows and not all(state.done for state in states):
                flush_batch()
        finally:
            handles.close()
        while window:
            if all(state.done for state in states):
                # The remaining tasks scan dead tape a per-plan sweep would
                # never have read: cancel what hasn't started and discard
                # results *and failures* of what has - a dead-tape worker
                # error must not fail a pass group whose results are
                # complete.
                task = window.popleft()
                try:
                    future = task.future
                    if future is not None and not future.cancel():
                        try:
                            future.result(timeout=policy.timeout)
                        except TimeoutError:
                            # Don't leave a hung worker behind the next
                            # sweep's submissions (or the exit hook).
                            rebuild_pool(kill=True)
                        except Exception:
                            pass
                finally:
                    # Release the spool even if waiting on the dead-tape
                    # task re-raised something beyond Exception (e.g. an
                    # interrupt): once popped, no other path frees it.
                    if task.segment is not None:
                        task.segment.destroy()
                continue
            absorb_next()
    except BaseException:
        for task in window:  # abort: drop what's in flight
            if task.future is not None:
                task.future.cancel()
            if task.segment is not None:
                task.segment.destroy()
        window.clear()
        raise
    return [plan.result() for plan in plans]
