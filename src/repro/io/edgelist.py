"""Reading and writing whitespace-separated edge-list files.

The format is the SNAP-style "u v" per line with ``#`` comments.  Reading
goes through :class:`~repro.graph.builder.GraphBuilder` so callers choose
how to treat the dirt real files contain (duplicates, self-loops); writing
emits canonical sorted order so files are deterministic and diff-friendly.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..errors import StreamError
from ..graph.adjacency import Graph
from ..graph.builder import GraphBuilder


def read_edgelist(
    path: str | os.PathLike[str],
    on_duplicate: str = "ignore",
    on_self_loop: str = "ignore",
) -> Graph:
    """Parse an edge-list file into a :class:`Graph`.

    Defaults are permissive (drop duplicates and self-loops) because that is
    what real edge-list files need; pass ``"error"`` policies for strict
    ingestion.  Malformed lines always raise
    :class:`~repro.errors.StreamError` with the offending location.

    The format is auto-detected by magic bytes: a binary ``.etape`` tape
    (:mod:`repro.streams.tape`) is ingested through its mapped payload,
    anything else parses as text.
    """
    builder = GraphBuilder(on_duplicate=on_duplicate, on_self_loop=on_self_loop)
    path = os.fspath(path)
    from ..streams.tape import MmapEdgeStream, is_tape

    if is_tape(path):
        for u, v in MmapEdgeStream(path):
            builder.add_edge(u, v)
        return builder.build()
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            parts = text.split()
            if len(parts) < 2:
                raise StreamError(f"{path}:{lineno}: expected 'u v', got {text!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise StreamError(f"{path}:{lineno}: non-integer vertex in {text!r}") from exc
            builder.add_edge(u, v)
    return builder.build()


def write_edgelist(
    graph: Graph, path: str | os.PathLike[str], header: Iterable[str] = ()
) -> None:
    """Write ``graph`` as a canonical sorted edge list.

    ``header`` lines are emitted as ``#`` comments at the top.
    """
    with open(os.fspath(path), "w", encoding="utf-8") as handle:
        for line in header:
            handle.write(f"# {line}\n")
        for u, v in graph.edge_list():
            handle.write(f"{u} {v}\n")
