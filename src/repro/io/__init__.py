"""Edge-list I/O: the bridge between files and graphs/streams."""

from .edgelist import read_edgelist, write_edgelist

__all__ = ["read_edgelist", "write_edgelist"]
