"""Result cache: repeated identical requests do zero sweeps.

Keys follow the snapshot module's config-hash discipline exactly: a
served result is indexed by ``(tape content fingerprint,
trajectory-relevant config hash, seed)``, where the config hash is
:func:`~repro.core.snapshot.config_hash` over the same document the
snapshot writer pins (:func:`~repro.core.driver._config_state` - seed,
epsilon, repetitions, mode, constants, hint, budgets, pass sharing,
plus kappa).  Anything outside that hash - engine mode, worker count,
fusing, speculation depth - cannot change the result (the bit-identity
contract), so requests differing only in those knobs correctly hit the
same entry.  The seed rides in the key twice (it is part of the hashed
document too); keeping it visible makes the key self-describing in
stats output.

The cache is in-memory and bounded (LRU): a daemon restart starts
cleanly cold, which the restart test pins.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.driver import EstimatorConfig, _config_state
from ..core.snapshot import config_hash

CacheKey = Tuple[str, str, int]

DEFAULT_CACHE_SIZE = 256


def cache_key(fingerprint_hex: str, config: EstimatorConfig, kappa: int) -> CacheKey:
    """The ``(tape fingerprint, trajectory config hash, seed)`` triple."""
    return (
        fingerprint_hex,
        config_hash(_config_state(config), kappa).hex(),
        config.seed,
    )


class ResultCache:
    """Thread-safe bounded LRU of served response documents."""

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[Dict[str, object]]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: CacheKey, document: Dict[str, object]) -> None:
        with self._lock:
            self._entries[key] = document
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
