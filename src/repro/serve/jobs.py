"""Jobs: one in-flight estimate request, with its completion plumbing.

A :class:`Job` owns a live :func:`~repro.core.driver.estimate_program`
generator and the synchronization around it: the scheduler thread
advances the program and calls :meth:`Job.complete` / :meth:`Job.fail`;
waiters (the daemon's request handlers, or a test) block on
:meth:`Job.wait`.  The job's owner prefix is what ties its stages to the
shared scheduler's accounting: every stage the program yields is tagged
``f"{prefix}..."``, so
:meth:`~repro.streams.multipass.PassScheduler.owner_report` recovers the
job's slice of the tape's physical sweeps.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Generator, Optional

from ..core.driver import ProgramOutcome


@dataclass(frozen=True)
class JobAccounting:
    """A completed job's slice of the shared tape's physical sweeps.

    ``sweeps_physical`` counts traversals that carried at least one of
    the job's stages; ``sweeps_shared`` those among them that also
    carried another job's (the savings vs. running solo);
    ``sweeps_committed`` / ``sweeps_wasted`` split the physical count by
    the job's own commit/discard verdicts.  Distinct from the result's
    solo-equivalent totals, which never see the sharing.
    """

    sweeps_physical: int
    sweeps_shared: int
    sweeps_committed: int
    sweeps_wasted: int


class Job:
    """One estimate request in flight on a tape's sweep scheduler."""

    def __init__(self, job_id: str, program: Generator) -> None:
        self.id = job_id
        #: Owner-tag prefix of every stage the program yields.
        self.owner_prefix = f"{job_id}/"
        self.program = program
        self.outcome: Optional[ProgramOutcome] = None
        self.accounting: Optional[JobAccounting] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def complete(self, outcome: ProgramOutcome, accounting: JobAccounting) -> None:
        self.outcome = outcome
        self.accounting = accounting
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job completes or fails; True unless timed out."""
        return self._done.wait(timeout)
