"""The serve wire vocabulary: JSON requests, responses, client helpers.

One request and one response are each a single JSON object.  Over the
unix socket they travel as JSON lines (many requests per connection);
over the localhost HTTP transport one request is the POST body and the
response the reply body.  Both transports speak the identical
vocabulary, defined here so the daemon, the clients, and the tests can
never diverge.

Requests::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "shutdown"}
    {"op": "estimate", "path": "graph.etape", "kappa": 5,
     "config": {"seed": 3, "epsilon": 0.25, ...}}

``config`` admits exactly the trajectory-relevant estimator fields
(:data:`CONFIG_FIELDS`); engine and robustness knobs are daemon-side
policy (results are bit-identical across them, so a client has nothing
to gain by setting them per-request).

Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": {"type": ..., "message": ...}}`` where ``type``
is the exception class name (``StreamError``, ``ParameterError``, ...).
An estimate response carries the full solo-equivalent result - estimate,
per-round trajectory with per-run estimates, pass/sweep accounting, and
``root_rng_sha256``, a digest of the final root-RNG state that lets a
client verify bit-identity against a solo run without shipping the whole
state - plus the job's share of the tape's physical sweeps.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from ..core.driver import EstimatorConfig, ProgramOutcome
from ..core.params import PlanConstants
from ..errors import ParameterError, ProtocolError
from ..rng import encode_state
from .jobs import JobAccounting

#: Estimator-config fields a request may set: exactly the
#: trajectory-relevant ones the cache key hashes.
CONFIG_FIELDS = (
    "seed",
    "epsilon",
    "repetitions",
    "mode",
    "constants",
    "t_hint",
    "max_rounds",
)

OPS = ("ping", "stats", "shutdown", "estimate")


def decode_request(raw: bytes) -> Dict[str, object]:
    """Parse one request; :class:`~repro.errors.ProtocolError` if malformed."""
    try:
        request = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(request).__name__}")
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {', '.join(OPS)}")
    return request


def estimate_params(request: Dict[str, object]) -> Tuple[str, int, EstimatorConfig]:
    """Extract ``(path, kappa, config)`` from an estimate request."""
    path = request.get("path")
    if not isinstance(path, str) or not path:
        raise ProtocolError("estimate request needs a non-empty string 'path'")
    kappa = request.get("kappa")
    if not isinstance(kappa, int) or isinstance(kappa, bool):
        raise ProtocolError("estimate request needs an integer 'kappa'")
    config = request.get("config", {})
    if not isinstance(config, dict):
        raise ProtocolError("'config' must be a JSON object")
    unknown = sorted(set(config) - set(CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(
            f"unknown config field(s) {', '.join(unknown)}; "
            f"requests may set: {', '.join(CONFIG_FIELDS)}"
        )
    kwargs = dict(config)
    constants = kwargs.get("constants")
    if constants is not None:
        try:
            kwargs["constants"] = PlanConstants(*constants)
        except TypeError as exc:
            raise ProtocolError(f"'constants' must be [c_r, c_ell, c_s]: {exc}") from exc
    try:
        return path, kappa, EstimatorConfig(**kwargs)
    except (TypeError, ParameterError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc


def root_rng_digest(root_state: tuple) -> str:
    """Stable digest of a root generator's final ``getstate()``."""
    encoded = json.dumps(encode_state(root_state), separators=(",", ":"))
    return hashlib.sha256(encoded.encode("ascii")).hexdigest()


def result_document(
    outcome: ProgramOutcome,
    accounting: Optional[JobAccounting],
    *,
    cached: bool,
    fingerprint_hex: str,
    job_id: Optional[str] = None,
) -> Dict[str, object]:
    """The estimate response body (also what the result cache stores)."""
    result = outcome.result
    document: Dict[str, object] = {
        "ok": True,
        "cached": cached,
        "estimate": result.estimate,
        "rounds": [
            {
                "t_guess": r.t_guess,
                "median_estimate": r.median_estimate,
                "accepted": r.accepted,
                "runs": [run.estimate for run in r.runs],
            }
            for r in result.rounds
        ],
        "passes_total": result.passes_total,
        "sweeps_total": result.sweeps_total,
        "sweeps_wasted": result.sweeps_wasted,
        "passes_wasted": result.passes_wasted,
        "space_words_peak": result.space_words_peak,
        "root_rng_sha256": root_rng_digest(outcome.root_state),
        "tape_fingerprint": fingerprint_hex,
    }
    if job_id is not None:
        document["job"] = job_id
    if accounting is not None:
        document["accounting"] = {
            "sweeps_physical": accounting.sweeps_physical,
            "sweeps_shared": accounting.sweeps_shared,
            "sweeps_committed": accounting.sweeps_committed,
            "sweeps_wasted": accounting.sweeps_wasted,
        }
    return document


def error_document(error: BaseException) -> Dict[str, object]:
    return {
        "ok": False,
        "error": {"type": type(error).__name__, "message": str(error)},
    }


def encode_response(document: Dict[str, object]) -> bytes:
    return json.dumps(document, separators=(",", ":")).encode("utf-8") + b"\n"


# ---------------------------------------------------------------------------
# blocking client helpers (tests, benches, scripts)


def request_unix(
    socket_path: str, request: Dict[str, object], timeout: float = 300.0
) -> Dict[str, object]:
    """Send one request over the unix socket; return the decoded response."""
    import socket

    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    return _decode_response(b"".join(chunks))


def request_http(
    port: int,
    request: Dict[str, object],
    host: str = "127.0.0.1",
    timeout: float = 300.0,
) -> Dict[str, object]:
    """POST one request to the localhost HTTP transport; return the response."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/",
            body=json.dumps(request).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        return _decode_response(connection.getresponse().read())
    finally:
        connection.close()


def _decode_response(raw: bytes) -> Dict[str, object]:
    try:
        response = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"response is not valid JSON: {raw[:200]!r}") from exc
    if not isinstance(response, dict):
        raise ProtocolError(f"response must be a JSON object, got {type(response).__name__}")
    return response
