"""Tape registry: one stream + sweep scheduler per distinct tape content.

Tapes are keyed by the snapshot module's
:func:`~repro.core.snapshot.stream_fingerprint` - a content hash, not a
path - so two requests naming different paths to identical bytes land on
the same entry and share sweeps.  Each entry owns its own open stream
and a started :class:`~repro.serve.scheduler.SweepScheduler`; streams
are never shared across entries, so each scheduler thread is the sole
reader of its tape (the sequential-pass discipline the stream layer
enforces).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List

from ..core.snapshot import stream_fingerprint
from ..streams import open_edge_stream
from ..streams.base import EdgeStream
from .scheduler import SweepScheduler


@dataclass
class TapeEntry:
    """One registered tape: its content hash, stream, and scheduler."""

    fingerprint_hex: str
    path: str  # first path this content was seen under (diagnostics only)
    stream: EdgeStream
    scheduler: SweepScheduler
    jobs_submitted: int = 0


class TapeRegistry:
    """Opens tapes on demand and hands out their shared schedulers."""

    def __init__(self, batch_window: float = 0.0) -> None:
        self._batch_window = batch_window
        self._lock = threading.Lock()
        self._entries: Dict[str, TapeEntry] = {}

    def entry_for(self, path: str) -> TapeEntry:
        """The entry serving ``path``'s content, opening it if new.

        Blocking (opens and fingerprints the file) - the daemon calls it
        off the event loop.  Raises the stream layer's typed errors
        (:class:`~repro.errors.StreamError` and friends) or ``OSError``
        for missing/unreadable inputs.
        """
        stream = open_edge_stream(path)
        fingerprint_hex = stream_fingerprint(stream).hex()
        with self._lock:
            entry = self._entries.get(fingerprint_hex)
            if entry is None:
                entry = TapeEntry(
                    fingerprint_hex=fingerprint_hex,
                    path=path,
                    stream=stream,
                    scheduler=SweepScheduler(
                        stream, batch_window=self._batch_window
                    ).start(),
                )
                self._entries[fingerprint_hex] = entry
            return entry

    def entries(self) -> List[TapeEntry]:
        with self._lock:
            return list(self._entries.values())

    def shutdown(self) -> None:
        """Drain and stop every tape's scheduler."""
        for entry in self.entries():
            entry.scheduler.shutdown()
