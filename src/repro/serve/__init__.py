"""Estimate serving: a daemon where concurrent jobs share tape sweeps.

The paper's estimator spends nearly all of its wall-clock in physical
tape sweeps, and the sweep machinery built for speculative round fusion
- owner-tagged shared sweeps, stage programs - generalizes directly from
"k speculative rounds of one estimate" to "k live rounds of independent
estimates".  This package is that generalization as a service:

* :mod:`repro.serve.scheduler` - the core: one
  :class:`~repro.serve.scheduler.SweepScheduler` per tape drives any
  number of live :func:`~repro.core.driver.estimate_program` generators
  in lockstep, merging their pending stage batches so one physical
  traversal serves every job's current stages;
* :mod:`repro.serve.registry` - tapes keyed by content fingerprint, so
  jobs naming different paths to identical bytes share a scheduler;
* :mod:`repro.serve.cache` - served results keyed by
  ``(tape fingerprint, trajectory config hash, seed)`` under the
  snapshot module's config-hash discipline: a repeated request does
  zero sweeps;
* :mod:`repro.serve.protocol` - the JSON request/response vocabulary
  (shared by the unix-socket and localhost-HTTP transports) plus small
  blocking client helpers;
* :mod:`repro.serve.daemon` - the asyncio server behind the
  ``repro serve`` CLI verb.

Every served estimate is bit-identical - estimate, rounds trajectory,
``passes_total``, final root-RNG state - to a solo run with the same
seed and config; sharing changes only which physical traversal carried
the stages.
"""

from .cache import ResultCache
from .daemon import EstimateServer, serve_forever
from .jobs import Job, JobAccounting
from .registry import TapeRegistry
from .scheduler import SweepScheduler

__all__ = [
    "EstimateServer",
    "Job",
    "JobAccounting",
    "ResultCache",
    "SweepScheduler",
    "TapeRegistry",
    "serve_forever",
]
