"""The cross-job sweep scheduler: many estimates, one tape traversal.

:class:`SweepScheduler` is the serving layer's core and the direct
generalization of the speculative window loop in
:mod:`repro.core.speculate`: where that loop drives the ``k`` pre-drawn
rounds of *one* estimate in lockstep, this one drives the live rounds of
*any number of independent estimates*.  Each job is an
:func:`~repro.core.driver.estimate_program` generator yielding
owner-tagged stage batches; at every step the scheduler merges the
pending batches of all live jobs and serves them with
:func:`~repro.core.stages.sweep_tagged_stages` - one fused physical
traversal per stage kind - on one shared
:class:`~repro.streams.multipass.PassScheduler`.

Why this is sound: a stage receives exactly the fold it would receive
from a dedicated sweep regardless of what else rides the traversal (the
bit-identity contract of :func:`~repro.core.stages.sweep_stages`), and
independent estimates share no state at all - so *any* set of live
stages may share a sweep, and each job's results are bit-identical to
its solo run.  The jobs need not be in the same round, or even the same
phase: job A's pass-4 stage can ride the same traversal as job B's
pass-1 stage.

Admission happens at step boundaries: a job submitted while a sweep is
in flight joins at the next step (its first-round stages co-ride from
then on).  Commit/discard is per job - each program books its own
verdicts and reports its discarded owner tags in its outcome, which the
scheduler applies to the shared ledger so the tape's physical
committed/wasted split stays truthful.

Failure behavior: a physical sweep that raises kills exactly the jobs
riding it - their programs are closed (running the round-program
cleanup) and the error is delivered to each waiter - while the
scheduler, the tape, and jobs admitted later keep working.  This is the
shared-fate contract documented in DESIGN.md: co-riding jobs share the
traversal, so they share its I/O fate.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional

from ..streams.base import EdgeStream
from ..streams.multipass import PassScheduler
from ..core.stages import TaggedStage, sweep_tagged_stages
from .jobs import Job, JobAccounting


class SweepScheduler:
    """Drives live estimate programs in lockstep over one shared tape.

    ``batch_window`` (seconds) is a small admission delay: when the tape
    is idle and a job arrives, the scheduler waits that long for
    co-riders before the first sweep, so two requests racing in over the
    daemon's sockets share traversals from step one.  Zero serves
    immediately.
    """

    def __init__(self, stream: EdgeStream, batch_window: float = 0.0) -> None:
        self._stream = stream
        self._scheduler = PassScheduler(stream)
        self._batch_window = batch_window
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[Job] = []
        self._active: Dict[Job, List[TaggedStage]] = {}
        self._stop = False
        self._jobs_completed = 0
        self._jobs_failed = 0
        self._thread: Optional[threading.Thread] = None

    # -- introspection ----------------------------------------------------

    @property
    def stream(self) -> EdgeStream:
        return self._stream

    @property
    def sweeps_physical(self) -> int:
        """Physical tape traversals performed over the scheduler's lifetime."""
        return self._scheduler.sweeps_used

    @property
    def jobs_completed(self) -> int:
        return self._jobs_completed

    @property
    def jobs_failed(self) -> int:
        return self._jobs_failed

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "SweepScheduler":
        """Start the sweep thread (idempotent); returns self."""
        with self._lock:
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="repro-sweeps", daemon=True
                )
                self._thread.start()
        return self

    def submit(self, job: Job) -> None:
        """Queue ``job`` for admission at the next step boundary."""
        with self._wake:
            if self._stop:
                raise RuntimeError("scheduler is shut down")
            self._pending.append(job)
            self._wake.notify()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop after draining the already-submitted jobs."""
        with self._wake:
            self._stop = True
            self._wake.notify()
        if self._thread is not None:
            self._thread.join(timeout)

    # -- the lockstep loop ------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._active and not self._stop:
                    self._wake.wait()
                if self._stop and not self._pending and not self._active:
                    return
                newly = self._pending
                self._pending = []
            if newly and not self._active and self._batch_window > 0:
                # Idle tape, fresh arrivals: give racing co-riders a beat
                # to land before committing the first traversal.
                time.sleep(self._batch_window)
                with self._wake:
                    newly += self._pending
                    self._pending = []
            for job in newly:
                self._admit(job)
            if self._active:
                self._step()

    def _admit(self, job: Job) -> None:
        try:
            batch = next(job.program)
        except StopIteration as stop:
            # A program can finish without ever needing the tape (m == 0).
            self._finish(job, stop.value)
        except BaseException as exc:  # noqa: BLE001 - delivered to the waiter
            self._fail(job, exc)
        else:
            self._active[job] = batch

    def _step(self) -> None:
        """Serve every live job's pending batch with shared traversals."""
        jobs = list(self._active)
        merged = [tagged for job in jobs for tagged in self._active[job]]
        try:
            sweep_tagged_stages(self._scheduler, merged)
        except BaseException as exc:  # noqa: BLE001 - shared-fate failure
            # The traversal died: every rider's stages are unserved, so
            # every rider fails.  Close the programs (running round-program
            # cleanup) and deliver the error; the scheduler itself and any
            # pending jobs continue.
            for job in jobs:
                del self._active[job]
                job.program.close()
                self._fail(job, exc)
            return
        for job in jobs:
            try:
                self._active[job] = job.program.send(None)
            except StopIteration as stop:
                del self._active[job]
                self._finish(job, stop.value)
            except BaseException as exc:  # noqa: BLE001
                del self._active[job]
                self._fail(job, exc)

    def _finish(self, job: Job, outcome) -> None:
        # The program's discard verdicts transfer to the shared ledger so
        # the tape's physical committed/wasted split stays truthful.
        for owner in outcome.discarded_owners:
            self._scheduler.discard_owner(owner)
        report = self._scheduler.owner_report(job.owner_prefix)
        self._jobs_completed += 1
        job.complete(
            outcome,
            JobAccounting(
                sweeps_physical=report.rode,
                sweeps_shared=report.shared,
                sweeps_committed=report.committed,
                sweeps_wasted=report.wasted,
            ),
        )

    def _fail(self, job: Job, error: BaseException) -> None:
        self._jobs_failed += 1
        job.fail(error)


_job_counter = itertools.count()


def next_job_id() -> str:
    """Process-unique job id; the owner prefix namespace on shared tapes."""
    return f"job{next(_job_counter)}"
