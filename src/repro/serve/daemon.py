"""The asyncio estimate-serving daemon behind ``repro serve``.

Transports: a unix stream socket speaking JSON lines (many requests per
connection) and/or a minimal localhost HTTP endpoint (one JSON request
per POST) - both carrying the vocabulary of
:mod:`repro.serve.protocol`.  The event loop only parses requests and
shuttles bytes; everything that touches a tape happens on worker
threads: opening/fingerprinting in :meth:`TapeRegistry.entry_for`, and
the sweeps themselves on each tape's
:class:`~repro.serve.scheduler.SweepScheduler` thread, with request
handlers parked on ``asyncio.to_thread(job.wait)`` until their job
completes.

Knobs (flag wins, then environment, then default):

* ``REPRO_SERVE_SOCKET`` - unix socket path (``--socket``);
* ``REPRO_SERVE_PORT`` - localhost TCP port for HTTP (``--port``;
  ``0`` picks an ephemeral port);
* ``REPRO_SERVE_CACHE_SIZE`` - result-cache entries (``--cache-size``,
  default 256);
* ``REPRO_SERVE_BATCH_WINDOW`` - seconds an idle tape waits for
  co-riding requests before its first sweep (``--batch-window``,
  default 0.05).

The result cache is in-memory only: a restarted daemon is cleanly cold
(the restart test pins this), and every miss recomputes through the
sweep scheduler - where concurrent identical requests still share their
traversals.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import threading
from typing import Dict, List, Optional

from ..core.driver import estimate_program
from ..errors import ReproError, ProtocolError, ServeError
from .cache import DEFAULT_CACHE_SIZE, ResultCache, cache_key
from .jobs import Job
from .protocol import (
    decode_request,
    encode_response,
    error_document,
    estimate_params,
    result_document,
)
from .registry import TapeRegistry
from .scheduler import next_job_id

DEFAULT_BATCH_WINDOW = 0.05
_MAX_HTTP_BODY = 1 << 20

#: Failures converted into ``{"ok": false}`` responses; anything else is
#: a daemon bug and propagates (closing the connection, not the daemon).
_REQUEST_ERRORS = (ReproError, OSError)


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return int(value)
    except ValueError as exc:
        raise ServeError(f"{name} must be an integer, got {value!r}") from exc


def _env_float(name: str, default: float) -> float:
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    try:
        return float(value)
    except ValueError as exc:
        raise ServeError(f"{name} must be a number, got {value!r}") from exc


class EstimateServer:
    """The serving daemon: registry + cache + per-tape sweep schedulers."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
        cache_size: Optional[int] = None,
        batch_window: Optional[float] = None,
    ) -> None:
        if socket_path is None:
            socket_path = os.environ.get("REPRO_SERVE_SOCKET", "").strip() or None
        if port is None:
            port = _env_int("REPRO_SERVE_PORT", None)
        if cache_size is None:
            cache_size = _env_int("REPRO_SERVE_CACHE_SIZE", DEFAULT_CACHE_SIZE)
        if batch_window is None:
            batch_window = _env_float("REPRO_SERVE_BATCH_WINDOW", DEFAULT_BATCH_WINDOW)
        self.socket_path = socket_path
        self.port = port
        self.host = host
        self.registry = TapeRegistry(batch_window=batch_window)
        self.cache = ResultCache(cache_size)
        self._servers: List[asyncio.AbstractServer] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown_requested: Optional[asyncio.Event] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        """Bind the configured transports (at least one is required)."""
        if self.socket_path is None and self.port is None:
            raise ServeError(
                "no endpoint configured: pass --socket/--port or set "
                "REPRO_SERVE_SOCKET/REPRO_SERVE_PORT"
            )
        self._loop = asyncio.get_running_loop()
        self._shutdown_requested = asyncio.Event()
        if self.socket_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(self._serve_unix, path=self.socket_path)
            )
        if self.port is not None:
            http_server = await asyncio.start_server(
                self._serve_http, self.host, self.port
            )
            self.port = http_server.sockets[0].getsockname()[1]
            self._servers.append(http_server)

    def endpoints(self) -> List[str]:
        described = []
        if self.socket_path is not None:
            described.append(f"unix socket {self.socket_path} (JSON lines)")
        if self.port is not None:
            described.append(f"http://{self.host}:{self.port}/ (POST JSON)")
        return described

    def request_shutdown(self) -> None:
        """Ask the daemon to stop; safe from any thread or signal handler."""
        loop, event = self._loop, self._shutdown_requested
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    async def serve_until_shutdown(self) -> None:
        await self._shutdown_requested.wait()
        await self.stop()

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        # Scheduler shutdown joins sweep threads - off the event loop.
        await asyncio.to_thread(self.registry.shutdown)

    # -- transports -------------------------------------------------------

    async def _serve_unix(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line.strip():
                    break
                shutdown = False
                try:
                    request = decode_request(line)
                    shutdown = request.get("op") == "shutdown"
                    document = await self._dispatch(request)
                except _REQUEST_ERRORS as exc:
                    document = error_document(exc)
                writer.write(encode_response(document))
                await writer.drain()
                if shutdown:
                    self.request_shutdown()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            method = request_line.split(b" ", 1)[0].upper()
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.partition(b":")
                if name.strip().lower() == b"content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        content_length = -1
            shutdown = False
            if method != b"POST":
                document = error_document(
                    ProtocolError(f"only POST is accepted, got {method.decode()!r}")
                )
            elif not 0 <= content_length <= _MAX_HTTP_BODY:
                document = error_document(
                    ProtocolError(f"bad Content-Length (max {_MAX_HTTP_BODY})")
                )
            else:
                body = await reader.readexactly(content_length)
                try:
                    request = decode_request(body)
                    shutdown = request.get("op") == "shutdown"
                    document = await self._dispatch(request)
                except _REQUEST_ERRORS as exc:
                    document = error_document(exc)
            payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(payload)).encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n" + payload
            )
            await writer.drain()
            if shutdown:
                self.request_shutdown()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # -- request handling -------------------------------------------------

    async def _dispatch(self, request: Dict[str, object]) -> Dict[str, object]:
        op = request["op"]
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return self._stats()
        if op == "shutdown":
            return {"ok": True, "stopping": True}
        return await self._estimate(request)

    async def _estimate(self, request: Dict[str, object]) -> Dict[str, object]:
        path, kappa, config = estimate_params(request)
        entry = await asyncio.to_thread(self.registry.entry_for, path)
        key = cache_key(entry.fingerprint_hex, config, kappa)
        hit = self.cache.get(key)
        if hit is not None:
            cached = dict(hit)
            cached["cached"] = True
            return cached
        job_id = next_job_id()
        job = Job(
            job_id,
            estimate_program(
                entry.stream, kappa, config, owner_prefix=f"{job_id}/"
            ),
        )
        entry.jobs_submitted += 1
        entry.scheduler.submit(job)
        await asyncio.to_thread(job.wait)
        if job.error is not None:
            if isinstance(job.error, _REQUEST_ERRORS):
                return error_document(job.error)
            raise job.error
        document = result_document(
            job.outcome,
            job.accounting,
            cached=False,
            fingerprint_hex=entry.fingerprint_hex,
            job_id=job_id,
        )
        # The cached copy drops the per-job fields: a hit served zero
        # sweeps, so replaying the original job's share would mislead.
        self.cache.put(
            key, {k: v for k, v in document.items() if k not in ("job", "accounting")}
        )
        return document

    def _stats(self) -> Dict[str, object]:
        return {
            "ok": True,
            "tapes": [
                {
                    "fingerprint": entry.fingerprint_hex,
                    "path": entry.path,
                    "jobs_submitted": entry.jobs_submitted,
                    "jobs_completed": entry.scheduler.jobs_completed,
                    "jobs_failed": entry.scheduler.jobs_failed,
                    "sweeps_physical": entry.scheduler.sweeps_physical,
                }
                for entry in self.registry.entries()
            ],
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            },
        }


# ---------------------------------------------------------------------------
# embedding helpers


@contextlib.contextmanager
def background_server(**kwargs):
    """Run an :class:`EstimateServer` on a background thread.

    The embedding surface for tests and the bench suite: yields the
    started server (``server.port`` holds the resolved ephemeral port),
    and shuts it down - draining its sweep schedulers - on exit.
    """
    server = EstimateServer(**kwargs)
    started = threading.Event()
    failures: List[BaseException] = []

    def _run() -> None:
        async def _main() -> None:
            try:
                await server.start()
            except BaseException as exc:  # noqa: BLE001 - reraised below
                failures.append(exc)
                started.set()
                return
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(30.0):
        raise ServeError("server did not start within 30s")
    if failures:
        raise failures[0]
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(30.0)


def serve_forever(
    socket_path: Optional[str] = None,
    port: Optional[int] = None,
    cache_size: Optional[int] = None,
    batch_window: Optional[float] = None,
    echo=print,
) -> int:
    """Run the daemon until SIGINT/SIGTERM or a ``shutdown`` request.

    The blocking entry point behind the ``repro serve`` CLI verb.
    """
    server = EstimateServer(
        socket_path=socket_path,
        port=port,
        cache_size=cache_size,
        batch_window=batch_window,
    )

    async def _main() -> None:
        await server.start()
        for endpoint in server.endpoints():
            echo(f"serving on {endpoint}")
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                loop.add_signal_handler(signum, server.request_shutdown)
        await server.serve_until_shutdown()

    asyncio.run(_main())
    echo("server stopped")
    return 0
