"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the common failure modes (malformed graph input, stream
protocol misuse, infeasible estimator parameters, exhausted space budget).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised for structurally invalid graph input.

    Examples: self-loops, negative vertex ids, duplicate edges passed to a
    builder configured to reject them, or queries about vertices that are not
    present in the graph.
    """


class StreamError(ReproError):
    """Raised when the streaming protocol is violated.

    Examples: opening a new pass while another pass is still being consumed,
    exceeding a declared pass budget, or reading from a closed stream.
    """


class PassBudgetExceeded(StreamError):
    """Raised when an algorithm opens more passes than its declared budget."""


class StreamReadError(StreamError):
    """Raised for *transient* failures reading the tape mid-sweep.

    Examples: an I/O error surfacing from a chunked file parse (or its
    prefetch thread), or an injected ``file.read`` / ``sweep.mid_stage``
    fault.  Distinct from the protocol violations and malformed-input
    failures that plain :class:`StreamError` covers: a read error may
    succeed on replay, so the recovery layer classifies it as retryable,
    while retrying a malformed file or a budget violation cannot help.
    """


class TapeFormatError(StreamReadError):
    """Raised when a binary ``.etape`` tape fails structural validation.

    Examples: bad magic bytes, an unsupported format version, a header
    shorter than the fixed layout, or a payload whose size disagrees with
    the header's edge count (a truncated or corrupt tape).  Subclasses
    :class:`StreamReadError` deliberately: a tape is a *derived* artifact,
    so the recovery ladder treats the failure as recoverable - when the
    stream has a registered text twin the ladder degrades the mmap tier
    back to text parsing (``mmap->text``) instead of failing the estimate.
    Without a twin the error propagates once retries exhaust.
    """


class SnapshotError(ReproError):
    """Base class for failures of the durable-snapshot layer.

    See :mod:`repro.core.snapshot`: the ``.esnap`` container, the
    round-boundary writer, and the resume path all raise subclasses of
    this error so callers can treat "anything snapshot-related" as one
    failure family while the recovery machinery distinguishes the three
    modes below.
    """


class SnapshotFormatError(SnapshotError):
    """Raised when an ``.esnap`` snapshot fails *structural* validation.

    Examples: truncated header or payload, bad magic bytes, a CRC-32
    mismatch, an unsupported (future) format version, or a payload that
    does not decode to the expected document.  Structural damage is a
    property of one file, not of the run, so the loader falls back to
    the previous snapshot in the rotation; only when every rotation
    member is damaged does the error propagate.
    """


class SnapshotMismatchError(SnapshotError):
    """Raised when a structurally valid snapshot belongs to a different run.

    Examples: resuming against a stream whose content fingerprint differs
    from the one recorded at snapshot time, or with a configuration whose
    trajectory-relevant fields (seed, epsilon, repetitions, plan mode and
    constants, ...) hash differently.  Unlike structural damage this is a
    *hard* error - continuing would silently produce estimates that match
    neither the original run nor a fresh one - so there is no fallback.
    """


class SnapshotWriteError(SnapshotError, StreamReadError):
    """Raised for *transient* failures persisting a snapshot to disk.

    Wraps I/O errors from the tmp-write/fsync/rename sequence and the
    injected ``snapshot.write`` fault.  Subclasses
    :class:`StreamReadError` deliberately so the recovery layer classifies
    it as retryable; exhausted retries degrade ``snapshot->skip`` (the
    run continues without further checkpoints) rather than failing the
    estimate - durability is an add-on, never a correctness dependency.
    """


class WorkerCrashError(ReproError):
    """Raised when a sharded worker process died executing a pass task.

    Wraps ``concurrent.futures.process.BrokenProcessPool``: the pool that
    observed the crash is unusable and must be rebuilt.  The executor does
    that itself (and retries or degrades per the active
    :class:`~repro.core.faults.RetryPolicy`); this error escapes only when
    recovery is exhausted.
    """


class TaskTimeoutError(ReproError):
    """Raised when a sharded pass task exceeded the per-task timeout.

    A hung worker cannot be distinguished from a merely slow one, so the
    executor kills and respawns the pool before retrying the task.
    """


class ShmTransportError(ReproError):
    """Raised when the shared-memory chunk transport fails.

    Examples: a worker attaching a segment that has vanished, or an
    injected ``shm.attach`` fault.  Classified as retryable; exhausted
    retries degrade the transport to pickled blocks
    (:func:`repro.streams.shm.disable_shm`).
    """


class SpaceBudgetExceeded(ReproError):
    """Raised when a :class:`repro.streams.space.SpaceMeter` with a hard
    budget observes an allocation beyond that budget.

    The paper converts expected-space guarantees into worst-case guarantees by
    aborting once space exceeds a constant multiple of the expectation
    (Section 3); this exception is the abort signal.
    """


class ParameterError(ReproError):
    """Raised for infeasible or inconsistent estimator parameters.

    Examples: ``epsilon`` outside ``(0, 1)``, a non-positive triangle-count
    guess, or a degeneracy bound smaller than 1.
    """


class EstimationError(ReproError):
    """Raised when an estimator cannot produce an estimate.

    Example: the geometric guessing loop in the driver exhausting all guesses
    without stabilizing (which indicates the graph has no triangles at all or
    the configuration is pathological).
    """


class ServeError(ReproError):
    """Base class for failures of the estimate-serving layer.

    See :mod:`repro.serve`: the daemon, its wire protocol, and the
    client helpers raise subclasses of this error.
    """


class ProtocolError(ServeError):
    """Raised for malformed or invalid serve requests/responses.

    Examples: a request line that is not a JSON object, an unknown
    ``op``, unknown or non-serializable config fields, or a response
    the client helpers cannot decode.  The daemon converts this (like
    every typed error) into an ``{"ok": false, "error": ...}`` response
    rather than dropping the connection.
    """
