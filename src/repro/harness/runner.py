"""Single-run execution: one algorithm, one graph, one seed, one report.

The runner owns the repetitive glue every experiment needs: fix a stream
order from a seed, time the run, pull the exact ``T`` from the graph
substrate, and compute the relative error.  Algorithms never see the graph;
the graph is used only for the stream order, the exact answer, and instance
parameters for provisioning.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.base import BaselineEstimator
from ..baselines.registry import InstanceParameters, make_baseline
from ..core.driver import EstimatorConfig, TriangleCountEstimator
from ..graph.adjacency import Graph
from ..graph.triangles import count_triangles
from ..streams.memory import InMemoryEdgeStream
from ..streams.transforms import shuffled


@dataclass(frozen=True)
class RunReport:
    """Everything an experiment table needs about one run."""

    algorithm: str
    workload: str
    estimate: float
    exact: int
    passes_used: int
    space_words_peak: int
    wall_seconds: float
    extras: Dict[str, float]

    @property
    def relative_error(self) -> float:
        """Signed relative error ``(estimate - T) / T`` (inf when T = 0 and
        the estimate is non-zero; 0 when both are zero)."""
        if self.exact == 0:
            return 0.0 if self.estimate == 0 else float("inf")
        return (self.estimate - self.exact) / self.exact

    @property
    def abs_relative_error(self) -> float:
        """Magnitude of :attr:`relative_error`."""
        err = self.relative_error
        return abs(err)


def _stream_for(graph: Graph, seed: int) -> InMemoryEdgeStream:
    order_rng = random.Random(seed ^ 0x5EED)
    return InMemoryEdgeStream.from_graph(graph, shuffled(graph, order_rng))


def run_paper_estimator_on_graph(
    graph: Graph,
    kappa: int,
    seed: int = 0,
    workload: str = "",
    config: Optional[EstimatorConfig] = None,
    exact: Optional[int] = None,
    engine_mode: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    fuse: Optional[bool] = None,
    speculate: Optional[bool] = None,
    speculate_depth: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
) -> RunReport:
    """Run the paper's estimator on ``graph`` with the promise ``kappa``.

    ``config`` defaults to a fresh :class:`EstimatorConfig` carrying the
    seed and any engine selection (``engine_mode`` / ``chunk_size`` /
    ``workers`` / ``fuse`` / ``speculate`` / ``speculate_depth`` -
    ignored when an explicit ``config`` is supplied, since the config
    already carries its own engine fields) plus any durable-snapshot
    selection (``checkpoint_dir`` / ``snapshot_every``, see
    :mod:`repro.core.snapshot`);
    pass ``exact`` to skip the (possibly expensive) ground-truth count
    when the caller already knows it.
    """
    if config is None:
        config = EstimatorConfig(
            seed=seed,
            engine_mode=engine_mode,
            chunk_size=chunk_size,
            workers=workers,
            fuse=fuse,
            speculate=speculate,
            speculate_depth=speculate_depth,
            checkpoint_dir=checkpoint_dir,
            snapshot_every=snapshot_every,
        )
    stream = _stream_for(graph, seed)
    truth = exact if exact is not None else count_triangles(graph)
    start = time.perf_counter()
    result = TriangleCountEstimator(config).estimate(stream, kappa=kappa)
    elapsed = time.perf_counter() - start
    return RunReport(
        algorithm="paper",
        workload=workload,
        estimate=result.estimate,
        exact=truth,
        passes_used=result.passes_total,
        space_words_peak=result.space_words_peak,
        wall_seconds=elapsed,
        extras={
            "rounds": float(len(result.rounds)),
            "sweeps": float(result.sweeps_total),
            "sweeps_wasted": float(result.sweeps_wasted),
        },
    )


def run_paper_estimator_on_file(
    path,
    kappa: int,
    seed: int = 0,
    workload: str = "",
    config: Optional[EstimatorConfig] = None,
    exact: Optional[int] = None,
    engine_mode: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    fuse: Optional[bool] = None,
    speculate: Optional[bool] = None,
    speculate_depth: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    snapshot_every: Optional[int] = None,
) -> RunReport:
    """Run the paper's estimator on an edge-list *file* in either format.

    The format is auto-detected by magic bytes
    (:func:`repro.streams.tape.open_edge_stream`): a binary ``.etape``
    tape streams through its zero-copy mapping, anything else parses as
    text - with bit-identical estimates either way.  Unlike
    :func:`run_paper_estimator_on_graph` the stream order is the file's
    own edge order (files already fix an order; re-shuffling would
    destroy the text/tape replay equivalence).  Pass ``exact`` to skip
    re-reading the file for the ground-truth count.
    """
    from ..io.edgelist import read_edgelist
    from ..streams.tape import open_edge_stream

    if config is None:
        config = EstimatorConfig(
            seed=seed,
            engine_mode=engine_mode,
            chunk_size=chunk_size,
            workers=workers,
            fuse=fuse,
            speculate=speculate,
            speculate_depth=speculate_depth,
            checkpoint_dir=checkpoint_dir,
            snapshot_every=snapshot_every,
        )
    stream = open_edge_stream(path)
    truth = exact if exact is not None else count_triangles(read_edgelist(path))
    start = time.perf_counter()
    result = TriangleCountEstimator(config).estimate(stream, kappa=kappa)
    elapsed = time.perf_counter() - start
    return RunReport(
        algorithm="paper",
        workload=workload or str(path),
        estimate=result.estimate,
        exact=truth,
        passes_used=result.passes_total,
        space_words_peak=result.space_words_peak,
        wall_seconds=elapsed,
        extras={
            "rounds": float(len(result.rounds)),
            "sweeps": float(result.sweeps_total),
            "sweeps_wasted": float(result.sweeps_wasted),
        },
    )


def run_baseline_on_graph(
    name: str,
    graph: Graph,
    seed: int = 0,
    workload: str = "",
    epsilon: float = 0.3,
    t_hint: Optional[float] = None,
    exact: Optional[int] = None,
) -> RunReport:
    """Run registered baseline ``name`` on ``graph`` at matched accuracy.

    The baseline is provisioned from its own Table 1 formula at the
    instance parameters (``t_hint`` defaults to the exact count - the same
    promise the paper algorithm's accepted round enjoys).
    """
    truth = exact if exact is not None else count_triangles(graph)
    hint = t_hint if t_hint is not None else max(1.0, float(truth))
    params = InstanceParameters(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        t_hint=hint,
        epsilon=epsilon,
    )
    estimator: BaselineEstimator = make_baseline(name, params, random.Random(seed))
    stream = _stream_for(graph, seed)
    start = time.perf_counter()
    result = estimator.estimate(stream)
    elapsed = time.perf_counter() - start
    return RunReport(
        algorithm=name,
        workload=workload,
        estimate=result.estimate,
        exact=truth,
        passes_used=result.passes_used,
        space_words_peak=result.space_words_peak,
        wall_seconds=elapsed,
        extras=dict(result.extras),
    )
