"""Paper-style table printing for aggregated experiment results."""

from __future__ import annotations

from typing import List, Sequence

from ..analysis.tables import format_table
from .sweep import AggregateReport

_HEADERS = [
    "algorithm",
    "workload",
    "runs",
    "T (exact)",
    "median est",
    "med |err|",
    "max |err|",
    "mean words",
    "mean passes",
    "mean sec",
]


def report_rows(aggregates: Sequence[AggregateReport]) -> List[List[object]]:
    """Convert aggregates into table rows matching :data:`_HEADERS`."""
    return [
        [
            a.algorithm,
            a.workload,
            a.runs,
            a.exact,
            a.median_estimate,
            a.median_abs_error,
            a.max_abs_error,
            a.mean_space_words,
            a.mean_passes,
            a.mean_wall_seconds,
        ]
        for a in aggregates
    ]


def print_report_table(aggregates: Sequence[AggregateReport], caption: str = "") -> str:
    """Render (and print) the standard experiment table; returns the text."""
    text = format_table(_HEADERS, report_rows(aggregates), caption=caption or None)
    print(text)
    return text
