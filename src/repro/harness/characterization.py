"""Workload characterization: the "Table 2" every systems paper needs.

Benchmarks compare algorithms *on instances*; readers need the instances'
vital signs to interpret the comparison.  :func:`characterize` computes
the full row for one graph, and :func:`characterize_suite` the table for
the whole named suite - printed by ``benchmarks/bench_workloads.py`` and
quoted in EXPERIMENTS.md.

The row includes the two quantities the paper's story revolves around:
``m*kappa/T`` (the paper's bound) and ``T / kappa^2`` (how far past the
crossover the instance sits; > 1 means the paper's bound is the best
known).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graph.adjacency import Graph
from ..graph.connectivity import giant_component_fraction
from ..graph.degeneracy import degeneracy
from ..graph.properties import edge_degree_sum, global_clustering_coefficient
from ..graph.triangles import count_triangles, per_edge_triangle_counts
from ..generators.workloads import Workload, standard_suite


@dataclass(frozen=True)
class WorkloadCharacterization:
    """Vital signs of one experiment instance."""

    name: str
    num_vertices: int
    num_edges: int
    triangles: int
    kappa: int
    kappa_promise: int
    d_e_sum: int
    max_degree: int
    max_te: int
    transitivity: float
    giant_fraction: float

    @property
    def paper_bound(self) -> float:
        """``m * kappa / T`` (inf for triangle-free instances)."""
        if self.triangles == 0:
            return float("inf")
        return self.num_edges * self.kappa / self.triangles

    @property
    def crossover_ratio(self) -> float:
        """``T / kappa^2``: > 1 means the paper's bound is the best known."""
        return self.triangles / (self.kappa * self.kappa) if self.kappa else 0.0


def characterize(graph: Graph, name: str = "", kappa_promise: int = 0) -> WorkloadCharacterization:
    """Compute the full characterization row for one graph."""
    te = per_edge_triangle_counts(graph)
    return WorkloadCharacterization(
        name=name,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        triangles=count_triangles(graph),
        kappa=degeneracy(graph),
        kappa_promise=kappa_promise,
        d_e_sum=edge_degree_sum(graph),
        max_degree=graph.max_degree(),
        max_te=max(te.values(), default=0),
        transitivity=global_clustering_coefficient(graph),
        giant_fraction=giant_component_fraction(graph),
    )


def characterize_suite(scale: str = "small", seed: int = 0) -> List[WorkloadCharacterization]:
    """Characterize every entry of the named workload suite."""
    rows = []
    for workload in standard_suite(scale):
        graph = workload.instantiate(seed=seed)
        rows.append(characterize(graph, name=workload.name, kappa_promise=workload.kappa_bound))
    return rows
