"""Experiment harness: run estimators on workloads, sweep, and report.

The harness is the glue the benchmarks are written in:

* :mod:`~repro.harness.runner` - run one algorithm on one workload and
  collect an :class:`~repro.harness.runner.RunReport` (estimate, relative
  error, passes, peak words, wall time);
* :mod:`~repro.harness.sweep` - repeat/aggregate over seeds and parameter
  grids;
* :mod:`~repro.harness.reporting` - print the paper-style tables and
  series (thin wrapper over :mod:`repro.analysis.tables`).
"""

from .runner import (
    RunReport,
    run_baseline_on_graph,
    run_paper_estimator_on_file,
    run_paper_estimator_on_graph,
)
from .sweep import AggregateReport, aggregate, sweep_seeds
from .reporting import print_report_table, report_rows

__all__ = [
    "RunReport",
    "run_paper_estimator_on_graph",
    "run_paper_estimator_on_file",
    "run_baseline_on_graph",
    "AggregateReport",
    "aggregate",
    "sweep_seeds",
    "print_report_table",
    "report_rows",
]
