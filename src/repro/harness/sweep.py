"""Seed sweeps and aggregation.

Randomized estimators are only meaningfully compared through repeated runs;
:func:`sweep_seeds` executes a runner closure over a seed range and
:func:`aggregate` condenses the reports into the statistics the experiment
tables print (median absolute error, worst error, mean space, mean time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..errors import ParameterError
from ..sampling.combine import mean, median
from .runner import RunReport


def sweep_seeds(run: Callable[[int], RunReport], seeds: Sequence[int]) -> List[RunReport]:
    """Execute ``run(seed)`` for every seed, returning all reports."""
    if not seeds:
        raise ParameterError("sweep needs at least one seed")
    return [run(seed) for seed in seeds]


@dataclass(frozen=True)
class AggregateReport:
    """Summary statistics of a seed sweep for one (algorithm, workload)."""

    algorithm: str
    workload: str
    runs: int
    exact: int
    median_estimate: float
    median_abs_error: float
    max_abs_error: float
    mean_space_words: float
    max_space_words: int
    mean_passes: float
    mean_wall_seconds: float


def aggregate(reports: Sequence[RunReport]) -> AggregateReport:
    """Condense a sweep (all for the same algorithm/workload) into one row."""
    if not reports:
        raise ParameterError("cannot aggregate zero reports")
    algorithms = {r.algorithm for r in reports}
    workloads = {r.workload for r in reports}
    if len(algorithms) != 1 or len(workloads) != 1:
        raise ParameterError(
            f"aggregate expects one algorithm/workload, got {algorithms} x {workloads}"
        )
    return AggregateReport(
        algorithm=reports[0].algorithm,
        workload=reports[0].workload,
        runs=len(reports),
        exact=reports[0].exact,
        median_estimate=median([r.estimate for r in reports]),
        median_abs_error=median([r.abs_relative_error for r in reports]),
        max_abs_error=max(r.abs_relative_error for r in reports),
        mean_space_words=mean([float(r.space_words_peak) for r in reports]),
        max_space_words=max(r.space_words_peak for r in reports),
        mean_passes=mean([float(r.passes_used) for r in reports]),
        mean_wall_seconds=mean([r.wall_seconds for r in reports]),
    )
