"""Shared primitive types: vertices, edges, triangles, and canonical forms.

Conventions used across the whole library (see DESIGN.md):

* a *vertex* is a non-negative ``int``;
* an *edge* is a ``tuple[int, int]`` stored in canonical form ``(u, v)`` with
  ``u < v``;
* a *triangle* is a ``tuple[int, int, int]`` stored in canonical sorted form
  ``(a, b, c)`` with ``a < b < c``.

Keeping these as plain tuples (rather than dataclasses) keeps the memory
footprint of reservoirs and streams small and makes equality/hashing trivial,
which matters because edges are used as dict keys throughout the estimators.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .errors import GraphError

Vertex = int
Edge = Tuple[int, int]
Triangle = Tuple[int, int, int]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical form ``(min(u, v), max(u, v))`` of an edge.

    Raises :class:`~repro.errors.GraphError` for self-loops or negative
    vertex ids, since the paper's model assumes simple graphs.
    """
    if u == v:
        raise GraphError(f"self-loop ({u}, {v}) is not a valid edge")
    if u < 0 or v < 0:
        raise GraphError(f"negative vertex id in edge ({u}, {v})")
    if u < v:
        return (u, v)
    return (v, u)


def canonical_triangle(a: Vertex, b: Vertex, c: Vertex) -> Triangle:
    """Return the canonical sorted form of a triangle's vertex set.

    Raises :class:`~repro.errors.GraphError` if the three vertices are not
    pairwise distinct.
    """
    if a == b or b == c or a == c:
        raise GraphError(f"triangle vertices must be distinct, got ({a}, {b}, {c})")
    x, y, z = sorted((a, b, c))
    return (x, y, z)


def triangle_edges(t: Triangle) -> Tuple[Edge, Edge, Edge]:
    """Return the three canonical edges of triangle ``t = (a, b, c)``."""
    a, b, c = t
    return ((a, b), (a, c), (b, c))


def edge_endpoints(e: Edge) -> Tuple[Vertex, Vertex]:
    """Return the endpoints of edge ``e`` (identity helper for readability)."""
    return e


def third_vertex(e: Edge, t: Triangle) -> Vertex:
    """Return the vertex of triangle ``t`` that is not an endpoint of ``e``.

    Raises :class:`~repro.errors.GraphError` if ``e`` is not an edge of ``t``.
    """
    u, v = e
    a, b, c = t
    members = {a, b, c}
    if u not in members or v not in members:
        raise GraphError(f"edge {e} is not part of triangle {t}")
    (w,) = members - {u, v}
    return w


def closes_triangle(e: Edge, w: Vertex) -> Triangle:
    """Return the canonical triangle formed by edge ``e`` and apex ``w``."""
    u, v = e
    return canonical_triangle(u, v, w)


def normalize_edges(edges: Iterable[Tuple[int, int]]) -> list[Edge]:
    """Canonicalize an iterable of edges, rejecting duplicates.

    Returns a list preserving first-seen order.  Raises
    :class:`~repro.errors.GraphError` if the same undirected edge appears
    twice, matching the paper's "unrepeated edges" stream model.
    """
    seen: set[Edge] = set()
    out: list[Edge] = []
    for u, v in edges:
        e = canonical_edge(u, v)
        if e in seen:
            raise GraphError(f"duplicate edge {e} in edge list")
        seen.add(e)
        out.append(e)
    return out
