"""Multi-pass scheduling with pass budgets and sweep accounting.

:class:`PassScheduler` is the only sanctioned way for an algorithm to read an
:class:`~repro.streams.base.EdgeStream`.  It enforces the constant-pass
discipline of the paper's model:

* passes are strictly sequential - opening a new pass while the previous one
  is still being consumed raises :class:`~repro.errors.StreamError`;
* an optional pass budget turns "constant number of passes" into a checked
  invariant (:class:`~repro.errors.PassBudgetExceeded`);
* the number of passes actually used is recorded for benchmark reports.

The scheduler distinguishes *logical passes* (the unit of the paper's
accounting - what the budget constrains) from *physical tape sweeps* (what
wall-clock time is made of).  A **fused** pass group
(:meth:`new_fused_pass` / :meth:`new_fused_pass_chunks`) opens several
logical passes at once, all served by a single sweep of the tape: the
budget is charged for every logical pass, while :attr:`sweeps_used` grows
by one.  Plain passes charge one of each, so for unfused execution the two
counters coincide.

Sweeps can additionally be tagged with the *owners* they serve (the
speculative round-pair driver tags each shared sweep with the rounds whose
plans rode it).  When a speculative owner is later discarded
(:meth:`discard_owner`), the sweeps that served **only** discarded owners
become *wasted* - physically performed, but spent on work the sequential
driver would never have run - while sweeps shared with a committed owner
stay committed (the committed round needed that traversal regardless).
:attr:`sweeps_committed` / :attr:`sweeps_wasted` expose the split;
untagged sweeps are always committed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Set

from ..errors import PassBudgetExceeded, StreamError, StreamReadError
from ..types import Edge
from .base import DEFAULT_CHUNK_EDGES, EdgeStream

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

    from .shm import ChunkHandle


def _mid_stage_fault_fires() -> bool:
    # Imported lazily: repro.streams loads during repro.core's own import.
    from ..core import faults

    return faults.fires(faults.SWEEP_MID_STAGE)


@dataclass(frozen=True)
class OwnerSweepReport:
    """Per-owner-group slice of a ledger's sweep accounting.

    ``rode`` counts sweeps that served at least one matching owner;
    ``committed`` those among them still serving a non-discarded matching
    owner; ``wasted`` is the difference.  ``shared`` counts the ridden
    sweeps that also carried a non-matching owner - physical work the
    matching group split with someone else.
    """

    rode: int
    committed: int
    wasted: int
    shared: int


class OwnerLedger:
    """Owner-tagged sweep bookkeeping, independent of any scheduler.

    Records one entry per physical sweep (a frozenset of owner tags, or
    ``None`` for untagged sweeps) plus the set of owners discarded so far.
    :class:`PassScheduler` keeps one for its own sweeps; the estimate
    program in :mod:`repro.core.driver` keeps private ledgers so a job
    riding a *shared* scheduler can still report the sweep counts its solo
    run would have produced.
    """

    def __init__(self) -> None:
        self._sweeps: List[Optional[frozenset]] = []
        self._discarded: Set[str] = set()

    def record(self, owners: Optional[Iterable[str]]) -> None:
        """Record one sweep tagged with ``owners`` (``None`` = untagged)."""
        self._sweeps.append(frozenset(owners) if owners is not None else None)

    def discard(self, owner: str) -> None:
        """Mark ``owner`` discarded; idempotent."""
        self._discarded.add(owner)

    @property
    def sweeps_recorded(self) -> int:
        return len(self._sweeps)

    @property
    def sweeps_wasted(self) -> int:
        """Sweeps whose every owner has been discarded (untagged never waste)."""
        if not self._discarded:
            return 0
        return sum(
            1
            for owners in self._sweeps
            if owners is not None and owners <= self._discarded
        )

    @property
    def sweeps_committed(self) -> int:
        return len(self._sweeps) - self.sweeps_wasted

    def report(self, prefix: str) -> OwnerSweepReport:
        """Accounting for the owner group whose tags start with ``prefix``.

        This is the per-job view of a shared tape: with owners tagged
        ``f"{job}..."``, ``report(job)`` says how many physical sweeps the
        job rode, how many of those it shared with other jobs, and how the
        committed/wasted split looks from its side.
        """
        rode = committed = shared = 0
        for owners in self._sweeps:
            if owners is None:
                continue
            mine = [o for o in owners if o.startswith(prefix)]
            if not mine:
                continue
            rode += 1
            if any(o not in self._discarded for o in mine):
                committed += 1
            if any(not o.startswith(prefix) for o in owners):
                shared += 1
        return OwnerSweepReport(
            rode=rode, committed=committed, wasted=rode - committed, shared=shared
        )


class PassScheduler:
    """Hands out sequential passes over a stream, counting them.

    Parameters
    ----------
    stream:
        The underlying edge stream.
    max_passes:
        Optional hard pass budget; exceeding it raises
        :class:`~repro.errors.PassBudgetExceeded`.
    """

    def __init__(self, stream: EdgeStream, max_passes: Optional[int] = None) -> None:
        if max_passes is not None and max_passes < 1:
            raise StreamError(f"max_passes must be >= 1, got {max_passes}")
        self._stream = stream
        self._max_passes = max_passes
        self._passes_used = 0
        self._sweeps_used = 0
        self._pass_open = False
        #: Whether the currently open sweep dies mid-stage (fault injection).
        self._fault_mid_sweep = False
        #: Owner tags per sweep plus the discarded set (see :class:`OwnerLedger`).
        self._owners = OwnerLedger()

    @property
    def passes_used(self) -> int:
        """Number of logical passes opened so far (the budgeted quantity)."""
        return self._passes_used

    @property
    def sweeps_used(self) -> int:
        """Number of physical tape sweeps started so far.

        Equal to :attr:`passes_used` under unfused execution; strictly
        smaller whenever fused pass groups shared a sweep.
        """
        return self._sweeps_used

    @property
    def sweeps_wasted(self) -> int:
        """Sweeps that served only owners since discarded (speculation waste).

        A sweep counts as wasted when it was tagged with owners and *every*
        one of them has been handed to :meth:`discard_owner`; sweeps shared
        with a committed owner - and untagged sweeps - stay committed.
        """
        return self._owners.sweeps_wasted

    @property
    def sweeps_committed(self) -> int:
        """Physical sweeps net of speculation waste (see :attr:`sweeps_wasted`)."""
        return self._sweeps_used - self.sweeps_wasted

    def discard_owner(self, owner: str) -> None:
        """Mark ``owner``'s speculative work discarded for sweep accounting.

        Sweeps tagged exclusively with discarded owners move from committed
        to wasted; the physical :attr:`sweeps_used` total is unchanged (the
        tape was read either way).  Idempotent.
        """
        self._owners.discard(owner)

    def owner_report(self, prefix: str) -> OwnerSweepReport:
        """Per-owner-group accounting (see :meth:`OwnerLedger.report`).

        On a scheduler shared across jobs - owners tagged ``f"{job}..."`` -
        ``owner_report(job)`` gives that job's slice: sweeps it rode, how
        many it shared with other groups, and its committed/wasted split.
        """
        return self._owners.report(prefix)

    @property
    def num_edges(self) -> int:
        """The stream length ``m``."""
        return len(self._stream)

    @property
    def stream(self) -> EdgeStream:
        """The underlying stream (read-only; for engine capability checks)."""
        return self._stream

    def new_pass(self) -> Iterator[Edge]:
        """Open the next sequential pass.

        The returned iterator must be consumed (or abandoned) before the next
        call to :meth:`new_pass`; interleaved passes violate the streaming
        model and raise :class:`~repro.errors.StreamError`.
        """
        self._open_passes(1)
        return self._run_pass()

    def new_fused_pass(
        self, passes: int, owners: Optional[Iterable[str]] = None
    ) -> Iterator[Edge]:
        """Open ``passes`` logical passes served by one shared sweep.

        The caller is asserting that the fused passes are mutually
        independent - each one must produce the result it would have
        produced scanning the tape alone.  Pass accounting charges all
        ``passes`` against the budget; the sweep counter grows by one.
        ``owners`` optionally tags the sweep for the committed/wasted split
        (see :meth:`discard_owner`).
        """
        self._open_passes(passes, owners)
        return self._run_pass()

    def new_pass_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_EDGES
    ) -> Iterator["numpy.ndarray"]:
        """Open the next sequential pass, delivered as ``(k, 2)`` chunks.

        Identical pass accounting to :meth:`new_pass` - a chunked pass is
        still exactly one pass over the tape, it merely hands the edges to
        the caller in vectorized blocks (see
        :meth:`~repro.streams.base.EdgeStream.iter_chunks`).  The same
        sequencing rules apply: consume or abandon the iterator before
        opening another pass.
        """
        self._open_passes(1)
        return self._run_pass_chunks(chunk_size)

    def new_fused_pass_chunks(
        self,
        chunk_size: int = DEFAULT_CHUNK_EDGES,
        passes: int = 1,
        owners: Optional[Iterable[str]] = None,
    ) -> Iterator["numpy.ndarray"]:
        """Chunked variant of :meth:`new_fused_pass` (one sweep, ``passes`` passes)."""
        self._open_passes(passes, owners)
        return self._run_pass_chunks(chunk_size)

    def new_pass_chunk_handles(
        self,
        chunk_size: int = DEFAULT_CHUNK_EDGES,
        passes: int = 1,
        owners: Optional[Iterable[str]] = None,
    ) -> Iterator["ChunkHandle"]:
        """Open ``passes`` logical passes delivered as chunk *handles*.

        Handles are what the sharded executor ships to worker processes:
        they carry either the rows themselves or a zero-copy shared-memory
        descriptor (see :meth:`~repro.streams.base.EdgeStream.iter_chunk_handles`).
        Accounting matches :meth:`new_fused_pass_chunks`.
        """
        self._open_passes(passes, owners)
        return self._run_pass_chunk_handles(chunk_size)

    def _open_passes(self, count: int, owners: Optional[Iterable[str]] = None) -> None:
        if count < 1:
            raise StreamError(f"a pass group must contain at least one pass, got {count}")
        if self._pass_open:
            raise StreamError("previous pass still open; streams cannot be read concurrently")
        if self._max_passes is not None and self._passes_used + count > self._max_passes:
            raise PassBudgetExceeded(
                f"pass budget of {self._max_passes} exhausted "
                f"(attempted pass {self._passes_used + count})"
            )
        self._passes_used += count
        self._sweeps_used += 1
        self._owners.record(owners)
        self._pass_open = True
        # Decided eagerly at sweep open (one fault-plan event per sweep, in
        # sweep order) so injection indexing is independent of how lazily
        # the pass iterator is consumed.
        self._fault_mid_sweep = _mid_stage_fault_fires()

    def _inject_mid_sweep(self, items: Iterable) -> Iterator:
        """Replay ``items`` but die after the first one (injected fault).

        An armed fault fires even when the consumer abandons the sweep
        early (executors stop pulling once every plan is served): closing
        the injector converts the ``GeneratorExit`` into the fault, so a
        scheduled injection can never be silently skipped by dead-tape
        optimisations - injection indexing stays deterministic.
        """
        sweep = self._sweeps_used
        fault = StreamReadError(f"injected fault: sweep.mid_stage (sweep {sweep - 1})")
        try:
            for item in items:
                yield item
                raise fault
            raise fault
        except GeneratorExit:
            raise fault from None

    def _run_pass(self) -> Iterator[Edge]:
        injector: Optional[Iterator] = None
        source: Iterable[Edge] = self._stream
        if self._fault_mid_sweep:
            injector = self._inject_mid_sweep(iter(source))
            source = injector
        try:
            for edge in source:
                yield edge
        finally:
            # Mark the pass closed whether it was fully consumed, abandoned,
            # or aborted by an exception - any of these ends the pass.
            self._pass_open = False
            if injector is not None:
                injector.close()  # raises the armed fault if still pending

    def _run_pass_chunks(self, chunk_size: int) -> Iterator["numpy.ndarray"]:
        injector: Optional[Iterator] = None
        source: Iterable = self._stream.iter_chunks(chunk_size)
        if self._fault_mid_sweep:
            injector = self._inject_mid_sweep(source)
            source = injector
        try:
            for chunk in source:
                yield chunk
        finally:
            self._pass_open = False
            if injector is not None:
                injector.close()

    def _run_pass_chunk_handles(self, chunk_size: int) -> Iterator["ChunkHandle"]:
        injector: Optional[Iterator] = None
        source: Iterable = self._stream.iter_chunk_handles(chunk_size)
        if self._fault_mid_sweep:
            injector = self._inject_mid_sweep(source)
            source = injector
        try:
            for handle in source:
                yield handle
        finally:
            self._pass_open = False
            if injector is not None:
                injector.close()
