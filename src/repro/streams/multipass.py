"""Multi-pass scheduling with pass budgets.

:class:`PassScheduler` is the only sanctioned way for an algorithm to read an
:class:`~repro.streams.base.EdgeStream`.  It enforces the constant-pass
discipline of the paper's model:

* passes are strictly sequential - opening a new pass while the previous one
  is still being consumed raises :class:`~repro.errors.StreamError`;
* an optional pass budget turns "constant number of passes" into a checked
  invariant (:class:`~repro.errors.PassBudgetExceeded`);
* the number of passes actually used is recorded for benchmark reports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from ..errors import PassBudgetExceeded, StreamError
from ..types import Edge
from .base import DEFAULT_CHUNK_EDGES, EdgeStream

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy


class PassScheduler:
    """Hands out sequential passes over a stream, counting them.

    Parameters
    ----------
    stream:
        The underlying edge stream.
    max_passes:
        Optional hard pass budget; exceeding it raises
        :class:`~repro.errors.PassBudgetExceeded`.
    """

    def __init__(self, stream: EdgeStream, max_passes: Optional[int] = None) -> None:
        if max_passes is not None and max_passes < 1:
            raise StreamError(f"max_passes must be >= 1, got {max_passes}")
        self._stream = stream
        self._max_passes = max_passes
        self._passes_used = 0
        self._pass_open = False

    @property
    def passes_used(self) -> int:
        """Number of passes opened so far."""
        return self._passes_used

    @property
    def num_edges(self) -> int:
        """The stream length ``m``."""
        return len(self._stream)

    @property
    def stream(self) -> EdgeStream:
        """The underlying stream (read-only; for engine capability checks)."""
        return self._stream

    def new_pass(self) -> Iterator[Edge]:
        """Open the next sequential pass.

        The returned iterator must be consumed (or abandoned) before the next
        call to :meth:`new_pass`; interleaved passes violate the streaming
        model and raise :class:`~repro.errors.StreamError`.
        """
        self._open_pass()
        return self._run_pass()

    def new_pass_chunks(
        self, chunk_size: int = DEFAULT_CHUNK_EDGES
    ) -> Iterator["numpy.ndarray"]:
        """Open the next sequential pass, delivered as ``(k, 2)`` chunks.

        Identical pass accounting to :meth:`new_pass` - a chunked pass is
        still exactly one pass over the tape, it merely hands the edges to
        the caller in vectorized blocks (see
        :meth:`~repro.streams.base.EdgeStream.iter_chunks`).  The same
        sequencing rules apply: consume or abandon the iterator before
        opening another pass.
        """
        self._open_pass()
        return self._run_pass_chunks(chunk_size)

    def _open_pass(self) -> None:
        if self._pass_open:
            raise StreamError("previous pass still open; streams cannot be read concurrently")
        if self._max_passes is not None and self._passes_used >= self._max_passes:
            raise PassBudgetExceeded(
                f"pass budget of {self._max_passes} exhausted "
                f"(attempted pass {self._passes_used + 1})"
            )
        self._passes_used += 1
        self._pass_open = True

    def _run_pass(self) -> Iterator[Edge]:
        try:
            for edge in self._stream:
                yield edge
        finally:
            # Mark the pass closed whether it was fully consumed, abandoned,
            # or aborted by an exception - any of these ends the pass.
            self._pass_open = False

    def _run_pass_chunks(self, chunk_size: int) -> Iterator["numpy.ndarray"]:
        try:
            for chunk in self._stream.iter_chunks(chunk_size):
                yield chunk
        finally:
            self._pass_open = False
