"""Dynamic (insert/delete) edge streams.

The paper's algorithm is insert-only, but its Table 1 cites the dynamic-
stream results of Kane et al. [41] (upper bound) and Kutzkov-Pagh [44]
(matching lower bound).  :class:`DynamicEdgeStream` is the turnstile
counterpart of :class:`~repro.streams.base.EdgeStream`: a replayable
sequence of ``(edge, +1 | -1)`` updates whose *net* multiplicities are 0/1
(a simple graph), consumed by the linear sketches in
:mod:`repro.sketches`.

:func:`churn_stream` manufactures adversarial-ish dynamic workloads: start
from a target graph, then interleave spurious insert-then-delete churn
edges so that the final graph is the target but the stream is much longer
and most updates cancel - the regime where deletion tolerance matters.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import StreamError
from ..graph.adjacency import Graph
from ..types import Edge, canonical_edge

Update = Tuple[Edge, int]


class DynamicEdgeStream:
    """A replayable sequence of edge insertions and deletions.

    Parameters
    ----------
    updates:
        ``(edge, delta)`` pairs with ``delta`` in ``{+1, -1}``.  Validated:
        running multiplicities must stay in ``{0, 1}`` (no deleting absent
        edges, no double-inserting), so every prefix is a simple graph.
    """

    def __init__(self, updates: Sequence[Tuple[Tuple[int, int], int]]) -> None:
        validated: List[Update] = []
        multiplicity: Dict[Edge, int] = {}
        for position, (raw_edge, delta) in enumerate(updates):
            if delta not in (1, -1):
                raise StreamError(f"update {position}: delta must be +-1, got {delta}")
            edge = canonical_edge(*raw_edge)
            current = multiplicity.get(edge, 0)
            new = current + delta
            if new not in (0, 1):
                action = "insert" if delta == 1 else "delete"
                raise StreamError(
                    f"update {position}: cannot {action} edge {edge} at multiplicity {current}"
                )
            multiplicity[edge] = new
            validated.append((edge, delta))
        self._updates = validated
        self._net_edges = sorted(e for e, count in multiplicity.items() if count == 1)

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __len__(self) -> int:
        """Number of *updates* (not net edges)."""
        return len(self._updates)

    @property
    def net_edge_count(self) -> int:
        """Edges present after all updates."""
        return len(self._net_edges)

    def net_graph(self) -> Graph:
        """The simple graph remaining after all updates."""
        return Graph(edges=self._net_edges)

    @classmethod
    def insert_only(cls, edges: Sequence[Tuple[int, int]]) -> "DynamicEdgeStream":
        """Wrap a plain edge sequence as insertions."""
        return cls([(e, 1) for e in edges])


def churn_stream(
    graph: Graph,
    churn_factor: float,
    rng: random.Random,
    num_vertices: int | None = None,
    strict: bool = True,
) -> DynamicEdgeStream:
    """Build a dynamic stream whose net result is ``graph``.

    Inserts all of ``graph``'s edges (shuffled) interleaved with
    ``ceil(churn_factor * m)`` churn edges - non-edges of ``graph`` that
    are inserted and later deleted.  ``churn_factor = 0`` gives a shuffled
    insert-only stream; larger factors stress deletion handling.

    ``num_vertices`` widens the id range churn edges may use (defaults to
    the graph's own max id + 1).

    Churn edges are drawn by rejection sampling, which can run dry on a
    (near-)complete graph: when the attempts cap trips before the
    requested count is reached, ``strict=True`` (the default) raises
    :class:`~repro.errors.StreamError` naming the shortfall, while
    ``strict=False`` returns the stream built from the churn actually
    found.  Either way the delivered counts are recorded on the stream
    as ``churn_requested`` / ``churn_delivered``.
    """
    if churn_factor < 0:
        raise StreamError(f"churn_factor must be non-negative, got {churn_factor}")
    real_edges = graph.edge_list()
    m = len(real_edges)
    n = num_vertices if num_vertices is not None else (
        max((v for v in graph.vertices()), default=0) + 1
    )
    churn_count = math.ceil(churn_factor * m)

    churn_edges: List[Edge] = []
    attempts = 0
    present = set(real_edges)
    while len(churn_edges) < churn_count:
        attempts += 1
        if attempts > 100 * (churn_count + 1) + 1000:
            # The rejection sampler ran dry: the graph is too dense (or n
            # too small) for the requested churn.
            break
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = canonical_edge(u, v)
        if e in present:
            continue
        present.add(e)
        churn_edges.append(e)
    if strict and len(churn_edges) < churn_count:
        raise StreamError(
            f"churn shortfall: requested {churn_count} churn edges "
            f"(churn_factor={churn_factor}, m={m}) but only {len(churn_edges)} "
            f"non-edges were found in {attempts} attempts over {n} vertices; "
            "widen num_vertices, lower churn_factor, or pass strict=False to "
            "accept the delivered churn"
        )

    # Event list: every real edge one insert; every churn edge an insert
    # and a delete.  Shuffle inserts; schedule each churn delete at a
    # uniform position after its insert.
    inserts: List[Update] = [(e, 1) for e in real_edges] + [(e, 1) for e in churn_edges]
    rng.shuffle(inserts)
    updates: List[Update] = list(inserts)
    for e in churn_edges:
        insert_at = next(i for i, (edge, d) in enumerate(updates) if edge == e and d == 1)
        position = rng.randrange(insert_at + 1, len(updates) + 1)
        updates.insert(position, (e, -1))
    stream = DynamicEdgeStream(updates)
    stream.churn_requested = churn_count
    stream.churn_delivered = len(churn_edges)
    return stream
