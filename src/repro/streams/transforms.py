"""Stream-order transforms: shuffles and adversarial orders.

The paper's guarantees hold for *arbitrary order* streams, so experiments
must exercise more than one order.  These helpers produce edge orderings to
feed :meth:`InMemoryEdgeStream.from_graph`:

* :func:`shuffled` - a uniformly random order under an explicit RNG (the
  default order in all benchmarks);
* :func:`sorted_order` - deterministic lexicographic order (worst case for
  algorithms that accidentally rely on order randomness);
* :func:`adversarial_heavy_edge_last_order` - edges sorted by increasing
  ``t_e``, so all triangle-dense edges arrive at the very end.  This stresses
  reservoir-based pass-1 sampling the hardest.
"""

from __future__ import annotations

import random
from typing import List

from ..graph.adjacency import Graph
from ..graph.triangles import per_edge_triangle_counts
from ..types import Edge


def shuffled(graph: Graph, rng: random.Random) -> List[Edge]:
    """Return the graph's edges in a uniformly random order."""
    edges = graph.edge_list()
    rng.shuffle(edges)
    return edges


def sorted_order(graph: Graph) -> List[Edge]:
    """Return the graph's edges in lexicographic order (deterministic)."""
    return graph.edge_list()


def adversarial_heavy_edge_last_order(graph: Graph) -> List[Edge]:
    """Return edges ordered by increasing per-edge triangle count ``t_e``.

    All triangle-carrying edges arrive last, which is the hardest order for
    single-pass samplers that must commit to a sample before seeing the
    informative suffix.  Ties are broken lexicographically so the order is
    deterministic.
    """
    te = per_edge_triangle_counts(graph)
    return sorted(te, key=lambda e: (te[e], e))
