"""Zero-copy shared-memory chunk transport for the sharded executor.

Sharded passes ship ``(k, 2)`` int64 edge blocks to worker processes.  The
default transport pickles every block through the pool pipe: one serialize,
one pipe write, one read, one deserialize per task - for in-memory streams
that is strictly wasted motion, because the rows already sit in one
contiguous parent-side array.

This module provides the alternative: blocks live in
:mod:`multiprocessing.shared_memory` segments and tasks carry tiny
``("shm", name, start_row, rows)`` descriptors instead of the rows
themselves.  Two producers exist:

* **stream-owned segments** - :class:`SharedEdgeSegment.from_array` mirrors
  a stream's backing array into one segment *once*; every sharded pass then
  slices it by descriptor with no per-sweep copying at all
  (:class:`~repro.streams.memory.InMemoryEdgeStream` does this lazily on
  first sharded use);
* **per-task spooling** - for streams whose chunks are produced on the fly
  (:class:`~repro.streams.file.FileEdgeStream` parse batches), the executor
  copies each task's blocks into a fresh segment via :func:`spool_blocks`
  and unlinks it once the task's partial has been absorbed.  One parent-side
  memcpy replaces the pickle round trip, and the descriptor through the pipe
  is a few dozen bytes.

Workers resolve descriptors with :func:`resolve_block`: the segment is
attached once per worker (a small LRU keeps the most recent attachments
open) and the block is a zero-copy NumPy view into the mapping.  Attached
segments are explicitly unregistered from the child's ``resource_tracker``
- the parent owns every segment's lifetime, and without the unregister step
each worker exit would try to unlink segments it merely read (bpo-39959).

Shared memory is used only when the platform provides it; any ``OSError``
at first use (no ``/dev/shm``, exhausted quota) disables the transport for
the process and the executor falls back to pickled blocks.  ``REPRO_SHM=0``
forces the fallback.
"""

from __future__ import annotations

import atexit
import os
import weakref
from collections import OrderedDict
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

#: Bytes per edge row: two int64 endpoints.
ROW_BYTES = 16

#: Descriptor tag; tasks distinguish descriptors from raw ndarray blocks.
SHM_TAG = "shm"

#: Descriptor tag for binary-tape row ranges: ``("tape", path, start, rows)``
#: names rows of an ``.etape`` file that workers resolve against their own
#: memory mapping (:func:`repro.streams.tape.resolve_tape_block`) - the
#: same shape as a shm ref, so batching and coalescing treat both alike.
TAPE_TAG = "tape"

#: A picklable block reference: ``(SHM_TAG, segment name, start row, rows)``.
ShmBlockRef = Tuple[str, str, int, int]

_disabled = os.environ.get("REPRO_SHM", "1") == "0"


def shm_enabled() -> bool:
    """Whether the shared-memory transport may be used in this process."""
    return not _disabled


def disable_shm() -> None:
    """Turn the transport off for the rest of the process (fallback path)."""
    global _disabled
    _disabled = True


def _set_enabled(enabled: bool) -> None:
    """Force the transport's enabled state (recovery-scope restore hook).

    :func:`repro.core.faults.recovery_scope` uses this to undo a
    ``shm->pickle`` degradation its ladder applied, so one failing
    estimate does not leave the transport disabled for the process.
    """
    global _disabled
    _disabled = not enabled


class SharedEdgeSegment:
    """One shared-memory segment holding ``rows`` int64 edge pairs.

    The creating process owns the segment: :meth:`destroy` (idempotent,
    also registered via ``weakref.finalize`` and ``atexit``) closes and
    unlinks it.  Readers attach by name in worker processes through
    :func:`resolve_block` and never unlink.
    """

    __slots__ = ("_shm", "rows", "name", "_finalizer", "__weakref__")

    def __init__(self, rows: int) -> None:
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=max(1, rows * ROW_BYTES))
        self.rows = rows
        self.name = self._shm.name
        self._finalizer = weakref.finalize(self, _destroy_segment, self._shm, self.name)
        _live_segments[self.name] = self._finalizer

    @classmethod
    def from_array(cls, array: "numpy.ndarray") -> "SharedEdgeSegment":
        """Create a segment mirroring one contiguous ``(m, 2)`` int64 array."""
        segment = cls(len(array))
        if len(array):
            segment.view(0, len(array))[:] = array
        return segment

    def view(self, start_row: int, rows: int) -> "numpy.ndarray":
        """A zero-copy ``(rows, 2)`` view of the segment (parent side)."""
        import numpy as np

        return np.ndarray(
            (rows, 2), dtype=np.int64, buffer=self._shm.buf, offset=start_row * ROW_BYTES
        )

    def block_ref(self, start_row: int, rows: int) -> ShmBlockRef:
        """The picklable descriptor of one row range of this segment."""
        return (SHM_TAG, self.name, start_row, rows)

    def destroy(self) -> None:
        """Close and unlink the segment (idempotent; owner side only)."""
        self._finalizer()


def _destroy_segment(shm, name: str) -> None:
    # Runs via explicit destroy() *and* as the GC finalizer: drop the
    # registry entry either way so reclaimed segments don't accumulate.
    _live_segments.pop(name, None)
    try:
        shm.close()
        shm.unlink()
    except (OSError, FileNotFoundError):  # pragma: no cover - already gone
        pass


#: Owner-side registry so segments leaked past their stream's lifetime are
#: still unlinked at interpreter exit (finalizers cover the normal path).
_live_segments: "OrderedDict[str, weakref.finalize]" = OrderedDict()


def live_segment_names() -> List[str]:
    """Names of owner-side segments created but not yet destroyed.

    The executor's cleanup contract is that per-task spooled segments are
    destroyed the moment their task's partial is absorbed - or, on any
    error path, before the exception escapes the sweep - so after a
    sharded pass (successful or not) the only live segments should be
    stream-owned mirrors.  Failure-injection tests assert exactly that;
    the GC safety-net finalizers make true leaks invisible to ``/dev/shm``
    scans once references drop, while this registry view sees them for as
    long as the owner object is alive.
    """
    return [name for name, finalizer in _live_segments.items() if finalizer.alive]


@atexit.register
def _unlink_all_segments() -> None:  # pragma: no cover - exit-time safety net
    while _live_segments:
        _, finalizer = _live_segments.popitem()
        finalizer()


def new_segment_from_blocks(blocks: Sequence["numpy.ndarray"]) -> Optional[SharedEdgeSegment]:
    """Spool a task's blocks into one fresh segment, or ``None`` on failure.

    A returned segment is owned by the caller, which must :meth:`destroy`
    it once the task result has been absorbed.  Any ``OSError`` disables
    the transport process-wide (the executor then falls back to pickling).
    """
    if not shm_enabled():
        return None
    rows = sum(len(block) for block in blocks)
    try:
        segment = SharedEdgeSegment(rows)
    except (OSError, ImportError):  # pragma: no cover - no /dev/shm or quota
        disable_shm()
        return None
    at = 0
    for block in blocks:
        if len(block):
            segment.view(at, len(block))[:] = block
        at += len(block)
    return segment


# ---------------------------------------------------------------------------
# worker side

#: Worker-side cache of attached segments, keyed by name.  Spooled per-task
#: segments churn through it; stream-owned segments stay hot.
_ATTACH_SLOTS = 4
_attached: "OrderedDict[str, object]" = OrderedDict()


def _attach(name: str):
    shm = _attached.get(name)
    if shm is None:
        from multiprocessing import resource_tracker, shared_memory

        # The parent owns every segment's lifetime: suppress the resource
        # tracker registration a read-side attach would otherwise perform,
        # so neither worker exit nor tracker shutdown tries to unlink (or
        # double-unregister) segments the worker merely read (bpo-39959).
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        except OSError as exc:
            # Typed so the executor's retry layer can classify the failure
            # (segment vanished, mapping quota) without string matching.
            from ..errors import ShmTransportError

            raise ShmTransportError(
                f"cannot attach shared-memory segment {name!r}: {exc}"
            ) from exc
        finally:
            resource_tracker.register = original_register
        _attached[name] = shm
        while len(_attached) > _ATTACH_SLOTS:
            _, old = _attached.popitem(last=False)
            try:
                old.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass  # a live view pins the mapping; drop the handle instead
    else:
        _attached.move_to_end(name)
    return shm


def resolve_block(block) -> "numpy.ndarray":
    """Turn one task block - raw ndarray or descriptor - into rows.

    Descriptors are ``(tag, name-or-path, start, rows)`` tuples:
    :data:`SHM_TAG` names a shared-memory segment range, :data:`TAPE_TAG`
    names a row range of a binary ``.etape`` file (resolved against a
    per-worker mapping of the file; no segment is involved at all).
    """
    if isinstance(block, tuple) and len(block) == 4:
        if block[0] == SHM_TAG:
            import numpy as np

            _, name, start_row, rows = block
            shm = _attach(name)
            return np.ndarray(
                (rows, 2), dtype=np.int64, buffer=shm.buf, offset=start_row * ROW_BYTES
            )
        if block[0] == TAPE_TAG:
            from .tape import resolve_tape_block

            return resolve_tape_block(block)
    return block


class ChunkHandle:
    """One chunk of a pass, as handed to the sharded executor.

    Either ``block`` holds the rows as a plain ndarray (pickled transport,
    or spooled into a per-task segment by the executor), or ``ref`` names a
    row range of a stream-owned shared segment (zero-copy transport).
    ``rows`` is always set; the executor needs it for batch sizing and
    stream offsets without touching the data.
    """

    __slots__ = ("rows", "block", "ref")

    def __init__(
        self,
        rows: int,
        block: Optional["numpy.ndarray"] = None,
        ref: Optional[ShmBlockRef] = None,
    ) -> None:
        self.rows = rows
        self.block = block
        self.ref = ref


def coalesce_refs(refs: List[ShmBlockRef]) -> List[ShmBlockRef]:
    """Merge adjacent descriptors of contiguous ranges of one segment.

    Consecutive chunks of a stream-owned segment are contiguous, so a whole
    task batch usually collapses to a single descriptor - the worker then
    runs its kernels on one zero-copy view with no concatenation.
    """
    merged: List[ShmBlockRef] = []
    for ref in refs:
        if merged:
            tag, name, start, rows = merged[-1]
            if name == ref[1] and start + rows == ref[2]:
                merged[-1] = (tag, name, start, rows + ref[3])
                continue
        merged.append(ref)
    return merged
