"""The packed binary ``.etape`` tape format and its mmap-backed stream.

Multi-pass estimates re-read the whole tape once per physical sweep, and
on the text path every sweep re-runs the batched parser - which is why
the file stream grew a prefetch thread and per-task shared-memory
spooling.  The ``.etape`` format stores the *parsed* tape once: a
64-byte header followed by the edges as a contiguous C-order
little-endian ``int64[m, 2]`` array.  Re-sweeps then become
memory-bandwidth-bound instead of parse-bound:

* :meth:`MmapEdgeStream.iter_chunks` yields zero-copy read-only slices
  of the memory-mapped payload (no parsing, no allocation per sweep);
* ``stats()`` / ``len()`` come straight from the header in O(1) - no
  statistics sweep at all;
* sharded tasks ship tiny ``("tape", path, start, rows)`` descriptors
  (:func:`resolve_tape_block`) that each worker resolves against its own
  mapping of the same file - no shm spooling, and the prefetch thread is
  bypassed entirely (both are artifacts of text parsing).

Header layout (64 bytes, all integers little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       8     magic  b"\\x89ETAPE\\r\\n"
    8       4     format version (currently 1)
    12      4     flags (bit 0: every row is canonical 0 <= u < v)
    16      8     edge count m
    24      8     max vertex id (-1 for an empty tape)
    32      8     vertex bound n  (= max vertex id + 1)
    40      8     CRC-32 of the payload bytes (zero-extended)
    48      16    reserved (zero)

Structural violations raise :class:`~repro.errors.TapeFormatError`.  The
checksum is computed by the writer (which touches every byte anyway) and
verified on demand by :func:`verify_tape` - *not* at open, which would
forfeit the O(1) ``stats``.  :func:`tape_fingerprint` hashes the header
plus a strided sample of payload rows into a content fingerprint that is
stable across byte-identical rewrites and cheap even for huge tapes -
the future estimate cache keys on it.

**Degradation contract** (see :mod:`repro.core.faults`): a stream with a
registered *text twin* (the edge-list file the tape was converted from)
participates in the recovery ladder as its own tier - exhausted retries
on a read fault or a mid-run :class:`~repro.errors.TapeFormatError`
degrade ``mmap->text`` and the pass replays against the twin, which by
the conversion contract carries the identical edge sequence, so the
estimate stays bit-identical.  :func:`repro.core.faults.recovery_scope`
restores the mmap tier when the estimate returns.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional, Union

from ..errors import StreamError, StreamReadError, TapeFormatError
from ..types import Edge
from .base import DEFAULT_CHUNK_EDGES, EdgeStream, StreamStats
from .file import FileEdgeStream, _maybe_inject_read_fault
from .shm import ROW_BYTES, TAPE_TAG, ChunkHandle

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

#: Leading magic bytes: the PNG trick - a high bit to trip text-mode
#: transfers, a human-greppable name, and a CR/LF pair that a newline
#: translation would mangle.
MAGIC = b"\x89ETAPE\r\n"

#: Current (and only) format version.
VERSION = 1

#: Fixed header size; the payload starts at this offset.
HEADER_BYTES = 64

#: Header flag bit 0: every payload row satisfies ``0 <= u < v``.
FLAG_CANONICAL = 1

#: ``<`` = little-endian: 8s magic, I version, I flags, q edges,
#: q max vertex, q vertex bound, Q checksum, 16x reserved = 64 bytes.
_HEADER_STRUCT = struct.Struct("<8sIIqqqQ16x")

#: Strided-fingerprint sampling: up to this many blocks of this many rows.
_SAMPLE_BLOCKS = 64
_SAMPLE_ROWS = 1024

#: Runtime override flipped by the recovery ladder's ``mmap->text``
#: degradation; consulted per pass like the file stream's prefetch flag.
_mmap_disabled = False


def mmap_enabled() -> bool:
    """Whether :class:`MmapEdgeStream` passes may read through the mapping."""
    return not _mmap_disabled


def set_mmap(enabled: bool) -> None:
    """Flip the runtime mmap override (recovery ladder hook).

    Only streams with a registered text twin change behaviour: a disabled
    mmap tier makes their passes delegate to the twin's text parser.  A
    stream with no twin has nothing to degrade to and keeps reading the
    mapping.
    """
    global _mmap_disabled
    _mmap_disabled = not enabled


@dataclass(frozen=True)
class TapeHeader:
    """The decoded fixed header of one ``.etape`` file."""

    version: int
    flags: int
    num_edges: int
    max_vertex_id: int
    num_vertices_upper: int
    checksum: int
    #: The raw 64 header bytes, kept for fingerprinting.
    raw: bytes

    @property
    def canonical(self) -> bool:
        """Whether every payload row satisfies ``0 <= u < v``."""
        return bool(self.flags & FLAG_CANONICAL)

    @property
    def payload_bytes(self) -> int:
        """Exact payload size implied by the edge count."""
        return self.num_edges * ROW_BYTES


def is_tape(path: Union[str, "os.PathLike[str]"]) -> bool:
    """Whether ``path`` starts with the ``.etape`` magic bytes.

    Unreadable or too-short files answer ``False`` (the caller's text
    path then raises its own, more specific error).
    """
    try:
        with open(os.fspath(path), "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def read_header(path: Union[str, "os.PathLike[str]"]) -> TapeHeader:
    """Decode and structurally validate the header of one ``.etape`` file.

    Checks, in order: the file opens, the header is complete, the magic
    matches, the version is supported, every count is sane, and the file
    size equals header plus the payload the edge count implies (so a
    truncated - or padded - tape is rejected here, not as a garbage
    sweep later).  Violations raise
    :class:`~repro.errors.TapeFormatError`.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw = handle.read(HEADER_BYTES)
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
    except OSError as exc:
        raise StreamError(f"tape file not found or unreadable: {path}: {exc}") from exc
    if len(raw) < HEADER_BYTES:
        raise TapeFormatError(
            f"{path}: truncated tape header ({len(raw)} of {HEADER_BYTES} bytes)"
        )
    magic, version, flags, m, max_vertex, n_upper, checksum = _HEADER_STRUCT.unpack(raw)
    if magic != MAGIC:
        raise TapeFormatError(f"{path}: bad magic {magic!r}; not an .etape tape")
    if version != VERSION:
        raise TapeFormatError(
            f"{path}: unsupported tape version {version} (this build reads {VERSION})"
        )
    if m < 0 or max_vertex < -1 or n_upper != max_vertex + 1:
        raise TapeFormatError(
            f"{path}: corrupt header (m={m}, max_vertex={max_vertex}, n={n_upper})"
        )
    expected = HEADER_BYTES + m * ROW_BYTES
    if size != expected:
        raise TapeFormatError(
            f"{path}: payload size mismatch - header promises {m} edges "
            f"({expected} bytes total), file has {size} bytes"
        )
    return TapeHeader(
        version=version,
        flags=flags,
        num_edges=m,
        max_vertex_id=max_vertex,
        num_vertices_upper=n_upper,
        checksum=checksum,
        raw=raw,
    )


def _sample_starts(m: int) -> Iterator[int]:
    """Deterministic strided sample offsets covering first and last rows."""
    if m <= _SAMPLE_BLOCKS * _SAMPLE_ROWS:
        return iter(range(0, m, _SAMPLE_ROWS))  # small tape: hash it all
    last = m - _SAMPLE_ROWS
    return iter(sorted({(i * last) // (_SAMPLE_BLOCKS - 1) for i in range(_SAMPLE_BLOCKS)}))


def tape_fingerprint(path: Union[str, "os.PathLike[str]"]) -> str:
    """Content fingerprint: SHA-256 of the header plus strided row samples.

    The header already pins ``m``, the vertex bound, the flags, and the
    writer's full-payload CRC-32; the strided samples (up to
    :data:`_SAMPLE_BLOCKS` blocks of :data:`_SAMPLE_ROWS` rows, always
    including the first and last rows) additionally bind the fingerprint
    to payload bytes directly, so it is stable across byte-identical
    rewrites, changes whenever content changes, and costs O(1) reads on
    tapes of any size.  This is the cache key a future estimate-serving
    daemon would use.
    """
    path = os.fspath(path)
    header = read_header(path)
    digest = hashlib.sha256()
    digest.update(header.raw)
    if header.num_edges:
        try:
            with open(path, "rb") as handle:
                for start in _sample_starts(header.num_edges):
                    rows = min(_SAMPLE_ROWS, header.num_edges - start)
                    handle.seek(HEADER_BYTES + start * ROW_BYTES)
                    digest.update(handle.read(rows * ROW_BYTES))
        except OSError as exc:
            raise StreamReadError(f"{path}: cannot read tape for fingerprint: {exc}") from exc
    return digest.hexdigest()


def verify_tape(path: Union[str, "os.PathLike[str]"]) -> TapeHeader:
    """Full-payload checksum verification (one sequential read).

    Opening a tape validates structure only; this re-reads the payload
    and checks the writer's CRC-32, raising
    :class:`~repro.errors.TapeFormatError` on mismatch.  Used by
    ``repro convert --validate`` and available to callers that want the
    stronger guarantee before long runs.
    """
    path = os.fspath(path)
    header = read_header(path)
    crc = 0
    try:
        with open(path, "rb") as handle:
            handle.seek(HEADER_BYTES)
            while True:
                piece = handle.read(1 << 20)
                if not piece:
                    break
                crc = zlib.crc32(piece, crc)
    except OSError as exc:
        raise StreamReadError(f"{path}: cannot read tape for verification: {exc}") from exc
    if crc != header.checksum:
        raise TapeFormatError(
            f"{path}: payload checksum mismatch "
            f"(header {header.checksum:#010x}, payload {crc:#010x})"
        )
    return header


def write_tape(
    source: Union[str, "os.PathLike[str]", EdgeStream],
    path: Union[str, "os.PathLike[str]"],
    chunk_size: int = DEFAULT_CHUNK_EDGES,
) -> TapeHeader:
    """Stream ``source`` into an ``.etape`` file at ``path``, bounded memory.

    ``source`` is an :class:`~repro.streams.base.EdgeStream` or a file
    path (auto-detected: a text edge list is parsed, an existing tape is
    copied through the same streaming path).  Rows are written exactly in
    stream order - conversion never reorders or canonicalizes, so the
    tape replays the identical sequence and estimates stay bit-identical.
    The canonical header flag, the extrema, and the payload CRC-32 are
    accumulated per chunk while streaming; the header is patched in at
    the end.  Returns the written :class:`TapeHeader`.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if isinstance(source, (str, os.PathLike)):
        source = open_edge_stream(source)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - the CI image bakes NumPy in
        np = None
    path = os.fspath(path)
    m = 0
    max_vertex = -1
    crc = 0
    canonical = True
    with open(path, "wb") as out:
        out.write(b"\x00" * HEADER_BYTES)
        if np is not None:
            for block in source.iter_chunks(chunk_size):
                block = np.ascontiguousarray(block, dtype=np.dtype("<i8"))
                if not len(block):
                    continue
                m += len(block)
                max_vertex = max(max_vertex, int(block.max()))
                if canonical:
                    u, v = block[:, 0], block[:, 1]
                    canonical = bool((u >= 0).all() and (u < v).all())
                payload = block.tobytes()
                crc = zlib.crc32(payload, crc)
                out.write(payload)
        else:  # pragma: no cover - no-NumPy fallback, exercised manually
            pack = struct.Struct("<qq").pack
            for u, v in source:
                m += 1
                max_vertex = max(max_vertex, u, v)
                canonical = canonical and 0 <= u < v
                payload = pack(u, v)
                crc = zlib.crc32(payload, crc)
                out.write(payload)
        flags = FLAG_CANONICAL if canonical else 0  # an empty tape is trivially canonical
        raw = _HEADER_STRUCT.pack(MAGIC, VERSION, flags, m, max_vertex, max_vertex + 1, crc)
        out.seek(0)
        out.write(raw)
    return TapeHeader(
        version=VERSION,
        flags=flags,
        num_edges=m,
        max_vertex_id=max_vertex,
        num_vertices_upper=max_vertex + 1,
        checksum=crc,
        raw=raw,
    )


def open_edge_stream(
    path: Union[str, "os.PathLike[str]"], validate: bool = True
) -> EdgeStream:
    """Open a tape file as the right stream, sniffing the magic bytes.

    An ``.etape`` file becomes an :class:`MmapEdgeStream`; anything else
    is treated as a text edge list (:class:`FileEdgeStream`, with
    ``validate`` forwarded).  This is the single auto-detection point
    every file-loading entry point (CLI, harness, bench suite) goes
    through, so both formats are accepted transparently everywhere.
    """
    if is_tape(path):
        return MmapEdgeStream(path)
    return FileEdgeStream(path, validate=validate)


class MmapEdgeStream(EdgeStream):
    """A replayable zero-copy stream over one memory-mapped ``.etape`` file.

    The header is decoded (and structurally validated) at construction,
    so ``stats()`` and ``len()`` are O(1) and raise nothing later; the
    payload is mapped lazily on the first chunked pass and every chunk is
    a read-only slice of that one mapping - a sweep performs no parsing,
    no copies, and no allocation beyond the view objects.

    ``text_twin`` (also settable later via :meth:`register_text_twin`)
    names the text edge list this tape was converted from.  It is the
    stream's degradation target: when the recovery ladder drops the mmap
    tier (``mmap->text``), passes delegate to a
    :class:`FileEdgeStream` over the twin, whose edge sequence is
    identical by the conversion contract, so recovered estimates stay
    bit-identical.  Without a twin the stream has no fallback tier.
    """

    supports_native_chunks = True

    def __init__(
        self,
        path: Union[str, "os.PathLike[str]"],
        text_twin: Union[str, "os.PathLike[str]", None] = None,
    ) -> None:
        self._path = os.path.abspath(os.fspath(path))
        self._header = read_header(self._path)
        self._rows_map: Optional["numpy.ndarray"] = None
        self._fingerprint: Optional[str] = None
        self._text_twin: Optional[str] = None
        self._twin_stream: Optional[FileEdgeStream] = None
        if text_twin is not None:
            self.register_text_twin(text_twin)

    @property
    def path(self) -> str:
        """Absolute path of the mapped tape file."""
        return self._path

    @property
    def header(self) -> TapeHeader:
        """The decoded tape header."""
        return self._header

    # -- text-twin degradation tier ------------------------------------

    @property
    def text_twin(self) -> Optional[str]:
        """Path of the registered text twin, if any."""
        return self._text_twin

    @property
    def has_text_twin(self) -> bool:
        """Whether a text fallback tier is available to the ladder."""
        return self._text_twin is not None

    def register_text_twin(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Register the text edge list this tape was converted from.

        The caller asserts the twin replays the identical edge sequence
        (``repro convert`` guarantees it); the recovery ladder may then
        degrade this stream's passes to text parsing.
        """
        twin = os.fspath(path)
        if not os.path.exists(twin):
            raise StreamError(f"text twin not found: {twin}")
        self._text_twin = twin
        self._twin_stream = None

    def _delegate(self) -> Optional[FileEdgeStream]:
        """The twin stream to read through while the mmap tier is degraded."""
        if self._text_twin is None or mmap_enabled():
            return None
        if self._twin_stream is None:
            self._twin_stream = FileEdgeStream(self._text_twin)
        return self._twin_stream

    # -- mapped access -------------------------------------------------

    def _check_intact(self) -> None:
        """Cheap per-pass structural re-check (one ``stat`` call).

        The mapping pins the header's promises at open; a tape truncated
        or replaced underneath a later pass would otherwise surface as a
        garbage scan (or a bus error on a shrunk mapping).  Raising the
        typed error here lets the recovery ladder degrade to the text
        twin instead.
        """
        try:
            size = os.stat(self._path).st_size
        except OSError as exc:
            raise StreamReadError(f"{self._path}: tape vanished mid-run: {exc}") from exc
        expected = HEADER_BYTES + self._header.payload_bytes
        if size != expected:
            raise TapeFormatError(
                f"{self._path}: tape changed size mid-run "
                f"({size} bytes, header promises {expected})"
            )

    def _rows(self) -> "numpy.ndarray":
        """The ``(m, 2)`` read-only mapped payload, mapped once per stream."""
        if self._rows_map is None:
            import numpy as np

            if self._header.num_edges == 0:
                self._rows_map = np.empty((0, 2), dtype=np.int64)
            else:
                try:
                    self._rows_map = np.memmap(
                        self._path,
                        dtype=np.dtype("<i8"),
                        mode="r",
                        offset=HEADER_BYTES,
                        shape=(self._header.num_edges, 2),
                    )
                except (OSError, ValueError) as exc:
                    raise StreamReadError(
                        f"{self._path}: cannot map tape payload: {exc}"
                    ) from exc
        return self._rows_map

    def __iter__(self) -> Iterator[Edge]:
        delegate = self._delegate()
        if delegate is not None:
            yield from delegate
            return
        self._check_intact()
        try:
            import numpy  # noqa: F401
        except ImportError:  # pragma: no cover - NumPy baked into CI
            yield from self._iter_unpacked()
            return
        for block in self.iter_chunks():
            for u, v in block.tolist():  # tolist: Python ints, like the text path
                yield (u, v)

    def _iter_unpacked(self) -> Iterator[Edge]:  # pragma: no cover - no-NumPy fallback
        unpack = struct.Struct("<qq")
        with open(self._path, "rb") as handle:
            handle.seek(HEADER_BYTES)
            while True:
                piece = handle.read(ROW_BYTES * 4096)
                if not piece:
                    return
                for edge in unpack.iter_unpack(piece):
                    yield edge

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_EDGES) -> Iterator["numpy.ndarray"]:
        """Zero-copy chunked pass: read-only slices of the mapped payload.

        The ``file.read`` fault-injection site fires once per yielded
        chunk, exactly like the text parser's batches, so injection
        schedules land at the same points on either format.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        delegate = self._delegate()
        if delegate is not None:
            yield from delegate.iter_chunks(chunk_size)
            return
        self._check_intact()
        rows = self._rows()
        for start in range(0, len(rows), chunk_size):
            _maybe_inject_read_fault(self._path)
            yield rows[start : start + chunk_size]

    def iter_chunk_handles(self, chunk_size: int = DEFAULT_CHUNK_EDGES):
        """Sharded pass: ship ``(path, start, rows)`` descriptors, no spooling.

        Each handle names a row range of the tape file itself; workers
        map the file once (:func:`resolve_tape_block`) and slice it
        zero-copy, so the executor neither pickles rows nor spools them
        into shared-memory segments.  Consecutive descriptors coalesce
        like shm refs, so a whole task batch is usually one descriptor.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        delegate = self._delegate()
        if delegate is not None:
            yield from delegate.iter_chunk_handles(chunk_size)
            return
        self._check_intact()
        m = self._header.num_edges
        for start in range(0, m, chunk_size):
            _maybe_inject_read_fault(self._path)
            rows = min(chunk_size, m - start)
            yield ChunkHandle(rows=rows, ref=(TAPE_TAG, self._path, start, rows))

    def stats(self) -> StreamStats:
        """O(1): both statistics come straight from the header."""
        return StreamStats(
            num_edges=self._header.num_edges, max_vertex_id=self._header.max_vertex_id
        )

    def __len__(self) -> int:
        return self._header.num_edges

    def fingerprint(self) -> str:
        """The tape's content fingerprint (see :func:`tape_fingerprint`)."""
        if self._fingerprint is None:
            self._fingerprint = tape_fingerprint(self._path)
        return self._fingerprint


# ---------------------------------------------------------------------------
# worker side

#: Worker-side cache of mapped tapes, keyed by absolute path (mirrors the
#: shm attach cache: tiny, LRU, one mapping per tape per worker).
_MAP_SLOTS = 4
_mapped: "OrderedDict[str, numpy.ndarray]" = OrderedDict()


def _map_payload(path: str) -> "numpy.ndarray":
    rows = _mapped.get(path)
    if rows is None:
        import numpy as np

        try:
            flat = np.memmap(path, dtype=np.dtype("<i8"), mode="r", offset=HEADER_BYTES)
        except (OSError, ValueError) as exc:
            raise StreamReadError(f"{path}: cannot map tape payload: {exc}") from exc
        if flat.size % 2:
            raise TapeFormatError(f"{path}: truncated tape payload ({flat.nbytes} bytes)")
        rows = flat.reshape(-1, 2)
        _mapped[path] = rows
        while len(_mapped) > _MAP_SLOTS:
            _mapped.popitem(last=False)
    else:
        _mapped.move_to_end(path)
    return rows


def resolve_tape_block(block) -> "numpy.ndarray":
    """Resolve one ``(TAPE_TAG, path, start, rows)`` descriptor to rows.

    Called from :func:`repro.streams.shm.resolve_block` on both the
    worker side (sharded tasks) and the parent side (materializing a
    task's blocks when the descriptor transport degrades).  A descriptor
    past the end of the file - a tape truncated after dispatch - raises
    :class:`~repro.errors.TapeFormatError` rather than returning a short
    read.
    """
    _, path, start, rows = block
    mapped = _map_payload(path)
    if start + rows > len(mapped):
        raise TapeFormatError(
            f"{path}: tape descriptor ({start}, {rows}) past payload end ({len(mapped)} rows)"
        )
    return mapped[start : start + rows]
