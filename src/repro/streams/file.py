"""File-backed edge streams.

:class:`FileEdgeStream` replays a whitespace-separated edge-list file without
ever materializing it in memory, so the stream abstraction holds even for
graphs far larger than RAM.  The on-disk format is the de-facto standard
"u v" per line, with ``#`` comments and blank lines ignored (the format used
by SNAP and most public graph repositories).

Chunked passes parse the file in ``chunk_size``-line batches through
``numpy.loadtxt`` (data lines pre-filtered so comment/blank lines are
classified once, not re-tokenized by the batch parser) and canonicalize
each batch with vectorized min/max, so the per-line Python interpreter
cost of :meth:`__iter__` is paid only on
the pure-Python fallback path.  Batch parsing runs on a double-buffered
reader thread (:data:`PREFETCH_CHUNKS` ahead of the consumer), so parse
and pass-kernel scan overlap; ``REPRO_FILE_PREFETCH=0`` forces inline
parsing.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterator

from ..errors import StreamError, StreamReadError
from ..types import Edge, canonical_edge
from .base import DEFAULT_CHUNK_EDGES, EdgeStream, StreamStats

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

#: Chunks the reader thread may parse ahead of the consumer (double
#: buffering: one chunk being scanned, up to this many already parsed).
PREFETCH_CHUNKS = 2

#: Runtime override flipped by the recovery ladder's ``prefetch->sync``
#: degradation (see :mod:`repro.core.faults`); ``REPRO_FILE_PREFETCH=0``
#: remains the static knob and is still consulted per pass.
_prefetch_disabled = False


def prefetch_enabled() -> bool:
    """Whether chunked passes may use the prefetch reader thread."""
    if _prefetch_disabled:
        return False
    return os.environ.get("REPRO_FILE_PREFETCH", "1") != "0"


def set_prefetch(enabled: bool) -> None:
    """Flip the runtime prefetch override (recovery ladder hook)."""
    global _prefetch_disabled
    _prefetch_disabled = not enabled


def _maybe_inject_read_fault(path: str) -> None:
    # Imported lazily: repro.streams loads during repro.core's own import.
    from ..core import faults

    if faults.fires(faults.FILE_READ):
        raise StreamReadError(f"{path}: injected fault: {faults.FILE_READ}")


class FileEdgeStream(EdgeStream):
    """A replayable stream backed by an edge-list file.

    Parameters
    ----------
    path:
        Path to the edge-list file.
    validate:
        When ``True`` (default), edges are canonicalized on the fly and
        malformed lines raise :class:`~repro.errors.StreamError`.  Duplicate
        detection would require O(m) memory, defeating the purpose of a
        file stream, so it is *not* performed here; use
        :class:`~repro.graph.builder.GraphBuilder` to sanitize files first.

    The stream length is computed lazily on first use of ``len()`` (one extra
    file sweep) and cached.
    """

    supports_native_chunks = True

    def __init__(self, path: str | os.PathLike[str], validate: bool = True) -> None:
        self._path = os.fspath(path)
        self._validate = validate
        self._length: int | None = None
        self._stats: StreamStats | None = None
        #: Signals-and-joins the reader thread of the live prefetched pass,
        #: if any; a fresh chunked pass calls it to reap a reader whose
        #: consumer was abandoned without ``close()`` (see
        #: :meth:`_prefetched_chunks`).
        self._prefetch_retire = None
        if not os.path.exists(self._path):
            raise StreamError(f"edge-list file not found: {self._path}")

    @property
    def path(self) -> str:
        """The edge-list file this stream reads (snapshot fingerprinting)."""
        return self._path

    def _parse(self, line: str, lineno: int) -> Edge | None:
        text = line.strip()
        if not text or text.startswith("#"):
            return None
        parts = text.split()
        if len(parts) < 2:
            raise StreamError(f"{self._path}:{lineno}: expected 'u v', got {text!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise StreamError(f"{self._path}:{lineno}: non-integer vertex in {text!r}") from exc
        if self._validate:
            return canonical_edge(u, v)
        return (u, v)

    def __iter__(self) -> Iterator[Edge]:
        # A per-line pass replays the tape just as a chunked one does, so
        # it equally proves an abandoned prefetched pass dead (the retire
        # hook no-ops when the caller *is* the reader thread - the batch
        # parser's error diagnosis re-scans the file from there).
        self.retire_prefetcher()
        with open(self._path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                edge = self._parse(line, lineno)
                if edge is not None:
                    yield edge

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_EDGES) -> Iterator["numpy.ndarray"]:
        """Parse the file in ``chunk_size``-row batches of int64 pairs.

        Yields the same edge sequence as :meth:`__iter__` (including
        canonicalization when ``validate`` is set), but parses whole batches
        through ``numpy.loadtxt`` - comments and blank lines are skipped
        without counting toward the batch size.

        Parsing runs on a **double-buffered reader thread**: while the
        caller scans chunk ``i``, the thread is already parsing chunk
        ``i + 1`` (a bounded queue of :data:`PREFETCH_CHUNKS` keeps it one
        step ahead), so file parse and pass kernels overlap instead of
        alternating.  The chunk sequence is exactly that of the synchronous
        parser; set ``REPRO_FILE_PREFETCH=0`` to disable the thread and
        parse inline.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if not prefetch_enabled():
            self.retire_prefetcher()  # inline passes reap orphans too
            yield from self._parse_chunks(chunk_size)
            return
        yield from self._prefetched_chunks(chunk_size)

    def _parse_chunks(self, chunk_size: int) -> Iterator["numpy.ndarray"]:
        """The synchronous batch parser (one ``loadtxt`` call per chunk).

        Data lines are gathered with a cheap Python-level skip of comment
        and blank lines, so each such line is classified exactly once per
        batch; the previous ``max_rows``-driven parse made ``loadtxt``
        tokenize them a second time while counting data rows (and warn
        about it).  The batch itself still parses through one vectorized
        ``loadtxt`` call per chunk - now over pre-filtered lines, where
        every line is known to contribute exactly one row, so the
        end-of-batch test is exact.  Inline ``# ...`` suffixes on data
        lines are still stripped by ``loadtxt`` itself.

        A batch-parse failure is re-diagnosed with the per-line parser
        (one extra sweep of an already-failing file) so the raised
        :class:`~repro.errors.StreamError` carries the standard
        line-numbered message wherever the chunks were consumed - a plain
        chunked pass, the prefetch reader thread, or the sharded executor
        mid-way through shared-memory spooling.
        """
        import numpy as np

        try:
            handle = open(self._path, "r", encoding="utf-8")
        except OSError as exc:
            # Typed as a *read* error: the file existed when the stream was
            # built, so losing it mid-run is a transient-tape failure the
            # recovery layer may retry, unlike a malformed file.
            raise StreamReadError(f"{self._path}: cannot open for chunked read: {exc}") from exc
        with handle:
            while True:
                lines: list[str] = []
                try:
                    for line in handle:
                        head = line.lstrip()
                        if not head or head[0] == "#":
                            continue  # skipped here, once; never re-tokenized
                        lines.append(line)
                        if len(lines) == chunk_size:
                            break
                except OSError as exc:
                    raise StreamReadError(
                        f"{self._path}: I/O error during chunked read: {exc}"
                    ) from exc
                if not lines:
                    return
                try:
                    block = np.loadtxt(
                        lines,
                        dtype=np.int64,
                        comments="#",
                        usecols=(0, 1),
                        ndmin=2,
                    )
                except ValueError as exc:
                    raise self._line_numbered_error(exc) from exc
                block = block.reshape(-1, 2)
                if self._validate:
                    block = self._canonicalize(np, block)
                _maybe_inject_read_fault(self._path)
                yield block
                if len(lines) < chunk_size:
                    return

    def _line_numbered_error(self, exc: Exception) -> StreamError:
        """Locate the first malformed line for the standard diagnostic.

        ``numpy.loadtxt`` reports batch errors without a usable line
        number (and the handle has already advanced), so the file is
        re-scanned with the per-line parser, whose failure carries
        ``path:lineno``.  If the per-line parser somehow accepts every
        line (a batch-only artifact), the original batch error is wrapped
        instead.
        """
        try:
            for _ in self:
                pass
        except StreamError as located:
            return located
        return StreamError(f"{self._path}: malformed edge-list line ({exc})")

    def retire_prefetcher(self) -> None:
        """Signal and join the reader thread of an abandoned chunked pass.

        A consumer that neither exhausts nor closes its chunk iterator -
        typically because an exception is propagating with the consumer's
        frame pinned in its traceback - leaves the iterator suspended with
        the reader thread parked behind the full queue, holding the file
        handle open.  The thread cannot detect that on its own (the
        consumer might still legitimately resume), so this hook retires
        it explicitly; every fresh pass - chunked or per-line - calls it,
        because a replay of the tape proves the old pass is dead.
        Idempotent, a no-op when no prefetched pass is live, and a no-op
        from the reader thread itself (whose error diagnosis re-scans the
        file per line while its own pass is still registered).
        """
        retire = self._prefetch_retire
        if retire is not None and retire():
            self._prefetch_retire = None

    def _prefetched_chunks(self, chunk_size: int) -> Iterator["numpy.ndarray"]:
        """Run :meth:`_parse_chunks` on a reader thread, double-buffered.

        The producer parses ahead into a bounded queue and checks a stop
        event between puts, so a pass abandoned *with* generator
        ``close()`` releases the thread promptly, and one abandoned
        *without* it is reaped by the next pass over the stream
        (:meth:`retire_prefetcher`); parser exceptions are re-raised in
        the consumer at the point the failing chunk would have appeared.
        """
        import queue as queue_module
        import threading

        self.retire_prefetcher()
        chunks: "queue_module.Queue" = queue_module.Queue(maxsize=PREFETCH_CHUNKS)
        stop = threading.Event()
        end = object()  # sentinel: clean end of file
        retired = object()  # sentinel: reaped by a newer pass over the stream

        def reader() -> None:
            try:
                for block in self._parse_chunks(chunk_size):
                    while not stop.is_set():
                        try:
                            chunks.put(block, timeout=0.05)
                            break
                        except queue_module.Full:
                            continue
                    if stop.is_set():
                        return
                payload = end
            except BaseException as exc:  # forwarded, not swallowed
                payload = exc
            while not stop.is_set():
                try:
                    chunks.put(payload, timeout=0.05)
                    return
                except queue_module.Full:
                    continue

        thread = threading.Thread(target=reader, name="repro-file-prefetch", daemon=True)
        thread.start()

        def retire() -> bool:
            if threading.current_thread() is thread:
                # The reader re-scanning the file for a line-numbered
                # diagnostic must not retire (join) itself; its pass is
                # still the live one.
                return False
            stop.set()
            thread.join()
            # Drain whatever the reader had buffered and leave the retired
            # pill in its place (the join above makes both race-free, and
            # the queue is empty after the drain so the put cannot block):
            # a resumed retired pass must fail on its first pull, not
            # first replay stale chunks - or, when the tail plus end
            # sentinel happened to be buffered, silently complete against
            # a tape that has been re-read underneath it.
            while True:
                try:
                    chunks.get_nowait()
                except queue_module.Empty:
                    break
            chunks.put_nowait(retired)
            return True

        self._prefetch_retire = retire
        try:
            while True:
                item = chunks.get()
                if item is end:
                    return
                if item is retired:
                    # Retired by a newer pass while suspended: the tape
                    # has been replayed underneath this pass, so resuming
                    # it cannot produce a coherent sequence.
                    raise StreamError(
                        f"{self._path}: chunked pass abandoned and retired "
                        "by a newer pass over the stream"
                    )
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            thread.join()
            if self._prefetch_retire is retire:
                self._prefetch_retire = None

    def _canonicalize(self, np, block: "numpy.ndarray") -> "numpy.ndarray":
        """Vectorized ``canonical_edge`` over one parsed batch."""
        u, v = block[:, 0], block[:, 1]
        bad = (u == v) | (u < 0) | (v < 0)
        if bad.any():
            row = int(np.flatnonzero(bad)[0])
            canonical_edge(int(u[row]), int(v[row]))  # raises with the standard message
            raise StreamError(f"{self._path}: unreachable")  # pragma: no cover
        return np.column_stack((np.minimum(u, v), np.maximum(u, v)))

    def stats(self) -> StreamStats:
        """One-pass stream statistics via the batch parser, computed once.

        The file is immutable for the stream's purposes (replayability
        already demands it), so the statistics are cached like
        :class:`~repro.streams.memory.InMemoryEdgeStream`'s; the scan
        itself runs over :meth:`iter_chunks` - one vectorized ``max`` per
        parsed batch instead of one interpreter iteration per edge - and
        also settles the cached length for free.  Falls back to the
        per-edge reference scan without NumPy.
        """
        if self._stats is None:
            try:
                import numpy as np  # noqa: F401
            except ImportError:  # pragma: no cover - the CI image bakes NumPy in
                self._stats = super().stats()
            else:
                try:
                    m = 0
                    max_vertex = -1
                    for block in self.iter_chunks():
                        m += len(block)
                        max_vertex = max(max_vertex, int(block.max()))
                    self._stats = StreamStats(num_edges=m, max_vertex_id=max_vertex)
                except StreamReadError:
                    # Transient tape failure, not a malformed file: the
                    # per-line rescan would mask it as a silent retry -
                    # propagate so the recovery layer decides.
                    raise
                except StreamError:
                    # Re-scan per line so malformed files fail with the
                    # standard line-numbered diagnostic, not a batch error.
                    self._stats = super().stats()
            self._length = self._stats.num_edges
        return self._stats

    def __len__(self) -> int:
        """The stream length ``m``, computed lazily and cached.

        Reuses the cached :meth:`stats` length when available; otherwise
        one chunked sweep sums the parsed batch lengths (the Python
        edge-by-edge count is only the no-NumPy fallback).
        """
        if self._length is None:
            if self._stats is not None:
                self._length = self._stats.num_edges
            else:
                try:
                    import numpy as np  # noqa: F401
                except ImportError:  # pragma: no cover - NumPy baked into CI
                    self._length = sum(1 for _ in self)
                else:
                    try:
                        self._length = sum(len(block) for block in self.iter_chunks())
                    except StreamReadError:
                        raise  # transient, not malformed - see stats()
                    except StreamError:
                        # Per-line rescan for the line-numbered diagnostic.
                        self._length = sum(1 for _ in self)
        return self._length
