"""File-backed edge streams.

:class:`FileEdgeStream` replays a whitespace-separated edge-list file without
ever materializing it in memory, so the stream abstraction holds even for
graphs far larger than RAM.  The on-disk format is the de-facto standard
"u v" per line, with ``#`` comments and blank lines ignored (the format used
by SNAP and most public graph repositories).
"""

from __future__ import annotations

import os
from typing import Iterator

from ..errors import StreamError
from ..types import Edge, canonical_edge
from .base import EdgeStream


class FileEdgeStream(EdgeStream):
    """A replayable stream backed by an edge-list file.

    Parameters
    ----------
    path:
        Path to the edge-list file.
    validate:
        When ``True`` (default), edges are canonicalized on the fly and
        malformed lines raise :class:`~repro.errors.StreamError`.  Duplicate
        detection would require O(m) memory, defeating the purpose of a
        file stream, so it is *not* performed here; use
        :class:`~repro.graph.builder.GraphBuilder` to sanitize files first.

    The stream length is computed lazily on first use of ``len()`` (one extra
    file sweep) and cached.
    """

    def __init__(self, path: str | os.PathLike[str], validate: bool = True) -> None:
        self._path = os.fspath(path)
        self._validate = validate
        self._length: int | None = None
        if not os.path.exists(self._path):
            raise StreamError(f"edge-list file not found: {self._path}")

    def _parse(self, line: str, lineno: int) -> Edge | None:
        text = line.strip()
        if not text or text.startswith("#"):
            return None
        parts = text.split()
        if len(parts) < 2:
            raise StreamError(f"{self._path}:{lineno}: expected 'u v', got {text!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise StreamError(f"{self._path}:{lineno}: non-integer vertex in {text!r}") from exc
        if self._validate:
            return canonical_edge(u, v)
        return (u, v)

    def __iter__(self) -> Iterator[Edge]:
        with open(self._path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                edge = self._parse(line, lineno)
                if edge is not None:
                    yield edge

    def __len__(self) -> int:
        if self._length is None:
            self._length = sum(1 for _ in self)
        return self._length
