"""In-memory edge streams.

:class:`InMemoryEdgeStream` wraps a list of edges as a replayable stream.
It is the workhorse for experiments: generators produce a
:class:`~repro.graph.adjacency.Graph`, the harness fixes an order (shuffled
with a seed, sorted, or adversarial - see :mod:`repro.streams.transforms`),
and estimators then consume the stream without ever touching the graph.

For the chunked engine the stream lazily mirrors its edges into one
contiguous ``(m, 2)`` int64 NumPy array, so :meth:`iter_chunks` is pure
zero-copy slicing - the fastest possible chunk producer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from ..errors import StreamError
from ..types import Edge, normalize_edges
from .base import DEFAULT_CHUNK_EDGES, EdgeStream, StreamStats

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy


class InMemoryEdgeStream(EdgeStream):
    """A replayable stream over an in-memory edge sequence.

    Parameters
    ----------
    edges:
        The stream content, in stream order.  Canonicalized and checked for
        duplicates (the paper's model has unrepeated edges).
    validate:
        Set to ``False`` to skip canonicalization when the caller guarantees
        canonical, duplicate-free input (used on hot paths by the harness
        after an already-validated transform).
    """

    supports_native_chunks = True

    def __init__(self, edges: Iterable[tuple[int, int]], validate: bool = True) -> None:
        if validate:
            self._edges: Sequence[Edge] = normalize_edges(edges)
        else:
            self._edges = list(edges)  # type: ignore[arg-type]
        self._array: Optional["numpy.ndarray"] = None
        self._stats: Optional[StreamStats] = None
        self._segment = None  # lazy shared-memory mirror (sharded passes only)
        self._segment_failed = False

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __len__(self) -> int:
        return len(self._edges)

    def _backing_array(self) -> "numpy.ndarray":
        """The stream as one contiguous ``(m, 2)`` int64 array (built once)."""
        if self._array is None:
            import numpy as np

            self._array = np.array(self._edges, dtype=np.int64).reshape(-1, 2)
        return self._array

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_EDGES) -> Iterator["numpy.ndarray"]:
        """Yield zero-copy ``chunk_size``-row views of the backing array."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        array = self._backing_array()
        for start in range(0, len(array), chunk_size):
            yield array[start : start + chunk_size]

    def _shared_segment(self):
        """The shared-memory mirror of the backing array, or ``None``.

        Built lazily on first *sharded* use (serial passes never pay for
        it): one copy of the tape into a
        :class:`~repro.streams.shm.SharedEdgeSegment`, after which every
        sharded pass ships zero-copy ``(name, start, rows)`` descriptors
        instead of pickled row blocks.  The segment lives as long as the
        stream (a finalizer unlinks it) and any creation failure falls
        back to the pickled transport permanently for this stream.
        """
        if self._segment is None and not self._segment_failed:
            from . import shm

            if not shm.shm_enabled():
                self._segment_failed = True
                return None
            try:
                self._segment = shm.SharedEdgeSegment.from_array(self._backing_array())
            except (OSError, ImportError):  # pragma: no cover - no /dev/shm
                shm.disable_shm()
                self._segment_failed = True
        return self._segment

    def iter_chunk_handles(self, chunk_size: int = DEFAULT_CHUNK_EDGES):
        """Chunk handles backed by the shared segment (descriptors, no rows).

        Falls back to the generic array-carrying handles when shared memory
        is unavailable.  Chunk boundaries match :meth:`iter_chunks` exactly.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        from . import shm

        # Consult the transport switch per pass (not only at segment-build
        # time): a recovery-layer shm->pickle degradation must stop an
        # already-mirrored stream from handing out segment descriptors.
        segment = self._shared_segment() if shm.shm_enabled() else None
        if segment is None:
            yield from super().iter_chunk_handles(chunk_size)
            return
        from .shm import ChunkHandle

        m = len(self._edges)
        for start in range(0, m, chunk_size):
            rows = min(chunk_size, m - start)
            yield ChunkHandle(rows=rows, ref=segment.block_ref(start, rows))

    def stats(self) -> StreamStats:
        """One-pass stream statistics, computed once and cached.

        The stream is immutable, so the statistics cannot change between
        calls; caching saves the extra full pass that drivers would
        otherwise pay per :meth:`~repro.core.driver.TriangleCountEstimator.estimate`
        invocation.
        """
        if self._stats is None:
            self._stats = super().stats()
        return self._stats

    def edge_at(self, index: int) -> Edge:
        """Random access for *tests only* - algorithms must not call this.

        Raises :class:`~repro.errors.StreamError` on out-of-range access so
        misuse fails loudly.
        """
        if not 0 <= index < len(self._edges):
            raise StreamError(f"index {index} out of range for stream of length {len(self._edges)}")
        return self._edges[index]

    @classmethod
    def from_graph(cls, graph, order: Sequence[Edge] | None = None) -> "InMemoryEdgeStream":
        """Build a stream from a :class:`~repro.graph.adjacency.Graph`.

        ``order`` optionally fixes the stream order; it must be a permutation
        of the graph's edges (checked).  Without it, deterministic sorted
        order is used - pass the output of a transform from
        :mod:`repro.streams.transforms` for shuffled/adversarial orders.
        """
        if order is None:
            return cls(graph.edge_list(), validate=False)
        if sorted(order) != graph.edge_list():
            raise StreamError("order is not a permutation of the graph's edges")
        return cls(list(order), validate=False)
