"""The edge-stream protocol.

An :class:`EdgeStream` represents the input tape of the paper's model: a
fixed, arbitrary-order sequence of distinct undirected edges that can be
replayed from the beginning any number of times, but never accessed randomly.
Implementations must return the *same sequence* on every replay - multi-pass
algorithms depend on pass-to-pass consistency (e.g. pass 2 of Algorithm 2
recomputes degrees of edges sampled in pass 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from ..types import Edge


class EdgeStream(ABC):
    """Abstract replayable edge stream.

    Subclasses implement :meth:`__iter__` (a fresh sequential pass) and
    :meth:`__len__` (the stream length ``m``, which is also learnable in one
    pass; exposing it directly avoids a bookkeeping pass in every algorithm
    and matches the standard convention in the streaming literature).
    """

    @abstractmethod
    def __iter__(self) -> Iterator[Edge]:
        """Start a fresh pass over the stream, yielding canonical edges."""

    @abstractmethod
    def __len__(self) -> int:
        """Return the number of edges ``m`` in the stream."""

    def stats(self) -> "StreamStats":
        """Compute single-pass stream statistics (n, m, max vertex id).

        Uses O(1) space beyond the two counters by tracking only extrema;
        the number of distinct vertices is *not* computable in O(1) space,
        so ``num_vertices_upper`` reports ``max_vertex_id + 1`` instead,
        which is the standard a-priori ``n`` of the model.
        """
        max_vertex = -1
        m = 0
        for u, v in self:
            m += 1
            if v > max_vertex:
                max_vertex = v
            if u > max_vertex:
                max_vertex = u
        return StreamStats(num_edges=m, max_vertex_id=max_vertex)


@dataclass(frozen=True)
class StreamStats:
    """One-pass summary of a stream: ``m`` and the largest vertex id."""

    num_edges: int
    max_vertex_id: int

    @property
    def num_vertices_upper(self) -> int:
        """An upper bound on ``n``: vertex ids live in ``[0, max_vertex_id]``."""
        return self.max_vertex_id + 1
