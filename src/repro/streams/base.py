"""The edge-stream protocol.

An :class:`EdgeStream` represents the input tape of the paper's model: a
fixed, arbitrary-order sequence of distinct undirected edges that can be
replayed from the beginning any number of times, but never accessed randomly.
Implementations must return the *same sequence* on every replay - multi-pass
algorithms depend on pass-to-pass consistency (e.g. pass 2 of Algorithm 2
recomputes degrees of edges sampled in pass 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..types import Edge

if TYPE_CHECKING:  # pragma: no cover - import-time only
    import numpy

#: Default number of edges per chunk for :meth:`EdgeStream.iter_chunks`.
#: 64k edges = 1 MiB of int64 pairs - large enough to amortize NumPy call
#: overhead, small enough to stay cache- and allocator-friendly.
DEFAULT_CHUNK_EDGES = 65536


class EdgeStream(ABC):
    """Abstract replayable edge stream.

    Subclasses implement :meth:`__iter__` (a fresh sequential pass) and
    :meth:`__len__` (the stream length ``m``, which is also learnable in one
    pass; exposing it directly avoids a bookkeeping pass in every algorithm
    and matches the standard convention in the streaming literature).

    Streams may additionally support *chunked* passes (:meth:`iter_chunks`),
    which deliver the same sequence as ``(k, 2)`` int64 NumPy arrays so that
    pass kernels can process blocks of edges with vectorized operations
    instead of one Python-level iteration per edge.  The base class provides
    a generic batching fallback over :meth:`__iter__`; implementations that
    can do better (contiguous array backing, bulk file parsing) override it
    and set :attr:`supports_native_chunks` so engines know the chunked path
    actually pays off.
    """

    #: True when :meth:`iter_chunks` is backed by a vectorized producer
    #: rather than the generic per-edge batching fallback.
    supports_native_chunks: bool = False

    @abstractmethod
    def __iter__(self) -> Iterator[Edge]:
        """Start a fresh pass over the stream, yielding canonical edges."""

    @abstractmethod
    def __len__(self) -> int:
        """Return the number of edges ``m`` in the stream."""

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_EDGES) -> Iterator["numpy.ndarray"]:
        """Start a fresh pass delivered as ``(k, 2)`` int64 arrays.

        Concatenating the yielded chunks reproduces exactly one
        :meth:`__iter__` pass; every chunk has ``1 <= k <= chunk_size`` rows
        (the final chunk may be short) and an empty stream yields nothing.
        This generic fallback batches the Python iterator, so it adds no
        speed by itself - it exists so every stream, including iterator-only
        ones, can feed the chunked pass kernels.
        """
        import numpy as np

        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        buffer: list[Edge] = []
        for edge in self:
            buffer.append(edge)
            if len(buffer) == chunk_size:
                yield np.array(buffer, dtype=np.int64).reshape(-1, 2)
                buffer.clear()
        if buffer:
            yield np.array(buffer, dtype=np.int64).reshape(-1, 2)

    def iter_chunk_handles(self, chunk_size: int = DEFAULT_CHUNK_EDGES):
        """Start a fresh pass delivered as :class:`~repro.streams.shm.ChunkHandle`\\ s.

        The handle stream is what the *sharded* executor consumes: each
        handle reports its row count and carries the rows either as a plain
        array (this generic wrapper around :meth:`iter_chunks`) or as a
        descriptor into a shared-memory segment owned by the stream
        (streams that can, e.g. :class:`~repro.streams.memory.InMemoryEdgeStream`,
        override this so worker processes read the rows with zero copies).
        The sequence of rows is exactly one :meth:`iter_chunks` pass.
        """
        from .shm import ChunkHandle

        for block in self.iter_chunks(chunk_size):
            yield ChunkHandle(rows=len(block), block=block)

    def stats(self) -> "StreamStats":
        """Compute single-pass stream statistics (n, m, max vertex id).

        Uses O(1) space beyond the two counters by tracking only extrema;
        the number of distinct vertices is *not* computable in O(1) space,
        so ``num_vertices_upper`` reports ``max_vertex_id + 1`` instead,
        which is the standard a-priori ``n`` of the model.
        """
        max_vertex = -1
        m = 0
        for u, v in self:
            m += 1
            if v > max_vertex:
                max_vertex = v
            if u > max_vertex:
                max_vertex = u
        return StreamStats(num_edges=m, max_vertex_id=max_vertex)


@dataclass(frozen=True)
class StreamStats:
    """One-pass summary of a stream: ``m`` and the largest vertex id."""

    num_edges: int
    max_vertex_id: int

    @property
    def num_vertices_upper(self) -> int:
        """An upper bound on ``n``: vertex ids live in ``[0, max_vertex_id]``."""
        return self.max_vertex_id + 1
