"""The vertex-arrival (adjacency-list) stream model.

Section 2 of the paper discusses the *adjacency list* model: "all the edges
incident on a vertex arrive together."  Formally, vertices arrive in some
order; when vertex ``v`` arrives, the stream reveals every edge between
``v`` and the already-arrived vertices.  Each edge therefore appears
exactly once (at its later endpoint), so a vertex-arrival stream *is* an
edge stream with extra structure - :class:`VertexArrivalStream` implements
the :class:`~repro.streams.base.EdgeStream` protocol and additionally
exposes :meth:`batches` for algorithms that exploit the grouping (the
McGregor-Vorotnikova-Vu adjacency-list estimator in
:mod:`repro.baselines.adjlist_mvv`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import StreamError
from ..graph.adjacency import Graph
from ..types import Edge, Vertex
from .base import EdgeStream


class VertexArrivalStream(EdgeStream):
    """An adjacency-list-order edge stream over a fixed graph.

    Parameters
    ----------
    graph:
        The underlying graph.
    arrival_order:
        Permutation of the graph's vertices fixing the arrival order.
        Isolated vertices may be included (they contribute empty batches).
    """

    def __init__(self, graph: Graph, arrival_order: Sequence[Vertex]) -> None:
        vertices = sorted(graph.vertices())
        if sorted(arrival_order) != vertices:
            raise StreamError("arrival_order is not a permutation of the graph's vertices")
        self._order: List[Vertex] = list(arrival_order)
        position: Dict[Vertex, int] = {v: i for i, v in enumerate(self._order)}
        # Precompute each vertex's batch: edges to earlier-arrived neighbors,
        # in deterministic (earlier-position) order.
        self._batches: List[Tuple[Vertex, List[Vertex]]] = []
        m = 0
        for v in self._order:
            earlier = sorted(
                (u for u in graph.neighbors(v) if position[u] < position[v]),
                key=position.__getitem__,
            )
            self._batches.append((v, earlier))
            m += len(earlier)
        self._m = m

    def __iter__(self) -> Iterator[Edge]:
        for v, earlier in self._batches:
            for u in earlier:
                yield (u, v) if u < v else (v, u)

    def __len__(self) -> int:
        return self._m

    @property
    def arrival_order(self) -> List[Vertex]:
        """The vertex arrival order (copy)."""
        return list(self._order)

    def batches(self) -> Iterator[Tuple[Vertex, List[Vertex]]]:
        """Yield ``(vertex, earlier neighbors)`` pairs in arrival order.

        This is the adjacency-list view: the ``v``-th batch is exactly the
        set of edges revealed when ``v`` arrives.  Like :meth:`__iter__`,
        every call replays the identical sequence.
        """
        for v, earlier in self._batches:
            yield v, list(earlier)

    @classmethod
    def from_graph(cls, graph: Graph, rng=None) -> "VertexArrivalStream":
        """Build a stream with sorted or (given ``rng``) shuffled arrivals."""
        order = sorted(graph.vertices())
        if rng is not None:
            rng.shuffle(order)
        return cls(graph, order)
