"""Streaming substrate: edge streams, multi-pass scheduling, space metering.

The paper's model is an *arbitrary-order, constant-pass* edge stream.  This
package makes that model executable and auditable:

* :class:`~repro.streams.base.EdgeStream` is the read-only protocol every
  algorithm consumes;
* :class:`~repro.streams.multipass.PassScheduler` hands out one sequential
  pass at a time and counts them, so an algorithm cannot silently exceed the
  constant-pass budget;
* :class:`~repro.streams.space.SpaceMeter` charges word-level storage, so an
  algorithm cannot silently exceed its space bound either.
"""

from .base import DEFAULT_CHUNK_EDGES, EdgeStream, StreamStats
from .memory import InMemoryEdgeStream
from .file import FileEdgeStream
from .tape import MmapEdgeStream, is_tape, open_edge_stream, tape_fingerprint, write_tape
from .multipass import PassScheduler
from .space import SpaceMeter
from .transforms import (
    adversarial_heavy_edge_last_order,
    shuffled,
    sorted_order,
)
from .vertex_arrival import VertexArrivalStream
from .dynamic import DynamicEdgeStream, churn_stream

__all__ = [
    "DEFAULT_CHUNK_EDGES",
    "EdgeStream",
    "StreamStats",
    "InMemoryEdgeStream",
    "FileEdgeStream",
    "MmapEdgeStream",
    "open_edge_stream",
    "write_tape",
    "is_tape",
    "tape_fingerprint",
    "VertexArrivalStream",
    "DynamicEdgeStream",
    "churn_stream",
    "PassScheduler",
    "SpaceMeter",
    "shuffled",
    "sorted_order",
    "adversarial_heavy_edge_last_order",
]
