"""Word-level space accounting.

Every streaming algorithm in the library charges its storage to a
:class:`SpaceMeter`.  The meter tracks *current* and *peak* usage in words
(one word = one stored vertex id, edge slot, counter, or float), which is the
granularity at which the paper's bounds are stated (the ``O~`` hides the
``log n`` bits-per-word factor).

The meter supports named categories so benchmark reports can break peak
usage down (e.g. ``reservoir``, ``degrees``, ``assignment-table``), and an
optional hard budget that converts expected-space guarantees into worst-case
behaviour exactly as Section 3 of the paper prescribes: "simply abort if the
space usage runs beyond c times the expected space usage".
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import SpaceBudgetExceeded


class SpaceMeter:
    """Tracks current and peak word-level storage of one algorithm run.

    Parameters
    ----------
    budget_words:
        Optional hard cap.  Any :meth:`allocate` pushing current usage above
        the cap raises :class:`~repro.errors.SpaceBudgetExceeded`.
    """

    def __init__(self, budget_words: Optional[int] = None) -> None:
        if budget_words is not None and budget_words < 0:
            raise ValueError(f"budget_words must be non-negative, got {budget_words}")
        self._budget = budget_words
        self._current = 0
        self._peak = 0
        self._by_category: Dict[str, int] = {}
        self._peak_by_category: Dict[str, int] = {}

    # -- charging ----------------------------------------------------------

    def allocate(self, words: int, category: str = "general") -> None:
        """Charge ``words`` words of storage to ``category``."""
        if words < 0:
            raise ValueError(f"cannot allocate a negative amount ({words})")
        self._current += words
        used = self._by_category.get(category, 0) + words
        self._by_category[category] = used
        if used > self._peak_by_category.get(category, 0):
            self._peak_by_category[category] = used
        if self._current > self._peak:
            self._peak = self._current
        if self._budget is not None and self._current > self._budget:
            raise SpaceBudgetExceeded(
                f"space budget exceeded: {self._current} > {self._budget} words "
                f"(category {category!r})"
            )

    def release(self, words: int, category: str = "general") -> None:
        """Release ``words`` words previously charged to ``category``."""
        if words < 0:
            raise ValueError(f"cannot release a negative amount ({words})")
        held = self._by_category.get(category, 0)
        if words > held:
            raise ValueError(f"releasing {words} words from category {category!r} holding {held}")
        self._by_category[category] = held - words
        self._current -= words

    def set_category(self, words: int, category: str) -> None:
        """Set a category's current usage to ``words`` (charge or release the delta).

        Convenient for data structures whose size is easier to restate than
        to delta (e.g. a memo table after each insertion batch).
        """
        held = self._by_category.get(category, 0)
        if words >= held:
            self.allocate(words - held, category)
        else:
            self.release(held - words, category)

    # -- reporting ---------------------------------------------------------

    @property
    def current_words(self) -> int:
        """Words currently held."""
        return self._current

    @property
    def peak_words(self) -> int:
        """Largest number of words ever held simultaneously."""
        return self._peak

    @property
    def budget_words(self) -> Optional[int]:
        """The configured hard budget, or ``None``."""
        return self._budget

    def peak_breakdown(self) -> Dict[str, int]:
        """Return per-category peaks (each category's own high-water mark).

        Note the per-category peaks need not sum to :attr:`peak_words`, since
        categories may peak at different times.
        """
        return dict(self._peak_by_category)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpaceMeter(current={self._current}, peak={self._peak}, budget={self._budget})"
