"""Random graph families: Erdos-Renyi and Chung-Lu power law.

The Chung-Lu model is the library's stand-in for real-world social graphs
(see DESIGN.md "Substitutions"): with a power-law weight sequence it
reproduces the two properties the paper's practical argument relies on -
low degeneracy and non-trivial triangle density - without needing external
datasets.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import GraphError
from ..graph.adjacency import Graph


def erdos_renyi_gnp(n: int, p: float, rng: random.Random) -> Graph:
    """``G(n, p)``: each of the ``C(n, 2)`` edges present independently w.p. ``p``.

    Uses the skip-sampling (geometric jump) technique so the running time is
    ``O(n + m)`` rather than ``O(n^2)`` for sparse ``p``.
    """
    if n < 1:
        raise GraphError(f"G(n,p) needs n >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise GraphError(f"p must be in [0, 1], got {p}")
    graph = Graph(vertices=range(n))
    if p == 0.0 or n < 2:
        return graph
    if p == 1.0:
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_edge_unchecked(i, j)
        return graph
    # Enumerate candidate pairs in row-major order, jumping geometrically.
    import math

    log_q = math.log(1.0 - p)
    v, w = 1, -1
    while v < n:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            graph.add_edge_unchecked(v, w)
    return graph


def erdos_renyi_gnm(n: int, m: int, rng: random.Random) -> Graph:
    """``G(n, m)``: a uniform simple graph with exactly ``m`` edges."""
    if n < 1:
        raise GraphError(f"G(n,m) needs n >= 1, got {n}")
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise GraphError(f"m must be in [0, {max_edges}] for n={n}, got {m}")
    graph = Graph(vertices=range(n))
    chosen: set[tuple[int, int]] = set()
    # Rejection sampling is fine until m approaches max_edges; switch to
    # explicit enumeration for dense requests.
    if m > max_edges // 2:
        all_pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for u, v in rng.sample(all_pairs, m):
            graph.add_edge_unchecked(u, v)
        return graph
    while len(chosen) < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        e = (u, v) if u < v else (v, u)
        if e in chosen:
            continue
        chosen.add(e)
        graph.add_edge_unchecked(*e)
    return graph


def power_law_weights(n: int, exponent: float, max_weight: float) -> List[float]:
    """Expected-degree sequence ``w_i ~ i^{-1/(exponent-1)}`` capped at ``max_weight``.

    The classic Chung-Lu recipe for a power law with the given ``exponent``
    (> 2 for finite mean).
    """
    if n < 1:
        raise GraphError(f"need n >= 1, got {n}")
    if exponent <= 2.0:
        raise GraphError(f"power-law exponent must exceed 2, got {exponent}")
    gamma = 1.0 / (exponent - 1.0)
    return [min(max_weight, (n / (i + 1)) ** gamma) for i in range(n)]


def chung_lu_graph(weights: List[float], rng: random.Random) -> Graph:
    """Chung-Lu random graph: edge ``(i, j)`` present w.p. ``min(1, w_i w_j / W)``.

    Implemented with the Miller-Hagberg efficient procedure: vertices sorted
    by weight descending, each row sampled with geometric skips against the
    row's maximum probability and accepted proportionally, giving expected
    ``O(n + m)`` time.
    """
    import math

    n = len(weights)
    if n < 1:
        raise GraphError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise GraphError("weights must be non-negative")
    total = sum(weights)
    graph = Graph(vertices=range(n))
    if total <= 0:
        return graph
    order = sorted(range(n), key=lambda i: -weights[i])
    sorted_w = [weights[i] for i in order]
    for i in range(n - 1):
        wi = sorted_w[i]
        if wi <= 0:
            break
        # Upper-bound probability for this row: the next-largest weight.
        p_row = min(1.0, wi * sorted_w[i + 1] / total)
        if p_row <= 0:
            continue
        j = i + 1
        while j < n:
            if p_row < 1.0:
                r = rng.random()
                j += int(math.log(1.0 - r) / math.log(1.0 - p_row))
            if j >= n:
                break
            p_actual = min(1.0, wi * sorted_w[j] / total)
            if rng.random() < p_actual / p_row:
                graph.add_edge_unchecked(order[i], order[j])
            j += 1
    return graph
