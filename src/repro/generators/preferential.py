"""Barabasi-Albert preferential attachment.

The paper names preferential-attachment graphs as a canonical constant-
degeneracy family (Section 1): a BA graph grown by attaching each new vertex
to ``k`` existing vertices is ``k``-degenerate *by construction* - peeling
vertices in reverse arrival order never sees residual degree above ``k``.
Benchmarks exploit this: ``kappa <= k`` is a certified promise, no
degeneracy computation needed on the stream side.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import GraphError
from ..graph.adjacency import Graph


def barabasi_albert_graph(n: int, k: int, rng: random.Random) -> Graph:
    """Grow a BA graph on ``n`` vertices, ``k`` attachments per new vertex.

    Starts from a ``(k + 1)``-clique (which guarantees triangles exist from
    the outset and keeps the graph connected), then each vertex
    ``k+1 .. n-1`` attaches to ``k`` *distinct* existing vertices chosen
    proportionally to their current degree (the standard repeated-endpoint
    urn, resampled on duplicates).

    Guarantees ``kappa <= k`` (reverse arrival order is a ``k``-degenerate
    peeling).  ``m = C(k+1, 2) + k * (n - k - 1)``.
    """
    if k < 1:
        raise GraphError(f"attachment count k must be >= 1, got {k}")
    if n < k + 1:
        raise GraphError(f"need n >= k + 1 = {k + 1}, got {n}")
    graph = Graph(vertices=range(n))
    # Urn of endpoints: each edge contributes both endpoints, so a vertex
    # appears with multiplicity equal to its degree.
    urn: List[int] = []
    for i in range(k + 1):
        for j in range(i + 1, k + 1):
            graph.add_edge_unchecked(i, j)
            urn.append(i)
            urn.append(j)
    for v in range(k + 1, n):
        targets: set[int] = set()
        while len(targets) < k:
            targets.add(urn[rng.randrange(len(urn))])
        for t in targets:
            graph.add_edge_unchecked(v, t)
            urn.append(v)
            urn.append(t)
    return graph
