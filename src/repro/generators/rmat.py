"""R-MAT (recursive matrix / stochastic Kronecker) graphs.

The paper's practical argument targets "massive real-world graphs" - web
crawls and social networks.  R-MAT (Chakrabarti-Zhan-Faloutsos) is the
standard synthetic stand-in for those: recursive quadrant sampling with
probabilities ``(a, b, c, d)`` produces the skewed degree distributions
and community-like structure of web graphs, and with the canonical
parameters its degeneracy stays far below the maximum degree - the
separation the paper's bound exploits.  Listed as a substitution in
DESIGN.md alongside Chung-Lu and Barabasi-Albert.
"""

from __future__ import annotations

import random
from typing import Tuple

from ..errors import GraphError
from ..graph.adjacency import Graph
from ..types import canonical_edge


def rmat_graph(
    scale: int,
    edge_factor: int,
    rng: random.Random,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    max_attempts_factor: int = 64,
) -> Graph:
    """Sample an R-MAT graph with ``2^scale`` vertices.

    Parameters
    ----------
    scale:
        ``log2`` of the vertex count (``1 <= scale <= 24`` supported here).
    edge_factor:
        Target edges per vertex; the generator draws distinct undirected
        non-loop edges until it has ``edge_factor * 2^scale`` of them (or
        exhausts ``max_attempts_factor`` times that many draws - dense or
        tiny configurations may saturate earlier, which is reported by the
        resulting edge count, never silently padded).
    rng:
        Source of randomness.
    probabilities:
        The quadrant probabilities ``(a, b, c, d)``; must be non-negative
        and sum to 1 (small float slack tolerated and renormalized).  The
        default is the Graph500 parameterization.
    """
    if not 1 <= scale <= 24:
        raise GraphError(f"scale must be in [1, 24], got {scale}")
    if edge_factor < 1:
        raise GraphError(f"edge_factor must be >= 1, got {edge_factor}")
    a, b, c, d = probabilities
    if min(a, b, c, d) < 0:
        raise GraphError(f"quadrant probabilities must be non-negative, got {probabilities}")
    total = a + b + c + d
    if not 0.99 <= total <= 1.01:
        raise GraphError(f"quadrant probabilities must sum to ~1, got {total}")
    a, b, c, d = a / total, b / total, c / total, d / total

    n = 1 << scale
    target = edge_factor * n
    max_pairs = n * (n - 1) // 2
    target = min(target, max_pairs)
    edges: set = set()
    attempts = 0
    attempt_budget = max_attempts_factor * target
    while len(edges) < target and attempts < attempt_budget:
        attempts += 1
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            if r < a:
                quadrant = (0, 0)
            elif r < a + b:
                quadrant = (0, 1)
            elif r < a + b + c:
                quadrant = (1, 0)
            else:
                quadrant = (1, 1)
            u = (u << 1) | quadrant[0]
            v = (v << 1) | quadrant[1]
        if u == v:
            continue
        edges.add(canonical_edge(u, v))
    return Graph(edges=sorted(edges), vertices=range(n))
