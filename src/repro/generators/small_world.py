"""Watts-Strogatz small-world graphs.

Cited by the paper (via [61]) as the archetype of "high triangle density at
low sparsity": a ring lattice is triangle-rich and ``k``-degenerate; light
rewiring keeps both properties while randomizing structure.  Used in the
workload suite as the high-clustering family.
"""

from __future__ import annotations

import random

from ..errors import GraphError
from ..graph.adjacency import Graph


def watts_strogatz_graph(n: int, k: int, beta: float, rng: random.Random) -> Graph:
    """Watts-Strogatz ring: each vertex wired to ``k`` nearest neighbors per
    side, each edge rewired with probability ``beta``.

    ``k`` is the *per-side* count, so degrees start at ``2k``; requires
    ``n > 2 * k`` and ``0 <= beta <= 1``.  Rewiring retargets the far
    endpoint to a uniform non-adjacent vertex (self-loops and duplicate
    edges resampled), so ``m = n * k`` for ``beta = 0`` and very close to it
    otherwise (a lattice edge already created by an earlier rewiring is
    skipped rather than duplicated).
    """
    if k < 1:
        raise GraphError(f"k must be >= 1, got {k}")
    if n <= 2 * k:
        raise GraphError(f"need n > 2k = {2 * k}, got {n}")
    if not 0.0 <= beta <= 1.0:
        raise GraphError(f"beta must be in [0, 1], got {beta}")
    graph = Graph(vertices=range(n))
    for u in range(n):
        for offset in range(1, k + 1):
            v = (u + offset) % n
            if beta > 0.0 and rng.random() < beta:
                # Rewire (u, v) -> (u, w) for a fresh admissible w.
                attempts = 0
                while True:
                    w = rng.randrange(n)
                    if w != u and not graph.has_edge(u, w):
                        graph.add_edge_unchecked(u, w)
                        break
                    attempts += 1
                    if attempts > 32 * n:  # pragma: no cover - saturation guard
                        if not graph.has_edge(u, v):
                            graph.add_edge_unchecked(u, v)
                        break
            else:
                if not graph.has_edge(u, v):
                    graph.add_edge_unchecked(u, v)
    return graph
