"""Planted-triangle families with independently tunable ``T`` and ``kappa``.

Experiment E4 (the ``T = kappa^2`` crossover between ``m*kappa/T`` and
``m/sqrt(T)``) needs workloads where the triangle count sweeps over orders
of magnitude while ``m`` and ``kappa`` stay (nearly) fixed.  The
construction: start from a triangle-free base (a large even cycle), then
plant ``T`` disjoint "page" triangles onto dedicated spine edges plus a
controllable clique to raise ``kappa`` when asked.
"""

from __future__ import annotations

import random

from ..errors import GraphError
from ..graph.adjacency import Graph


def planted_triangles_graph(
    base_edges: int,
    triangles: int,
    kappa_clique: int = 0,
    kappa_bipartite: int = 0,
    rng: random.Random | None = None,
) -> Graph:
    """Build a graph with exactly ``triangles`` triangles (plus clique ones).

    Parameters
    ----------
    base_edges:
        Size of the triangle-free cycle backbone (must be >= 4 and even to
        stay triangle-free; odd values are rounded up).  Contributes
        ``base_edges`` edges and 0 triangles.
    triangles:
        Number of disjoint planted triangles: each uses a fresh apex vertex
        attached to a distinct backbone edge, adding 2 edges and exactly 1
        triangle (apexes are distinct, and distinct backbone host edges keep
        the planted triangles edge-disjoint except for their hosts).
        Requires ``triangles <= base_edges`` so each host edge is used once.
    kappa_clique:
        If > 0, appends a disjoint clique on ``kappa_clique + 1`` fresh
        vertices, forcing degeneracy ``max(kappa_clique, 2 or 3)`` and
        adding ``C(kappa_clique + 1, 3)`` extra triangles (callers that want
        ``T`` exact should account for them via
        :func:`planted_clique_triangles`).
    kappa_bipartite:
        If > 0, appends a disjoint complete bipartite ``K_{b,b}`` with
        ``b = kappa_bipartite`` on fresh vertices: forces degeneracy
        ``>= b`` while adding *zero* triangles - the knob experiment E4
        uses to push ``kappa^2`` above ``T``.
    rng:
        Optional; when provided, backbone host edges are chosen at random
        instead of consecutively (shape is identical, placement differs).
    """
    if base_edges < 4:
        raise GraphError(f"base_edges must be >= 4, got {base_edges}")
    if triangles < 0:
        raise GraphError(f"triangles must be >= 0, got {triangles}")
    n_cycle = base_edges + (base_edges % 2)  # even cycle is triangle-free
    if triangles > n_cycle:
        raise GraphError(
            f"cannot plant {triangles} triangles on a cycle of {n_cycle} edges"
        )
    graph = Graph(edges=((i, (i + 1) % n_cycle) for i in range(n_cycle)))

    hosts = list(range(n_cycle))
    if rng is not None:
        rng.shuffle(hosts)
    next_vertex = n_cycle
    for t in range(triangles):
        i = hosts[t]
        u, v = i, (i + 1) % n_cycle
        apex = next_vertex
        next_vertex += 1
        graph.add_edge_unchecked(u, apex)
        graph.add_edge_unchecked(v, apex)

    if kappa_clique > 0:
        clique = range(next_vertex, next_vertex + kappa_clique + 1)
        for a in clique:
            for b in clique:
                if a < b:
                    graph.add_edge_unchecked(a, b)
        next_vertex += kappa_clique + 1

    if kappa_bipartite > 0:
        left = range(next_vertex, next_vertex + kappa_bipartite)
        right = range(next_vertex + kappa_bipartite, next_vertex + 2 * kappa_bipartite)
        for a in left:
            for b in right:
                graph.add_edge_unchecked(a, b)
    return graph


def planted_clique_triangles(kappa_clique: int) -> int:
    """Triangles contributed by the optional clique: ``C(kappa_clique+1, 3)``."""
    if kappa_clique <= 0:
        return 0
    c = kappa_clique + 1
    return c * (c - 1) * (c - 2) // 6
