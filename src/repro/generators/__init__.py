"""Workload generators.

Every generator returns a :class:`~repro.graph.adjacency.Graph` and is fully
deterministic given its RNG.  The families mirror the graph classes the
paper uses to motivate and stress its result:

* :mod:`~repro.generators.basic` - wheel (the paper's polylog-space
  showcase), book/friendship (the paper's variance worst case: ``n - 2``
  triangles sharing one edge), cycles, cliques, bipartite cliques;
* :mod:`~repro.generators.planar` - grid triangulations (planar, hence
  constant degeneracy);
* :mod:`~repro.generators.preferential` - Barabasi-Albert preferential
  attachment (the paper's named constant-degeneracy random family);
* :mod:`~repro.generators.random_graphs` - Erdos-Renyi and Chung-Lu
  power-law (stand-ins for real-world social graphs; see DESIGN.md
  substitutions);
* :mod:`~repro.generators.small_world` - Watts-Strogatz (high clustering at
  low degeneracy, cited in the paper's "high triangle density" discussion);
* :mod:`~repro.generators.planted` - planted-triangle families with
  independently tunable ``T`` and ``kappa`` (used by the crossover
  experiment E4);
* :mod:`~repro.generators.workloads` - the named suite benchmarks iterate.
"""

from .basic import (
    book_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    friendship_graph,
    path_graph,
    star_graph,
    wheel_graph,
)
from .planar import grid_graph, triangulated_grid_graph
from .preferential import barabasi_albert_graph
from .random_graphs import chung_lu_graph, erdos_renyi_gnm, erdos_renyi_gnp
from .rmat import rmat_graph
from .small_world import watts_strogatz_graph
from .planted import planted_triangles_graph
from .workloads import Workload, standard_suite, workload_by_name

__all__ = [
    "wheel_graph",
    "book_graph",
    "friendship_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "complete_graph",
    "complete_bipartite_graph",
    "grid_graph",
    "triangulated_grid_graph",
    "barabasi_albert_graph",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "chung_lu_graph",
    "rmat_graph",
    "watts_strogatz_graph",
    "planted_triangles_graph",
    "Workload",
    "standard_suite",
    "workload_by_name",
]
