"""The named workload suite iterated by benchmarks and integration tests.

A :class:`Workload` bundles a generator invocation with the promise the
estimator needs (a degeneracy upper bound) and human-readable provenance.
``standard_suite`` is the fixed roster used by experiments E1/E2/E5; every
entry is fully deterministic given the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ParameterError
from ..graph.adjacency import Graph
from .basic import book_graph, friendship_graph, wheel_graph
from .planar import triangulated_grid_graph
from .planted import planted_triangles_graph
from .preferential import barabasi_albert_graph
from .random_graphs import chung_lu_graph, erdos_renyi_gnm, power_law_weights
from .rmat import rmat_graph
from .small_world import watts_strogatz_graph


@dataclass(frozen=True)
class Workload:
    """A named, reproducible graph instance for experiments.

    ``kappa_bound`` is the degeneracy promise handed to the estimator (an
    upper bound certified by the construction, not a measured value - the
    streaming model receives the promise, it cannot compute it).
    ``description`` says why the family is in the suite.
    """

    name: str
    build: Callable[[random.Random], Graph]
    kappa_bound: int
    description: str

    def instantiate(self, seed: int = 0) -> Graph:
        """Materialize the graph deterministically from ``seed``."""
        return self.build(random.Random(seed))


def standard_suite(scale: str = "small") -> List[Workload]:
    """Return the benchmark roster at ``scale`` in {"tiny", "small", "medium"}.

    Sizes are chosen so the full suite runs in seconds ("tiny", for tests),
    tens of seconds ("small", default for benchmarks), or a few minutes
    ("medium", for the headline tables in EXPERIMENTS.md).
    """
    sizes = {"tiny": 1, "small": 4, "medium": 10}
    if scale not in sizes:
        raise ParameterError(f"scale must be one of {sorted(sizes)}, got {scale!r}")
    z = sizes[scale]
    base = 250 * z

    return [
        Workload(
            name="wheel",
            build=lambda rng, n=4 * base: wheel_graph(n),
            kappa_bound=3,
            description="paper Section 1.1 showcase: T=Theta(m), kappa=3, planar",
        ),
        Workload(
            name="book",
            build=lambda rng, pages=2 * base: book_graph(pages),
            kappa_bound=2,
            description="paper Section 1.2 variance worst case: all T on one edge",
        ),
        Workload(
            name="friendship",
            build=lambda rng, blades=2 * base: friendship_graph(blades),
            kappa_bound=2,
            description="vertex-skew control for the book graph",
        ),
        Workload(
            name="triangulated-grid",
            build=lambda rng, side=int((2 * base) ** 0.5) + 2: triangulated_grid_graph(side, side),
            kappa_bound=3,
            description="planar with T=Theta(m): the constant-kappa sweet spot",
        ),
        Workload(
            name="ba",
            build=lambda rng, n=2 * base: barabasi_albert_graph(n, 5, rng),
            kappa_bound=5,
            description="preferential attachment: paper's constant-kappa random family",
        ),
        Workload(
            name="chung-lu",
            build=lambda rng, n=2 * base: chung_lu_graph(
                power_law_weights(n, exponent=2.5, max_weight=n ** 0.5), rng
            ),
            kappa_bound=_chung_lu_kappa_bound(2 * base),
            description="power-law stand-in for social graphs (DESIGN.md substitution)",
        ),
        Workload(
            name="watts-strogatz",
            build=lambda rng, n=2 * base: watts_strogatz_graph(n, 5, 0.1, rng),
            kappa_bound=10,
            description="small world: high clustering at low degeneracy",
        ),
        Workload(
            name="er-sparse",
            build=lambda rng, n=2 * base: erdos_renyi_gnm(n, 6 * n, rng),
            kappa_bound=12,
            description="sparse uniform control (few triangles, low skew)",
        ),
        Workload(
            name="planted",
            build=lambda rng, b=2 * base: planted_triangles_graph(b, b // 2, rng=rng),
            kappa_bound=3,
            description="exactly known T with tunable density (E4 family)",
        ),
        Workload(
            name="rmat",
            build=lambda rng, s={1: 8, 4: 10, 10: 12}[z]: rmat_graph(s, 8, rng),
            kappa_bound={1: 28, 4: 42, 10: 64}[z],
            description="R-MAT/Kronecker web-graph stand-in (Graph500 parameters)",
        ),
    ]


def _chung_lu_kappa_bound(n: int) -> int:
    """A generous certified degeneracy bound for the suite's Chung-Lu entry.

    Chung-Lu graphs with exponent-2.5 weights have expected degeneracy
    ``O(sqrt(max_weight))``; the constant here was validated offline against
    exact degeneracy over many seeds (tests re-validate per seed).
    """
    return max(8, int(2 * (n ** 0.25)))


def workload_by_name(name: str, scale: str = "small") -> Workload:
    """Look up one suite entry by name; raises with the roster on a miss."""
    suite: Dict[str, Workload] = {w.name: w for w in standard_suite(scale)}
    if name not in suite:
        raise ParameterError(f"unknown workload {name!r}; available: {sorted(suite)}")
    return suite[name]
