"""Deterministic structured graphs.

These small closed-form families have exactly known ``(n, m, T, kappa)``,
which makes them the backbone of the unit tests and of two experiments:

* :func:`wheel_graph` - the paper's Section 1.1 showcase: ``m = Theta(n)``,
  ``T = Theta(n)``, ``kappa = 3``, so the paper's bound is polylogarithmic
  while every prior bound is ``Omega(sqrt(n))`` (experiment E3);
* :func:`book_graph` - the paper's Section 1.2 variance worst case:
  ``n - 2`` triangles all sharing one spine edge, planar, ``t_e`` maximally
  skewed (experiment E6 exercises the assignment rule here).
"""

from __future__ import annotations

from ..errors import GraphError
from ..graph.adjacency import Graph


def path_graph(n: int) -> Graph:
    """Path on ``n >= 1`` vertices ``0 - 1 - ... - (n-1)``; no triangles."""
    if n < 1:
        raise GraphError(f"path needs n >= 1, got {n}")
    return Graph(edges=((i, i + 1) for i in range(n - 1)), vertices=range(n))


def cycle_graph(n: int) -> Graph:
    """Cycle on ``n >= 3`` vertices; triangle-free for ``n > 3``."""
    if n < 3:
        raise GraphError(f"cycle needs n >= 3, got {n}")
    return Graph(edges=((i, (i + 1) % n) for i in range(n)))


def star_graph(n: int) -> Graph:
    """Star: center ``0`` joined to leaves ``1..n-1``; ``n >= 2``, no triangles."""
    if n < 2:
        raise GraphError(f"star needs n >= 2, got {n}")
    return Graph(edges=((0, i) for i in range(1, n)))


def wheel_graph(n: int) -> Graph:
    """Wheel: an ``(n-1)``-cycle plus a hub (vertex ``0``) joined to all.

    Requires ``n >= 4``.  Facts used by experiment E3: ``m = 2(n-1)``,
    ``T = n - 1`` (each rim edge forms one triangle with the hub; for
    ``n = 4`` the wheel is ``K_4`` with ``T = 4``), ``kappa = 3`` (planar
    and 3-degenerate).
    """
    if n < 4:
        raise GraphError(f"wheel needs n >= 4, got {n}")
    rim = n - 1
    edges = [(0, i) for i in range(1, n)]
    edges += [(i, i % rim + 1) for i in range(1, n)]
    return Graph(edges=edges)


def book_graph(pages: int) -> Graph:
    """Triangle book: ``pages`` triangles sharing the spine edge ``(0, 1)``.

    Requires ``pages >= 1``.  The spine edge has ``t_e = pages`` while every
    page edge has ``t_e = 1`` - the paper's example of maximal ``t_e``
    variance at constant degeneracy (``kappa = 2``, planar).
    ``n = pages + 2``, ``m = 2 * pages + 1``, ``T = pages``.
    """
    if pages < 1:
        raise GraphError(f"book needs pages >= 1, got {pages}")
    edges = [(0, 1)]
    for p in range(pages):
        apex = 2 + p
        edges.append((0, apex))
        edges.append((1, apex))
    return Graph(edges=edges)


def friendship_graph(blades: int) -> Graph:
    """Friendship (windmill): ``blades`` triangles sharing one vertex.

    Requires ``blades >= 1``.  ``n = 2 * blades + 1``, ``m = 3 * blades``,
    ``T = blades``, ``kappa = 2``.  Unlike the book graph, the skew here is
    on a *vertex*, not an edge - every edge has ``t_e = 1`` - so it is the
    control case showing the assignment rule is only stressed by edge skew.
    """
    if blades < 1:
        raise GraphError(f"friendship needs blades >= 1, got {blades}")
    edges = []
    for b in range(blades):
        u, v = 1 + 2 * b, 2 + 2 * b
        edges += [(0, u), (0, v), (u, v)]
    return Graph(edges=edges)


def complete_graph(n: int) -> Graph:
    """Clique ``K_n`` (``n >= 1``): ``T = C(n, 3)``, ``kappa = n - 1``."""
    if n < 1:
        raise GraphError(f"complete graph needs n >= 1, got {n}")
    return Graph(
        edges=((i, j) for i in range(n) for j in range(i + 1, n)), vertices=range(n)
    )


def complete_bipartite_graph(p: int, q: int) -> Graph:
    """``K_{p,q}`` with parts ``0..p-1`` and ``p..p+q-1``; triangle-free.

    This is the fixed part ``G_fixed`` of the Theorem 6.3 lower-bound
    construction (with ``p = q``), where its triangle-freeness and
    degeneracy ``min(p, q)`` are what the reduction leans on.
    """
    if p < 1 or q < 1:
        raise GraphError(f"complete bipartite needs p, q >= 1, got ({p}, {q})")
    return Graph(edges=((i, p + j) for i in range(p) for j in range(q)))
