"""Planar workloads: grids and triangulated grids.

Planar graphs are the paper's first example of a constant-degeneracy class
(every planar graph is 5-degenerate).  The triangulated grid adds one
diagonal per grid cell, producing ``2 * (rows-1) * (cols-1)`` triangles
while staying planar - a large-``T``, tiny-``kappa`` family where the
paper's bound shines.
"""

from __future__ import annotations

from ..errors import GraphError
from ..graph.adjacency import Graph


def _cell(rows: int, cols: int, r: int, c: int) -> int:
    return r * cols + c


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` lattice; triangle-free, ``kappa = 2`` (for 2x2+)."""
    if rows < 1 or cols < 1:
        raise GraphError(f"grid needs positive dimensions, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = _cell(rows, cols, r, c)
            if c + 1 < cols:
                edges.append((v, _cell(rows, cols, r, c + 1)))
            if r + 1 < rows:
                edges.append((v, _cell(rows, cols, r + 1, c)))
    return Graph(edges=edges, vertices=range(rows * cols))


def triangulated_grid_graph(rows: int, cols: int) -> Graph:
    """The grid plus one down-right diagonal per cell.

    Planar, ``kappa = 3``; ``T = 2 * (rows - 1) * (cols - 1)`` exactly (each
    cell's diagonal creates two triangles and no others arise).  The family
    keeps ``T = Theta(m)`` at constant degeneracy - the regime where the
    paper's space bound is polylogarithmic.
    """
    if rows < 2 or cols < 2:
        raise GraphError(f"triangulated grid needs >= 2x2, got {rows}x{cols}")
    graph = grid_graph(rows, cols)
    for r in range(rows - 1):
        for c in range(cols - 1):
            graph.add_edge_unchecked(_cell(rows, cols, r, c), _cell(rows, cols, r + 1, c + 1))
    return graph
