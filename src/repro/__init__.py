"""repro: degeneracy-aware streaming triangle counting.

A from-scratch reproduction of *"How the Degeneracy Helps for Triangle
Counting in Graph Streams"* (Bera & Seshadhri, PODS 2020): the six-pass
``O~(m * kappa / T)``-space ``(1 +- eps)`` triangle estimator, the Section 4
degree-oracle warm-up, every implementable baseline from the paper's
Table 1, the Theorem 6.3 lower-bound instance family, and the experiment
harness that regenerates each of the paper's quantitative claims.

Quickstart
----------
>>> from repro import TriangleCountEstimator, EstimatorConfig
>>> from repro.generators import wheel_graph
>>> from repro.streams import InMemoryEdgeStream
>>> graph = wheel_graph(500)
>>> stream = InMemoryEdgeStream.from_graph(graph)
>>> result = TriangleCountEstimator(EstimatorConfig(seed=1)).estimate(stream, kappa=3)
>>> result.estimate > 0
True

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

from .core.driver import (
    EstimateResult,
    EstimatorConfig,
    TriangleCountEstimator,
    resume_from,
)
from .core.exact_reference import ExactStreamingCounter
from .core.oracle_model import DegreeOracle, IdealEstimator
from .core.params import ParameterPlan, PlanConstants
from .errors import (
    EstimationError,
    GraphError,
    ParameterError,
    PassBudgetExceeded,
    ReproError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotMismatchError,
    SpaceBudgetExceeded,
    StreamError,
)
from .graph import Graph, core_decomposition, count_triangles, degeneracy
from .streams import (
    EdgeStream,
    FileEdgeStream,
    InMemoryEdgeStream,
    MmapEdgeStream,
    PassScheduler,
    SpaceMeter,
    open_edge_stream,
    write_tape,
)

__version__ = "1.0.0"

__all__ = [
    "TriangleCountEstimator",
    "EstimatorConfig",
    "EstimateResult",
    "ParameterPlan",
    "PlanConstants",
    "IdealEstimator",
    "DegreeOracle",
    "ExactStreamingCounter",
    "Graph",
    "degeneracy",
    "core_decomposition",
    "count_triangles",
    "EdgeStream",
    "InMemoryEdgeStream",
    "FileEdgeStream",
    "MmapEdgeStream",
    "open_edge_stream",
    "write_tape",
    "PassScheduler",
    "SpaceMeter",
    "ReproError",
    "GraphError",
    "StreamError",
    "PassBudgetExceeded",
    "SpaceBudgetExceeded",
    "ParameterError",
    "EstimationError",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotMismatchError",
    "resume_from",
    "__version__",
]
