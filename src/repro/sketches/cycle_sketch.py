"""The linear triangle sketch for dynamic streams (Table 1 row [41]).

Give every vertex an (at least 6-wise independent) Rademacher variable
``x(v) in {-1, +1}`` and maintain the single linear counter

    Z = sum over current edges (u, v) of  x(u) * x(v),

which supports insertions (add) and deletions (subtract).  Then

    E[Z^3] = 6 T.

*Derivation.*  ``Z^3`` expands over ordered triples of edges; a triple's
expectation factorizes over distinct vertices (6-wise independence covers
the at most 6 of them).  ``E[x] = E[x^3] = 0`` and ``x^2 = 1`` kill every
triple in which some vertex appears an odd number of times.  A vertex-odd-
free triple of edges is exactly a triangle's three edges (each corner
appearing twice): the degenerate cases die -- a repeated edge leaves the
third edge's endpoints odd (or, for a thrice-repeated edge, leaves both
endpoints cubed), paths/stars leave leaves odd.  Each triangle appears as
``3! = 6`` ordered triples contributing 1.  (With exactly-Rademacher
variables this is an identity, not a bound.)

A single ``Z`` has enormous variance (``E[Z^6]`` carries an ``m^3`` term -
hence the ``O~(m^3/T^2)`` space bound and its matching lower bound [44]);
:class:`TriangleSketchEstimator` runs many independent sketches and
combines them by median-of-means.  Each sketch stores one counter plus six
hash coefficients: O(1) words, fully mergeable, and deletion-proof.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..errors import ParameterError
from ..sampling.combine import median_of_means
from ..streams.dynamic import DynamicEdgeStream
from ..streams.space import SpaceMeter
from .kwise import KWiseHash

_INDEPENDENCE = 6  # E[Z^3] needs 6-wise; see module derivation.


class TriangleSketch:
    """One linear triangle sketch: the counter ``Z`` and its sign hash."""

    __slots__ = ("_hash", "_z")

    def __init__(self, rng: random.Random) -> None:
        self._hash = KWiseHash(_INDEPENDENCE, rng)
        self._z = 0

    def update(self, u: int, v: int, delta: int) -> None:
        """Apply an edge insertion (``delta=+1``) or deletion (``-1``)."""
        self._z += delta * self._hash.sign(u) * self._hash.sign(v)

    @property
    def z(self) -> int:
        """The current counter value."""
        return self._z

    def triangle_moment(self) -> float:
        """The unbiased single-sketch estimate ``Z^3 / 6``."""
        return (self._z ** 3) / 6.0

    def merge(self, other: "TriangleSketch") -> None:
        """Merge a sketch of a *disjoint edge set built with the same hash*.

        Linearity makes sketches mergeable - the property that makes them
        distributable.  The caller is responsible for hash agreement (the
        library only calls this from :meth:`TriangleSketchEstimator.split_
        merge_selftest`, where agreement holds by construction).
        """
        self._z += other._z


@dataclass(frozen=True)
class TriangleSketchResult:
    """Outcome of a dynamic-sketch estimation run."""

    estimate: float
    copies: int
    passes_used: int
    space_words_peak: int


class TriangleSketchEstimator:
    """One-pass dynamic-stream triangle estimator (``copies`` sketches).

    Parameters
    ----------
    copies:
        Number of independent sketches; the analysis wants
        ``O~(m^3 / (eps^2 T^2))`` of them for ``(1 +- eps)`` accuracy.
    median_groups:
        Median-of-means group count (must divide ``copies``).
    rng:
        Randomness for the hash coefficients.
    """

    name = "kmss-dynamic"
    passes_required = 1

    def __init__(self, copies: int, rng: random.Random, median_groups: int = 1) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        if median_groups < 1 or copies % median_groups != 0:
            raise ParameterError("median_groups must divide copies")
        self._copies = copies
        self._groups = median_groups
        self._rng = rng

    def estimate(
        self, stream: DynamicEdgeStream, meter: Optional[SpaceMeter] = None
    ) -> TriangleSketchResult:
        """Consume the dynamic stream once and estimate its net triangle count."""
        meter = meter if meter is not None else SpaceMeter()
        sketches: List[TriangleSketch] = [TriangleSketch(self._rng) for _ in range(self._copies)]
        # One Z counter + 6 hash coefficients per sketch.
        meter.allocate((1 + _INDEPENDENCE) * self._copies, "sketches")
        for (u, v), delta in stream:
            for sketch in sketches:
                sketch.update(u, v, delta)
        moments = [sketch.triangle_moment() for sketch in sketches]
        return TriangleSketchResult(
            estimate=median_of_means(moments, self._groups),
            copies=self._copies,
            passes_used=1,
            space_words_peak=meter.peak_words,
        )
