"""k-wise independent hashing via random polynomials over GF(p).

The classic construction: a uniformly random polynomial of degree ``k - 1``
over a prime field is a ``k``-wise independent function of its evaluation
point.  We use the Mersenne prime ``p = 2^61 - 1`` (big enough for any
realistic vertex universe, and single-word arithmetic in CPython).

Two output modes:

* :meth:`KWiseHash.value` - the raw field element (uniform on ``[0, p)``);
* :meth:`KWiseHash.sign` - a Rademacher ``+-1`` via the top bit of the
  field element.  ``p`` is odd, so the two signs differ in probability by
  ``1/p < 5e-19`` - a bias documented here once and ignored everywhere
  else (it is far below every statistical tolerance in the test suite).
"""

from __future__ import annotations

import random
from typing import List

from ..errors import ParameterError

MERSENNE_P = (1 << 61) - 1


class KWiseHash:
    """A ``k``-wise independent hash ``h : [p] -> [p]``.

    Parameters
    ----------
    k:
        Independence order (polynomial degree ``k - 1``); ``k >= 1``.
    rng:
        Randomness for the coefficients.  The leading coefficient is *not*
        forced non-zero - a zero leading coefficient just yields a random
        lower-degree polynomial, which preserves k-wise independence.
    """

    __slots__ = ("_coefficients",)

    def __init__(self, k: int, rng: random.Random) -> None:
        if k < 1:
            raise ParameterError(f"independence order must be >= 1, got {k}")
        self._coefficients: List[int] = [rng.randrange(MERSENNE_P) for _ in range(k)]

    @property
    def independence(self) -> int:
        """The independence order ``k``."""
        return len(self._coefficients)

    def value(self, x: int) -> int:
        """Evaluate the polynomial at ``x`` (Horner), result in ``[0, p)``."""
        if x < 0:
            raise ParameterError(f"hash input must be non-negative, got {x}")
        acc = 0
        for c in self._coefficients:
            acc = (acc * x + c) % MERSENNE_P
        return acc

    def sign(self, x: int) -> int:
        """A Rademacher ``+-1`` variable, k-wise independent across inputs."""
        return 1 if self.value(x) < MERSENNE_P // 2 else -1

    def unit_interval(self, x: int) -> float:
        """The hash value scaled to ``[0, 1)`` (for threshold sampling)."""
        return self.value(x) / MERSENNE_P
