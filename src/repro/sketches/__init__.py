"""Linear sketches for dynamic (insert/delete) graph streams.

Table 1 of the paper lists a one-pass *dynamic-stream* algorithm at
``O~(m^3/T^2)`` (Kane-Mehlhorn-Sauerwald-Sun [41]) with a matching
``Omega(m^3/T^2)`` one-pass lower bound [44].  The algorithm is a linear
sketch, so it tolerates deletions - something none of the sampling
algorithms in this repository can do.  This package implements it:

* :mod:`~repro.sketches.kwise` - k-wise independent hash families via
  random polynomials over the Mersenne-prime field ``GF(2^61 - 1)``;
* :mod:`~repro.sketches.cycle_sketch` - the triangle sketch
  ``Z = sum_{(u,v) in E} x(u) * x(v)`` with Rademacher vertex variables:
  with 6-wise independence, ``E[Z^3] = 6T`` exactly (see the module's
  derivation), giving an unbiased one-pass dynamic estimator.
"""

from .kwise import KWiseHash
from .cycle_sketch import TriangleSketch, TriangleSketchEstimator

__all__ = ["KWiseHash", "TriangleSketch", "TriangleSketchEstimator"]
