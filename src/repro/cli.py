"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``stats <edgelist>``
    Offline ground truth of an edge-list file: n, m, T, kappa, d_E,
    max degree, wedges, transitivity.
``exact <edgelist>``
    One-pass exact triangle count with space/pass accounting.
``estimate <edgelist> --kappa K [--epsilon E] [--seed S] [--repetitions R]
[--engine auto|chunked|python|sharded] [--chunk-size C] [--workers W]
[--fuse | --no-fuse] [--speculate | --no-speculate] [--speculate-depth K]``
    The paper's estimator on the file's stream; ``--engine``/``--workers``
    select the execution engine (sharded = chunked kernels fanned across
    worker processes, seed-for-seed identical to the serial engines),
    ``--fuse`` turns on the fused sweep engine (independent pass plans of
    each round share physical tape sweeps; identical estimates, fewer
    stream traversals), and ``--speculate`` additionally fuses guessing-loop
    round *windows* (up to ``--speculate-depth`` pre-drawn rounds run
    alongside round i; the prefix up to the first acceptance is committed
    and the rest discarded; identical estimates, ~depth-fold fewer sweeps
    on multi-round estimates).  ``--max-retries`` / ``--task-timeout`` tune
    the fault-tolerant execution layer and ``--faults`` injects
    deterministic failures for testing; any tier the recovery ladder had
    to drop is reported as a ``degraded:`` line.
``bounds <edgelist>``
    Table 1 predicted space bounds evaluated on the instance.
``generate <family> --out FILE [--scale tiny|small|medium] [--seed S]``
    Write a workload-suite graph to an edge-list file.
``convert <edgelist> [--out FILE] [--validate]``
    Convert a text edge list to the binary ``.etape`` tape format
    (``--validate`` additionally checksums the payload and replays both
    files to prove the round trip exact).
``tape-info <tape>``
    Dump an ``.etape`` header: version, edge count, vertex bound,
    canonical flag, checksum, and the content fingerprint.
``resume <snapshot-or-dir> <edgelist>``
    Continue an interrupted estimate from a durable ``.esnap`` snapshot
    (or the newest valid one in a checkpoint directory) - bit-identical
    to a run that was never interrupted.  Engine flags may override the
    snapshot's stored selection (results are engine-independent).
``snapshot-info <snapshot-or-dir>``
    Dump an ``.esnap`` header and state summary: version, round index,
    committed rounds, accounting, config hash, stream fingerprint.
``serve [--socket PATH] [--port N] [--cache-size N] [--batch-window S]``
    Run the estimate-serving daemon (:mod:`repro.serve`): concurrent
    estimate requests over the same tape share physical sweeps, and
    repeated identical requests are served from the result cache with
    zero sweeps.  Stops on SIGINT/SIGTERM or a ``shutdown`` request.

``estimate`` (and ``resume``) accept ``--checkpoint-dir``: the driver
then writes an atomic ``.esnap`` snapshot after every committed round
(cadence ``--snapshot-every``, rotation ``--snapshot-keep``), and a
SIGTERM/SIGINT mid-run flushes a final snapshot before exiting 130, so
the run can be continued with ``repro resume``.

Every command taking an input file auto-detects its format by magic
bytes, so text edge lists and ``.etape`` tapes are interchangeable.

All output is plain text; exit code 0 on success, 2 on usage errors and
on expected input failures (missing/unreadable files, malformed tapes or
snapshots, resume mismatches - reported as one line on stderr, never a
traceback), 130 when interrupted (after flushing a final snapshot if
enabled).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from . import __version__
from .analysis import format_table, predicted_bounds
from .errors import GraphError, ServeError, SnapshotError, StreamError
from .core.driver import EstimatorConfig, TriangleCountEstimator
from .core.exact_reference import ExactStreamingCounter
from .generators import standard_suite, workload_by_name
from .graph.properties import summary
from .graph.triangles import per_edge_triangle_counts
from .io import read_edgelist, write_edgelist
from .streams.base import DEFAULT_CHUNK_EDGES
from .streams.tape import (
    MmapEdgeStream,
    open_edge_stream,
    read_header,
    tape_fingerprint,
    verify_tape,
    write_tape,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Degeneracy-aware streaming triangle counting (Bera-Seshadhri, PODS 2020)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="offline ground truth of an edge list")
    p_stats.add_argument("edgelist")

    p_exact = sub.add_parser("exact", help="one-pass exact triangle count")
    p_exact.add_argument("edgelist")

    p_est = sub.add_parser("estimate", help="run the paper's estimator")
    p_est.add_argument("edgelist")
    p_est.add_argument("--kappa", type=int, required=True, help="degeneracy upper bound (promise)")
    p_est.add_argument("--epsilon", type=float, default=0.25)
    p_est.add_argument("--seed", type=int, default=0)
    p_est.add_argument("--repetitions", type=int, default=5)
    p_est.add_argument(
        "--engine",
        default=None,
        choices=["auto", "chunked", "python", "sharded"],
        help="execution engine (default: global REPRO_ENGINE policy)",
    )
    p_est.add_argument(
        "--chunk-size", type=int, default=None, help="edges per chunk for the chunked engines"
    )
    p_est.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded pass executor (1 = in-process)",
    )
    p_est.add_argument(
        "--fuse",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "fuse each round's independent pass plans into shared tape sweeps "
            "(fewer stream traversals, identical estimates; default: REPRO_FUSE policy)"
        ),
    )
    p_est.add_argument(
        "--speculate",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "speculatively fuse guessing-loop rounds: round i and up to "
            "speculate-depth-1 pre-drawn later rounds share each pass's tape "
            "sweep; the prefix up to the first acceptance is committed and the "
            "rest discarded (identical estimates, ~depth-fold fewer sweeps on "
            "multi-round estimates; default: REPRO_SPECULATE policy)"
        ),
    )
    p_est.add_argument(
        "--speculate-depth",
        type=int,
        default=None,
        help=(
            "max rounds per speculative window, >= 2 (2 = the original round-pair "
            "driver; default: REPRO_SPECULATE_DEPTH policy).  Implies --speculate "
            "unless --no-speculate is given explicitly"
        ),
    )
    p_est.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "retries per failed unit of work before the recovery ladder "
            "degrades a tier (0 = degrade immediately; default: "
            "REPRO_MAX_RETRIES policy, 2)"
        ),
    )
    p_est.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-task deadline in seconds for sharded pool tasks - an "
            "overstaying task is presumed hung and retried on a fresh pool "
            "(default: REPRO_TASK_TIMEOUT policy, wait indefinitely)"
        ),
    )
    p_est.add_argument(
        "--faults",
        default=None,
        help=(
            "deterministic fault-injection spec, e.g. "
            "'worker.crash@2;sweep.mid_stage@3' (testing/benchmarking aid; "
            "default: REPRO_FAULTS policy)"
        ),
    )
    _add_snapshot_arguments(p_est)

    p_bounds = sub.add_parser("bounds", help="Table 1 predicted bounds for an instance")
    p_bounds.add_argument("edgelist")

    p_gen = sub.add_parser("generate", help="write a workload graph to a file")
    p_gen.add_argument("family", help="workload name (see `repro generate --list`)")
    p_gen.add_argument("--out", required=True)
    p_gen.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p_gen.add_argument("--seed", type=int, default=0)

    p_conv = sub.add_parser(
        "convert", help="convert a text edge list to the binary .etape tape format"
    )
    p_conv.add_argument("edgelist")
    p_conv.add_argument(
        "--out", default=None, help="output tape path (default: <edgelist>.etape)"
    )
    p_conv.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_EDGES,
        help="edges per streamed conversion batch (bounded memory)",
    )
    p_conv.add_argument(
        "--validate",
        action="store_true",
        help="after writing, checksum the payload and replay both files to "
        "prove the round trip is exact",
    )

    p_info = sub.add_parser("tape-info", help="dump an .etape tape header and stats")
    p_info.add_argument("tape")

    p_resume = sub.add_parser(
        "resume", help="continue an interrupted estimate from an .esnap snapshot"
    )
    p_resume.add_argument(
        "snapshot", help=".esnap file, or a checkpoint directory (newest valid snapshot)"
    )
    p_resume.add_argument("edgelist", help="the run's input (fingerprint must match)")
    p_resume.add_argument(
        "--engine",
        default=None,
        choices=["auto", "chunked", "python", "sharded"],
        help="override the snapshot's stored engine (results are engine-independent)",
    )
    p_resume.add_argument("--chunk-size", type=int, default=None)
    p_resume.add_argument("--workers", type=int, default=None)
    p_resume.add_argument("--fuse", action=argparse.BooleanOptionalAction, default=None)
    p_resume.add_argument(
        "--speculate", action=argparse.BooleanOptionalAction, default=None
    )
    p_resume.add_argument("--speculate-depth", type=int, default=None)
    p_resume.add_argument("--max-retries", type=int, default=None)
    p_resume.add_argument("--task-timeout", type=float, default=None)
    _add_snapshot_arguments(p_resume)

    p_sinfo = sub.add_parser(
        "snapshot-info", help="dump an .esnap snapshot header and state summary"
    )
    p_sinfo.add_argument(
        "snapshot", help=".esnap file, or a checkpoint directory (newest valid snapshot)"
    )

    p_serve = sub.add_parser(
        "serve", help="run the estimate-serving daemon (cross-job sweep sharing)"
    )
    p_serve.add_argument(
        "--socket",
        default=None,
        help="unix socket path speaking JSON lines (default: REPRO_SERVE_SOCKET)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "localhost TCP port for the HTTP transport, 0 = ephemeral "
            "(default: REPRO_SERVE_PORT)"
        ),
    )
    p_serve.add_argument(
        "--cache-size",
        type=int,
        default=None,
        help="result-cache entries (default: REPRO_SERVE_CACHE_SIZE, 256)",
    )
    p_serve.add_argument(
        "--batch-window",
        type=float,
        default=None,
        help=(
            "seconds an idle tape waits for co-riding requests before its "
            "first sweep (default: REPRO_SERVE_BATCH_WINDOW, 0.05)"
        ),
    )

    return parser


def _add_snapshot_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "write an atomic .esnap snapshot of the estimator state here after "
            "each committed round; a killed run resumes bit-identically with "
            "`repro resume` (default: REPRO_CHECKPOINT_DIR policy, disabled)"
        ),
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        help="committed rounds between persisted snapshots (default: REPRO_SNAPSHOT_EVERY, 1)",
    )
    parser.add_argument(
        "--snapshot-keep",
        type=int,
        default=None,
        help="snapshots retained in the rotation (default: REPRO_SNAPSHOT_KEEP, 3)",
    )


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = read_edgelist(args.edgelist)
    s = summary(graph)
    rows = [[key, value] for key, value in s.items()]
    print(format_table(["statistic", "value"], rows, caption=f"stats: {args.edgelist}"))
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    stream = open_edge_stream(args.edgelist)
    result = ExactStreamingCounter().count(stream)
    print(f"triangles: {result.triangles}")
    print(f"passes:    {result.passes_used}")
    print(f"space:     {result.space_words_peak} words")
    return 0


@contextmanager
def _graceful_signals(checkpoint_dir: Optional[str]) -> Iterator[None]:
    """Convert SIGTERM into ``KeyboardInterrupt`` while checkpointing.

    The driver's guessing loop flushes a final snapshot on
    ``KeyboardInterrupt``/``SystemExit`` before re-raising; SIGINT already
    arrives as ``KeyboardInterrupt``, so only SIGTERM needs translating.
    Installed only when a checkpoint dir is in force (there is nothing
    durable to flush otherwise) and only where a handler may be installed
    (the main thread).
    """
    if checkpoint_dir is None:
        yield
        return
    def _terminate(signum, frame):  # pragma: no cover - exercised via subprocess
        raise KeyboardInterrupt
    try:
        previous = signal.signal(signal.SIGTERM, _terminate)
    except ValueError:  # pragma: no cover - non-main thread embedding
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _print_estimate(result, repetitions: int) -> None:
    print(f"estimate:  {result.estimate:.1f}")
    print(f"rounds:    {len(result.rounds)}")
    print(f"passes:    {result.passes_total} total ({6 * repetitions} max per round)")
    if result.sweeps_wasted or result.passes_wasted:
        print(
            f"sweeps:    {result.sweeps_total} tape sweeps "
            f"(+{result.sweeps_wasted} wasted; {result.passes_wasted} "
            "speculative passes discarded)"
        )
    else:
        print(f"sweeps:    {result.sweeps_total} tape sweeps")
    print(f"space:     {result.space_words_peak} words peak per run")
    if result.final_plan is not None:
        plan = result.final_plan
        print(f"plan:      r={plan.r} s={plan.s} t_guess={plan.t_guess:.0f}")
    for report in result.degradations:
        print(
            f"degraded:  {report.action} after {report.attempts} attempt(s) "
            f"at {report.site}: {report.cause}"
        )


def _interrupted(checkpoint_dir: Optional[str]) -> int:
    where = f" (latest snapshot in {checkpoint_dir})" if checkpoint_dir else ""
    print(f"interrupted: final snapshot flushed{where}", file=sys.stderr)
    return 130


def _cmd_estimate(args: argparse.Namespace) -> int:
    from .core.snapshot import resolve_checkpoint_dir

    stream = open_edge_stream(args.edgelist)
    config = EstimatorConfig(
        epsilon=args.epsilon,
        seed=args.seed,
        repetitions=args.repetitions,
        engine_mode=args.engine,
        chunk_size=args.chunk_size,
        workers=args.workers,
        fuse=args.fuse,
        speculate=args.speculate,
        speculate_depth=args.speculate_depth,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        faults=args.faults,
        checkpoint_dir=args.checkpoint_dir,
        snapshot_every=args.snapshot_every,
        snapshot_keep=args.snapshot_keep,
    )
    checkpoint_dir = resolve_checkpoint_dir(config.checkpoint_dir)
    try:
        with _graceful_signals(checkpoint_dir):
            result = TriangleCountEstimator(config).estimate(stream, kappa=args.kappa)
    except KeyboardInterrupt:
        return _interrupted(checkpoint_dir)
    _print_estimate(result, args.repetitions)
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .core.driver import resume_from
    from .core.snapshot import load_source, resolve_checkpoint_dir

    snap = load_source(args.snapshot)
    stream = open_edge_stream(args.edgelist)
    overrides = {
        field: value
        for field, value in (
            ("engine_mode", args.engine),
            ("chunk_size", args.chunk_size),
            ("workers", args.workers),
            ("fuse", args.fuse),
            ("speculate", args.speculate),
            ("speculate_depth", args.speculate_depth),
            ("max_retries", args.max_retries),
            ("task_timeout", args.task_timeout),
            ("checkpoint_dir", args.checkpoint_dir),
            ("snapshot_every", args.snapshot_every),
            ("snapshot_keep", args.snapshot_keep),
        )
        if value is not None
    }
    print(f"resuming:  round {snap.round_index} from {snap.path or '<snapshot>'}")
    checkpoint_dir = resolve_checkpoint_dir(args.checkpoint_dir)
    if checkpoint_dir is None and snap.path is not None:
        checkpoint_dir = os.path.dirname(os.path.abspath(snap.path))
    try:
        with _graceful_signals(checkpoint_dir):
            result = resume_from(snap, stream, overrides=overrides)
    except KeyboardInterrupt:
        return _interrupted(checkpoint_dir)
    repetitions = int((snap.payload.get("config") or {}).get("repetitions", 1))
    _print_estimate(result, repetitions)
    return 0


def _cmd_snapshot_info(args: argparse.Namespace) -> int:
    from .core.snapshot import load_source

    snap = load_source(args.snapshot)
    payload = snap.payload
    accounting = payload.get("accounting") or {}
    rounds = payload.get("rounds") or []
    config = payload.get("config") or {}
    last_median = rounds[-1]["median_estimate"] if rounds else None
    rows = [
        ["version", snap.version],
        ["next round", snap.round_index],
        ["rounds committed", len(rounds)],
        ["median so far", "-" if last_median is None else f"{last_median:.1f}"],
        ["kappa", payload.get("kappa")],
        ["seed", config.get("seed")],
        ["repetitions", config.get("repetitions")],
        ["passes so far", accounting.get("passes_total")],
        ["sweeps so far", accounting.get("sweeps_total")],
        ["space peak (words)", accounting.get("space_words_peak")],
        ["degradations", len(payload.get("degradations") or [])],
        ["config hash", snap.config_hash_hex[:16]],
        ["fingerprint", snap.fingerprint_hex[:16]],
    ]
    print(
        format_table(
            ["field", "value"], rows, caption=f"snapshot: {snap.path or '<snapshot>'}"
        )
    )
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    graph = read_edgelist(args.edgelist)
    s = summary(graph)
    if s["T"] == 0:
        print("graph is triangle-free; bounds are undefined (T = 0)")
        return 0
    max_te = max(per_edge_triangle_counts(graph).values(), default=0)
    rows = predicted_bounds(
        int(s["n"]),
        int(s["m"]),
        float(s["T"]),
        kappa=int(s["kappa"]),
        max_degree=int(s["max_degree"]),
        max_te=int(max_te),
    )
    print(
        format_table(
            ["algorithm", "source", "formula", "passes", "predicted words"],
            [[r.name, r.source, r.formula, r.passes, r.value] for r in rows],
            caption=f"Table 1 bounds for {args.edgelist} "
            f"(n={int(s['n'])} m={int(s['m'])} T={int(s['T'])} kappa={int(s['kappa'])})",
        )
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    try:
        workload = workload_by_name(args.family, scale=args.scale)
    except Exception:
        names = ", ".join(w.name for w in standard_suite(args.scale))
        print(f"unknown family {args.family!r}; available: {names}", file=sys.stderr)
        return 2
    graph = workload.instantiate(seed=args.seed)
    write_edgelist(
        graph,
        args.out,
        header=[
            f"family={workload.name} scale={args.scale} seed={args.seed}",
            f"kappa_bound={workload.kappa_bound}",
            workload.description,
        ],
    )
    print(f"wrote {graph.num_edges} edges ({graph.num_vertices} vertices) to {args.out}")
    print(f"degeneracy promise: kappa <= {workload.kappa_bound}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    out = args.out if args.out is not None else f"{args.edgelist}.etape"
    header = write_tape(args.edgelist, out, chunk_size=args.chunk_size)
    print(f"wrote {header.num_edges} edges to {out}")
    print(f"fingerprint: {tape_fingerprint(out)}")
    if args.validate:
        verify_tape(out)  # full-payload CRC against the header
        source = open_edge_stream(args.edgelist)
        tape = MmapEdgeStream(out)
        mismatch = _first_mismatch(source, tape, args.chunk_size)
        if mismatch is not None:
            print(f"round-trip MISMATCH at edge {mismatch}", file=sys.stderr)
            return 1
        print(f"validated: checksum and {header.num_edges}-edge round trip exact")
    return 0


def _first_mismatch(source, tape, chunk_size: int) -> Optional[int]:
    """Index of the first differing edge between two streams, or ``None``."""
    import itertools

    try:
        import numpy as np
    except ImportError:  # pragma: no cover - NumPy baked into CI
        np = None
    at = 0
    if np is not None:
        for a, b in itertools.zip_longest(
            source.iter_chunks(chunk_size), tape.iter_chunks(chunk_size)
        ):
            if a is None or b is None or len(a) != len(b):
                return at + (0 if a is None or b is None else min(len(a), len(b)))
            if not np.array_equal(a, b):
                return at + int(np.flatnonzero((np.asarray(a) != np.asarray(b)).any(axis=1))[0])
            at += len(a)
        return None
    for a, b in itertools.zip_longest(source, tape):  # pragma: no cover - fallback
        if a != b:
            return at
        at += 1
    return None


def _cmd_tape_info(args: argparse.Namespace) -> int:
    header = read_header(args.tape)
    rows = [
        ["version", header.version],
        ["edges (m)", header.num_edges],
        ["max vertex id", header.max_vertex_id],
        ["vertex bound (n)", header.num_vertices_upper],
        ["canonical", str(header.canonical).lower()],
        ["payload bytes", header.payload_bytes],
        ["checksum (crc32)", f"{header.checksum:#010x}"],
        ["fingerprint", tape_fingerprint(args.tape)],
    ]
    print(format_table(["field", "value"], rows, caption=f"tape: {args.tape}"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve.daemon import serve_forever

    return serve_forever(
        socket_path=args.socket,
        port=args.port,
        cache_size=args.cache_size,
        batch_window=args.batch_window,
    )


_COMMANDS = {
    "stats": _cmd_stats,
    "exact": _cmd_exact,
    "estimate": _cmd_estimate,
    "bounds": _cmd_bounds,
    "generate": _cmd_generate,
    "convert": _cmd_convert,
    "tape-info": _cmd_tape_info,
    "resume": _cmd_resume,
    "snapshot-info": _cmd_snapshot_info,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Expected failure modes - missing or unreadable inputs, malformed
    tapes and snapshots, mismatched resume state, serve misconfiguration
    - exit 2 with a one-line ``repro <command>: <message>`` on stderr
    instead of a traceback.  Genuinely unexpected exceptions (and
    :class:`~repro.errors.ParameterError`, which argparse-level
    validation should have caught first) still propagate: a traceback is
    the right interface for a bug.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (StreamError, SnapshotError, GraphError, ServeError, OSError) as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
