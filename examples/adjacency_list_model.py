"""The vertex-arrival (adjacency-list) model, demonstrated.

Section 2 of the paper contrasts the arbitrary-order edge model with the
adjacency-list model of McGregor et al., where all edges incident to a
vertex arrive together and a *one-pass* ``O~(m/sqrt(T))`` algorithm
exists.  This example streams the same graph both ways:

* edge-arrival: the paper's six-pass estimator;
* vertex-arrival: the one-pass MVV reservoir estimator.

Run:  python examples/adjacency_list_model.py
"""

from __future__ import annotations

import math
import random

from repro import EstimatorConfig, TriangleCountEstimator
from repro.baselines.adjlist_mvv import AdjListMVVEstimator
from repro.generators import barabasi_albert_graph
from repro.graph import count_triangles
from repro.streams import InMemoryEdgeStream, VertexArrivalStream
from repro.streams.transforms import shuffled


def main() -> None:
    rng = random.Random(14)
    graph = barabasi_albert_graph(1500, 5, rng)
    t = count_triangles(graph)
    m = graph.num_edges
    print(f"graph: n={graph.num_vertices} m={m} T={t}")

    # Edge-arrival model: the paper's algorithm (six passes per run).
    edge_stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, rng))
    paper = TriangleCountEstimator(
        EstimatorConfig(seed=3, t_hint=float(t))
    ).estimate(edge_stream, kappa=5)
    print(
        f"edge model / paper:     est {paper.estimate:8.0f} "
        f"({(paper.estimate - t) / t:+.1%}), {paper.passes_total} passes, "
        f"{paper.space_words_peak} words"
    )

    # Vertex-arrival model: one pass, reservoir sized at ~ 4 m / sqrt(T).
    va_stream = VertexArrivalStream.from_graph(graph, rng=random.Random(5))
    k = max(8, math.ceil(4 * m / math.sqrt(t)))
    estimates = []
    for seed in range(5):
        result = AdjListMVVEstimator(k, random.Random(seed)).estimate(va_stream)
        estimates.append(result.estimate)
    median = sorted(estimates)[2]
    print(
        f"vertex model / mvv:     est {median:8.0f} "
        f"({(median - t) / t:+.1%}), 1 pass per run, {2 * k} words "
        f"(reservoir k={k} ~ 4m/sqrt(T))"
    )
    print(
        "\nThe adjacency-list grouping buys a one-pass algorithm; the paper's"
        "\ncontribution is beating m/sqrt(T)-style space in the *harder*"
        "\narbitrary-order edge model whenever the degeneracy is small."
    )


if __name__ == "__main__":
    main()
