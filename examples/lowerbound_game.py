"""Play the Theorem 6.3 distinguishing game at shrinking space budgets.

The lower bound says: below ``Omega(m*kappa/T)`` space, no constant-pass
algorithm can tell the triangle-free YES family from the triangle-rich NO
family.  This example runs the paper's own estimator on freshly sampled
instances at budget factors 1.0 down to 0.02 and prints the success rate -
watch it collapse toward a coin flip as the budget starves.

Run:  python examples/lowerbound_game.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.lowerbound import instance_parameters, run_distinguishing_experiment


def main() -> None:
    instance = instance_parameters(kappa=4, exponent_r=3, universe=30)
    print(
        f"instance family: p={instance.p} q={instance.q} N={instance.universe} "
        f"-> n={instance.num_vertices}, planted T={instance.planted_triangles} "
        f"per intersecting index"
    )
    rows = []
    for factor in (1.0, 0.3, 0.1, 0.05, 0.02):
        outcome = run_distinguishing_experiment(
            instance, budget_factor=factor, trials=8, seed=11
        )
        rows.append(
            [
                factor,
                outcome.trials,
                outcome.success_rate,
                sum(outcome.yes_estimates) / outcome.trials,
                sum(outcome.no_estimates) / outcome.trials,
                outcome.space_words_peak,
            ]
        )
    print(
        format_table(
            ["budget factor", "trials", "success rate", "mean YES est", "mean NO est", "peak words"],
            rows,
            caption="distinguishing YES (triangle-free) from NO (planted triangles)",
        )
    )


if __name__ == "__main__":
    main()
