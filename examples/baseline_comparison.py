"""Compare every implemented estimator on one workload.

Runs the exact reference, all six Table 1 baselines, and the paper's
estimator on a Barabasi-Albert graph at matched target accuracy, printing
the E1-style table: estimate, error, passes, peak words, wall time.

Run:  python examples/baseline_comparison.py [workload] [scale]
      (defaults: ba small; workloads: see repro.generators.standard_suite)
"""

from __future__ import annotations

import sys

from repro import EstimatorConfig
from repro.baselines import available_baselines
from repro.core.exact_reference import ExactStreamingCounter
from repro.generators import workload_by_name
from repro.graph import count_triangles
from repro.harness import (
    aggregate,
    print_report_table,
    run_baseline_on_graph,
    run_paper_estimator_on_graph,
    sweep_seeds,
)
from repro.streams import InMemoryEdgeStream


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "ba"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"
    workload = workload_by_name(workload_name, scale=scale)
    graph = workload.instantiate(seed=0)
    t = count_triangles(graph)
    print(
        f"workload {workload.name!r}: n={graph.num_vertices} m={graph.num_edges} "
        f"T={t} kappa<={workload.kappa_bound}"
    )
    if t == 0:
        print("triangle-free instance; nothing to compare")
        return

    exact = ExactStreamingCounter().count(InMemoryEdgeStream.from_graph(graph))
    print(f"exact reference: 1 pass, {exact.space_words_peak} words\n")

    seeds = range(3)
    aggregates = []
    for name in available_baselines():
        reports = sweep_seeds(
            lambda s, n=name: run_baseline_on_graph(
                n, graph, seed=s, workload=workload.name, exact=t
            ),
            seeds,
        )
        aggregates.append(aggregate(reports))
    paper = sweep_seeds(
        lambda s: run_paper_estimator_on_graph(
            graph,
            kappa=workload.kappa_bound,
            seed=s,
            workload=workload.name,
            config=EstimatorConfig(seed=s, t_hint=float(t)),
            exact=t,
        ),
        seeds,
    )
    aggregates.append(aggregate(paper))
    print_report_table(
        aggregates, caption=f"all estimators on {workload.name!r} at matched accuracy"
    )


if __name__ == "__main__":
    main()
