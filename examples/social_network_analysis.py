"""Estimate the clustering structure of a synthetic social network.

The paper's practical motivation: real-world social graphs have low
degeneracy and many triangles, so the ``m*kappa/T`` bound is tiny for them.
No public dataset ships with this repository (offline build), so the
network is simulated with a Chung-Lu power-law model - the standard
degree-sequence stand-in for social graphs (see DESIGN.md, Substitutions).

The example computes, *from the stream*:

* a (1 +- eps) triangle count with the paper's estimator;
* the exact wedge count (one cheap degree pass);
* hence the global clustering coefficient ``3T / W``;

and cross-checks against the offline ground truth.

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import random

from repro import EstimatorConfig, TriangleCountEstimator
from repro.generators.random_graphs import chung_lu_graph, power_law_weights
from repro.graph import count_triangles, degeneracy, global_clustering_coefficient, wedge_count
from repro.streams import InMemoryEdgeStream, PassScheduler
from repro.streams.transforms import shuffled


def wedge_count_from_stream(stream: InMemoryEdgeStream) -> float:
    """Exact wedge count in one pass with a degree table.

    ``W = sum_v C(d_v, 2)`` needs every degree; for a social-network-sized
    table this is routine (it is the same liberty the JSP baseline takes).
    """
    scheduler = PassScheduler(stream, max_passes=1)
    degree: dict[int, int] = {}
    for u, v in scheduler.new_pass():
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
    return sum(d * (d - 1) / 2 for d in degree.values())


def main() -> None:
    rng = random.Random(99)
    n = 4000
    weights = power_law_weights(n, exponent=2.5, max_weight=n ** 0.5)
    graph = chung_lu_graph(weights, rng)
    kappa = degeneracy(graph)  # offline; used here as the promise
    print(f"synthetic social network: n={graph.num_vertices} m={graph.num_edges} "
          f"kappa={kappa} (power-law 2.5)")

    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, rng))
    result = TriangleCountEstimator(EstimatorConfig(epsilon=0.25, seed=4)).estimate(
        stream, kappa=max(1, kappa)
    )
    wedges = wedge_count_from_stream(stream)
    estimated_gcc = 3 * result.estimate / wedges if wedges else 0.0

    true_t = count_triangles(graph)
    print(f"triangles:  estimated {result.estimate:.0f}  vs exact {true_t}"
          f"  ({(result.estimate - true_t) / max(1, true_t):+.1%})")
    print(f"wedges:     {wedges:.0f} (exact, one degree pass; "
          f"offline check {wedge_count(graph)})")
    print(f"clustering: estimated {estimated_gcc:.4f}  vs exact "
          f"{global_clustering_coefficient(graph):.4f}")
    print(f"space: {result.space_words_peak} words vs m = {graph.num_edges} "
          f"edges stored by an exact counter")


if __name__ == "__main__":
    main()
