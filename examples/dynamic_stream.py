"""Triangle counting under insertions AND deletions.

Every sampling algorithm in this repository - including the paper's - is
insert-only.  Table 1's dynamic-stream row ([41], with the matching lower
bound [44]) is a *linear sketch*: one counter per copy, updated additively,
so deletions subtract out exactly.  This example churns a graph through
thousands of spurious insert/delete pairs and shows the sketch estimate is
bit-identical to the clean run, then shows its accuracy cost: the
``m^3/T^2`` sample complexity.

Run:  python examples/dynamic_stream.py
"""

from __future__ import annotations

import random

from repro.generators import complete_graph
from repro.graph import count_triangles
from repro.sketches import TriangleSketchEstimator
from repro.streams import DynamicEdgeStream, churn_stream


def main() -> None:
    graph = complete_graph(14)
    t = count_triangles(graph)
    m = graph.num_edges
    print(f"net graph: K14  m={m} T={t}  (m^3/T^2 = {m**3 / t**2:.1f})")

    clean = DynamicEdgeStream.insert_only(graph.edge_list())
    # K14 has no internal non-edges, so let churn use a wider id universe.
    churned = churn_stream(graph, churn_factor=3.0, rng=random.Random(1), num_vertices=100)
    print(
        f"streams: clean = {len(clean)} updates; "
        f"churned = {len(churned)} updates ({len(churned) - len(clean)} cancel out)"
    )

    estimator_a = TriangleSketchEstimator(4000, random.Random(7), median_groups=5)
    estimator_b = TriangleSketchEstimator(4000, random.Random(7), median_groups=5)
    result_clean = estimator_a.estimate(clean)
    result_churned = estimator_b.estimate(churned)
    print(
        f"clean   estimate: {result_clean.estimate:8.1f} "
        f"({(result_clean.estimate - t) / t:+.1%}), 1 pass, "
        f"{result_clean.space_words_peak} words"
    )
    print(
        f"churned estimate: {result_churned.estimate:8.1f}  <- identical: "
        f"{result_churned.estimate == result_clean.estimate} "
        "(linearity cancels deletions exactly)"
    )


if __name__ == "__main__":
    main()
