"""The paper's Section 1.1 wheel-graph showcase, measured.

"Consider the wheel graph with n vertices ... The space bound given in
Theorem 1.2 is only polylogarithmic, while all existing streaming algorithm
bounds are Omega(sqrt(n))."

This example grows wheels and reports, for the paper's estimator and the
``m^{3/2}/T`` neighbor-sampling baseline, how measured space *scales* with
``n``: the paper's stays flat, the baseline grows like ``sqrt(n)``.

Run:  python examples/wheel_showcase.py
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.generators import wheel_graph
from repro.harness import run_baseline_on_graph, run_paper_estimator_on_graph
from repro import EstimatorConfig


def main() -> None:
    sizes = [512, 1024, 2048, 4096]
    rows = []
    base_paper = base_mvv = None
    for n in sizes:
        graph = wheel_graph(n)
        exact = n - 1  # closed form for n >= 5
        paper = run_paper_estimator_on_graph(
            graph,
            kappa=3,
            seed=1,
            workload=f"wheel-{n}",
            config=EstimatorConfig(seed=1, t_hint=float(exact)),
            exact=exact,
        )
        mvv = run_baseline_on_graph(
            "mvv-neighbor", graph, seed=1, workload=f"wheel-{n}", exact=exact
        )
        if base_paper is None:
            base_paper, base_mvv = paper.space_words_peak, mvv.space_words_peak
        rows.append(
            [
                n,
                exact,
                paper.estimate,
                paper.space_words_peak,
                paper.space_words_peak / base_paper,
                mvv.estimate,
                mvv.space_words_peak,
                mvv.space_words_peak / base_mvv,
            ]
        )
    print(
        format_table(
            [
                "n",
                "T",
                "paper est",
                "paper words",
                "paper growth",
                "mvv est",
                "mvv words",
                "mvv growth",
            ],
            rows,
            caption="wheel scaling: paper stays flat; m^{3/2}/T grows ~sqrt(n) "
            "(growth = words / words@512)",
        )
    )


if __name__ == "__main__":
    main()
