"""Quickstart: estimate a graph's triangle count from an edge stream.

Builds a preferential-attachment graph (a canonical constant-degeneracy
family per the paper), streams it in random order, and runs the paper's
six-pass estimator next to the exact reference counter.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import EstimatorConfig, ExactStreamingCounter, TriangleCountEstimator
from repro.generators import barabasi_albert_graph
from repro.streams import InMemoryEdgeStream
from repro.streams.transforms import shuffled


def main() -> None:
    # A Barabasi-Albert graph attaching k=5 edges per vertex is
    # 5-degenerate by construction, so kappa=5 is a *certified* promise.
    rng = random.Random(2020)
    graph = barabasi_albert_graph(n=2000, k=5, rng=rng)
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, rng))
    print(f"graph: n={graph.num_vertices} m={graph.num_edges}")

    exact = ExactStreamingCounter().count(stream)
    print(f"exact count: T={exact.triangles} "
          f"(1 pass, {exact.space_words_peak} words - it stored the whole graph)")

    config = EstimatorConfig(epsilon=0.25, repetitions=5, seed=7)
    result = TriangleCountEstimator(config).estimate(stream, kappa=5)
    err = (result.estimate - exact.triangles) / exact.triangles
    print(f"paper estimator: {result.estimate:.0f} ({err:+.1%} error)")
    print(f"  guessing rounds: {len(result.rounds)} "
          f"(T-guess walked {result.rounds[0].t_guess:.0f} -> "
          f"{result.rounds[-1].t_guess:.0f})")
    print(f"  peak space: {result.space_words_peak} words per run, "
          f"{result.passes_total} passes total (6 per run)")


if __name__ == "__main__":
    main()
