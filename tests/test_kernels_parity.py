"""Seed-for-seed parity between the chunked NumPy engine and pure Python.

The chunked kernels (:mod:`repro.core.kernels`) must be *bit-identical* to
the reference Python passes for the same seeds: they pre-draw or replay all
randomness in the same order, so estimates, diagnostics, pass counts, and
space accounting cannot drift.  These tests pin that invariant across graph
families, stream orders, both runner shapes (single and parallel), and the
chunk-boundary edge cases (chunk larger than the stream, stream length not
a multiple of the chunk size, chunk of one, empty stream).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import engine
from repro.core.estimator import run_single_estimate
from repro.core.kernels import (
    collect_stream_positions,
    count_tracked_degrees,
    scan_incident_edges,
    scan_watch_keys,
)
from repro.core.parallel import run_parallel_estimates
from repro.core.params import ParameterPlan
from repro.generators import planted_triangles_graph, rmat_graph, wheel_graph
from repro.graph import count_triangles, degeneracy
from repro.streams import InMemoryEdgeStream, PassScheduler, SpaceMeter
from repro.streams.transforms import shuffled


def _stream_and_plan(graph, order_seed=11, epsilon=0.25):
    stream = InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(order_seed)))
    kappa = max(1, degeneracy(graph))
    t = float(max(1, count_triangles(graph)))
    plan = ParameterPlan.build(graph.num_vertices, graph.num_edges, kappa, t, epsilon)
    return stream, plan


def _run_both(stream, plan, seed, chunk):
    with engine.engine_overrides("python"):
        meter_py = SpaceMeter()
        ref = run_single_estimate(stream, plan, random.Random(seed), meter=meter_py)
    with engine.engine_overrides("chunked", chunk):
        meter_ck = SpaceMeter()
        got = run_single_estimate(stream, plan, random.Random(seed), meter=meter_ck)
    return ref, got, meter_py, meter_ck


GRAPHS = {
    "wheel": lambda: wheel_graph(150),
    "rmat": lambda: rmat_graph(9, 6, random.Random(5)),
    "planted": lambda: planted_triangles_graph(200, 80, kappa_clique=6, rng=random.Random(7)),
}


class TestSingleRunnerParity:
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_results_across_families(self, family, seed):
        stream, plan = _stream_and_plan(GRAPHS[family]())
        ref, got, meter_py, meter_ck = _run_both(stream, plan, seed, chunk=257)
        assert got == ref  # every SinglePassStackResult field, estimate included
        assert meter_ck.peak_words == meter_py.peak_words
        assert meter_ck.peak_breakdown() == meter_py.peak_breakdown()

    @pytest.mark.parametrize(
        "chunk", [1, 7, 64, 149, 150, 151, 100_000]  # m=2*150-2=298 for the wheel
    )
    def test_chunk_boundaries(self, chunk):
        stream, plan = _stream_and_plan(wheel_graph(150))
        ref, got, _, _ = _run_both(stream, plan, seed=3, chunk=chunk)
        assert got == ref

    def test_duplicate_edges_stay_bit_identical(self):
        # The model's tape has unrepeated edges, but unvalidated streams
        # (FileEdgeStream, InMemoryEdgeStream(validate=False)) may not;
        # parity must hold regardless, which requires occurrence-counted
        # (not presence-based) closure scans in pass 6.
        graph = wheel_graph(80)
        order = shuffled(graph, random.Random(3))
        tape = order + order[:7]  # seven repeated edges at the end
        stream = InMemoryEdgeStream(tape, validate=False)
        plan = ParameterPlan.build(
            graph.num_vertices, len(tape), 3, float(count_triangles(graph)), 0.25
        )
        ref, got, _, _ = _run_both(stream, plan, seed=5, chunk=37)
        assert got == ref

    def test_forced_chunked_on_iterator_only_stream(self):
        # The generic batching fallback must feed the kernels correctly too.
        graph = wheel_graph(80)
        base_stream, plan = _stream_and_plan(graph)
        edges = list(base_stream)

        class IteratorOnly(InMemoryEdgeStream.__bases__[0]):  # EdgeStream
            supports_native_chunks = False

            def __iter__(self):
                return iter(edges)

            def __len__(self):
                return len(edges)

        with engine.engine_overrides("python"):
            ref = run_single_estimate(base_stream, plan, random.Random(9))
        with engine.engine_overrides("chunked", 33):
            got = run_single_estimate(IteratorOnly(), plan, random.Random(9))
        assert got == ref


class TestParallelRunnerParity:
    @pytest.mark.parametrize("family", sorted(GRAPHS))
    def test_identical_results(self, family):
        stream, plan = _stream_and_plan(GRAPHS[family]())
        with engine.engine_overrides("python"):
            ref = run_parallel_estimates(stream, plan, [random.Random(s) for s in range(5)])
        with engine.engine_overrides("chunked", 193):
            got = run_parallel_estimates(stream, plan, [random.Random(s) for s in range(5)])
        assert got == ref


class TestKernelPrimitives:
    def test_collect_stream_positions_duplicates_and_order(self):
        edges = [(i, i + 1) for i in range(10)]
        stream = InMemoryEdgeStream(edges)
        scheduler = PassScheduler(stream)
        positions = np.array([9, 0, 3, 3, 0], dtype=np.int64)
        got = collect_stream_positions(scheduler, positions, chunk_size=4)
        assert got == [edges[9], edges[0], edges[3], edges[3], edges[0]]
        assert scheduler.passes_used == 1

    def test_collect_stream_positions_abandons_early(self):
        edges = [(i, i + 1) for i in range(100)]
        scheduler = PassScheduler(InMemoryEdgeStream(edges), max_passes=1)
        got = collect_stream_positions(scheduler, np.array([2], dtype=np.int64), 10)
        assert got == [(2, 3)]  # and no PassBudgetExceeded on the next line
        assert scheduler.passes_used == 1

    def test_count_tracked_degrees_empty_and_nonempty(self):
        edges = [(0, 1), (1, 2), (2, 3), (1, 3)]
        scheduler = PassScheduler(InMemoryEdgeStream(edges))
        counts = count_tracked_degrees(scheduler, np.array([1, 3], dtype=np.int64), 2)
        assert counts.tolist() == [3, 2]
        counts = count_tracked_degrees(scheduler, np.array([], dtype=np.int64), 2)
        assert counts.tolist() == []
        assert scheduler.passes_used == 2

    def test_scan_incident_edges_filters_in_order(self):
        edges = [(0, 1), (2, 3), (1, 4), (5, 6), (4, 7)]
        scheduler = PassScheduler(InMemoryEdgeStream(edges))
        got = []
        scan_incident_edges(scheduler, [4], 2, lambda u, v: got.append((u, v)))
        assert got == [(1, 4), (4, 7)]

    def test_scan_watch_keys_subset(self):
        edges = [(0, 1), (2, 3), (1, 4)]
        scheduler = PassScheduler(InMemoryEdgeStream(edges))
        found = scan_watch_keys(scheduler, [(2, 3), (7, 9), (0, 1)], chunk_size=2)
        assert found == {(0, 1), (2, 3)}
        found = scan_watch_keys(scheduler, [], chunk_size=2)
        assert found == set()

    def test_scan_watch_keys_large_ids_fallback(self):
        big = 1 << 40  # overflows the 32-bit packing; per-row fallback kicks in
        edges = [(0, 1), (5, big), (2, 3)]
        scheduler = PassScheduler(InMemoryEdgeStream(edges))
        found = scan_watch_keys(scheduler, [(5, big), (2, 3)], chunk_size=2)
        assert found == {(5, big), (2, 3)}

    def test_empty_stream_chunk_iteration(self):
        stream = InMemoryEdgeStream([])
        assert list(stream.iter_chunks(16)) == []
        scheduler = PassScheduler(stream)
        assert list(scheduler.new_pass_chunks(16)) == []
        assert scheduler.passes_used == 1


class TestEngineConfig:
    def test_auto_uses_python_for_iterator_only_streams(self):
        class IteratorOnly(InMemoryEdgeStream.__bases__[0]):
            def __iter__(self):
                return iter(())

            def __len__(self):
                return 0

        with engine.engine_overrides("auto"):
            assert engine.use_chunks(InMemoryEdgeStream([(0, 1)]))
            assert not engine.use_chunks(IteratorOnly())

    def test_overrides_restore_previous_policy(self):
        before = (engine.engine_mode(), engine.chunk_size())
        with engine.engine_overrides("python", 123):
            assert engine.engine_mode() == "python"
            assert engine.chunk_size() == 123
        assert (engine.engine_mode(), engine.chunk_size()) == before

    def test_invalid_mode_rejected(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError):
            engine.set_engine("turbo")
