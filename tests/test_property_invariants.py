"""Cross-cutting property-based invariants (hypothesis).

Each property here spans multiple subsystems - the kind of invariant unit
tests cannot see: stream counters vs offline counters, sketch linearity
under churn, sampler-distribution equivalences, and estimator totality.
"""

from __future__ import annotations

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact_reference import ExactStreamingCounter
from repro.core.estimator import run_single_estimate
from repro.core.params import ParameterPlan
from repro.graph import Graph, count_triangles, degeneracy
from repro.sampling.discrete import CumulativeSampler
from repro.sampling.weighted import WeightedReservoir
from repro.sketches import TriangleSketch
from repro.streams import InMemoryEdgeStream
from repro.streams.dynamic import churn_stream


def small_graphs():
    """Strategy: simple graphs on <= 14 vertices as canonical edge sets."""
    pairs = st.tuples(st.integers(0, 13), st.integers(0, 13)).filter(lambda p: p[0] != p[1])
    return st.lists(pairs, max_size=45).map(
        lambda edges: sorted({(min(u, v), max(u, v)) for u, v in edges})
    )


class TestCounterAgreement:
    @settings(max_examples=50, deadline=None)
    @given(small_graphs())
    def test_streaming_exact_equals_offline(self, edges):
        graph = Graph(edges=edges)
        stream = InMemoryEdgeStream(edges, validate=False)
        assert ExactStreamingCounter().count(stream).triangles == count_triangles(graph)

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), st.integers(0, 2**31))
    def test_exact_count_order_invariant(self, edges, seed):
        if not edges:
            return
        shuffled_edges = list(edges)
        random.Random(seed).shuffle(shuffled_edges)
        a = ExactStreamingCounter().count(InMemoryEdgeStream(edges, validate=False))
        b = ExactStreamingCounter().count(InMemoryEdgeStream(shuffled_edges, validate=False))
        assert a.triangles == b.triangles


class TestSketchLinearity:
    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), st.integers(0, 2**31), st.integers(0, 2**31))
    def test_churn_invariance(self, edges, hash_seed, churn_seed):
        graph = Graph(edges=edges)
        clean = TriangleSketch(random.Random(hash_seed))
        churned = TriangleSketch(random.Random(hash_seed))
        for u, v in graph.edges():
            clean.update(u, v, 1)
        stream = churn_stream(graph, 1.0, random.Random(churn_seed), num_vertices=30)
        for (u, v), delta in stream:
            churned.update(u, v, delta)
        assert clean.z == churned.z

    @settings(max_examples=30, deadline=None)
    @given(small_graphs(), st.integers(0, 2**31))
    def test_z_bounded_by_m(self, edges, hash_seed):
        # |Z| <= m always (each edge contributes +-1).
        sketch = TriangleSketch(random.Random(hash_seed))
        for u, v in edges:
            sketch.update(u, v, 1)
        assert abs(sketch.z) <= len(edges)


class TestSamplerEquivalence:
    def test_cumulative_matches_weighted_reservoir(self):
        # Two implementations of "sample index ~ w_i / sum w": their
        # empirical distributions must agree.
        weights = [1.0, 4.0, 2.0, 3.0]
        trials = 8000
        rng = random.Random(3)
        cumulative = Counter(
            CumulativeSampler(weights).draw(rng) for _ in range(trials)
        )
        reservoir_counts: Counter = Counter()
        for _ in range(trials):
            res = WeightedReservoir(rng)
            for i, w in enumerate(weights):
                res.offer(i, w)
            reservoir_counts[res.sample()] += 1
        for i in range(len(weights)):
            assert abs(cumulative[i] - reservoir_counts[i]) / trials < 0.04, i


class TestEstimatorTotality:
    @settings(max_examples=20, deadline=None)
    @given(small_graphs(), st.integers(0, 2**31))
    def test_estimator_returns_finite_nonnegative(self, edges, seed):
        if len(edges) < 1:
            return
        graph = Graph(edges=edges)
        kappa = max(1, degeneracy(graph))
        plan = ParameterPlan.build(
            num_vertices=14,
            num_edges=len(edges),
            kappa=kappa,
            t_guess=float(max(1, count_triangles(graph))),
            epsilon=0.3,
        )
        stream = InMemoryEdgeStream(edges, validate=False)
        result = run_single_estimate(stream, plan, random.Random(seed))
        assert result.estimate >= 0.0
        assert result.estimate == result.estimate  # not NaN
        assert result.passes_used <= 6

    @settings(max_examples=20, deadline=None)
    @given(small_graphs(), st.integers(0, 2**31))
    def test_triangle_free_estimates_exactly_zero(self, edges, seed):
        if len(edges) < 1:
            return
        graph = Graph(edges=edges)
        if count_triangles(graph) != 0:
            return
        plan = ParameterPlan.build(14, len(edges), max(1, degeneracy(graph)), 5.0, 0.3)
        stream = InMemoryEdgeStream(edges, validate=False)
        result = run_single_estimate(stream, plan, random.Random(seed))
        assert result.estimate == 0.0
