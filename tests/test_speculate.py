"""Speculative round-pair fusion: commit/discard protocol and accounting.

The randomized cross-mode matrix (``test_parity_matrix.py``) pins
bit-identity wholesale; these tests pin the *mechanics*: the pair runner
against the sequential runner, the scheduler's committed/wasted sweep
split, the driver's discard-and-rewind path, the acceptance-imminent
speculation throttle, and the knob plumbing from environment to config.
"""

from __future__ import annotations

import random

import pytest

from repro.core import engine
from repro.core.driver import EstimatorConfig, TriangleCountEstimator
from repro.core.parallel import run_parallel_estimates
from repro.core.params import ParameterPlan
from repro.core.speculate import (
    PRIMARY,
    SPECULATIVE,
    run_speculative_pair,
    run_speculative_window,
)
from repro.errors import StreamError
from repro.generators import barabasi_albert_graph, wheel_graph
from repro.graph import count_triangles, degeneracy
from repro.streams import InMemoryEdgeStream, PassScheduler
from repro.streams.space import SpaceMeter
from repro.streams.transforms import shuffled


def _stream(graph, seed=0):
    return InMemoryEdgeStream.from_graph(graph, shuffled(graph, random.Random(seed)))


def _plan(graph, t_guess, kappa=None):
    kappa = kappa if kappa is not None else max(1, degeneracy(graph))
    return ParameterPlan.build(
        graph.num_vertices, graph.num_edges, kappa, float(t_guess), 0.25
    )


class TestSchedulerSweepAccounting:
    def test_untagged_sweeps_always_committed(self):
        stream = InMemoryEdgeStream([(0, 1), (1, 2)])
        scheduler = PassScheduler(stream)
        for _ in scheduler.new_pass():
            pass
        scheduler.discard_owner("anything")
        assert scheduler.sweeps_used == 1
        assert scheduler.sweeps_committed == 1
        assert scheduler.sweeps_wasted == 0

    def test_solely_owned_sweeps_become_wasted(self):
        stream = InMemoryEdgeStream([(0, 1), (1, 2)])
        scheduler = PassScheduler(stream)
        for owners in (["a", "b"], ["b"], ["a"], None):
            it = scheduler.new_fused_pass(1, owners=owners) if owners else scheduler.new_pass()
            for _ in it:
                pass
        assert scheduler.sweeps_used == 4
        scheduler.discard_owner("b")
        assert scheduler.sweeps_wasted == 1  # only the ["b"]-only sweep
        assert scheduler.sweeps_committed == 3
        scheduler.discard_owner("a")
        assert scheduler.sweeps_wasted == 3  # shared sweep now fully discarded
        assert scheduler.sweeps_committed == 1  # the untagged one

    def test_discard_is_idempotent(self):
        stream = InMemoryEdgeStream([(0, 1)])
        scheduler = PassScheduler(stream)
        for _ in scheduler.new_fused_pass(2, owners=["s"]):
            pass
        scheduler.discard_owner("s")
        scheduler.discard_owner("s")
        assert scheduler.sweeps_wasted == 1


class TestPairRunner:
    @pytest.mark.parametrize("fuse", [False, True])
    @pytest.mark.parametrize("mode,workers", [("python", 1), ("chunked", 1), ("chunked", 2)])
    def test_pair_results_bit_identical_to_solo_rounds(self, mode, workers, fuse):
        graph = barabasi_albert_graph(200, 4, random.Random(3))
        stream = _stream(graph)
        plan_a = _plan(graph, 4.0 * graph.num_edges)
        plan_b = _plan(graph, 2.0 * graph.num_edges)

        def rngs():
            return [random.Random(s) for s in (11, 12, 13)]

        with engine.engine_overrides(mode, 64, workers, fuse):
            solo_a = run_parallel_estimates(stream, plan_a, rngs())
            solo_b = run_parallel_estimates(stream, plan_b, rngs())
            pair = run_speculative_pair(
                stream, plan_a, rngs(), SpaceMeter(), plan_b, rngs(), SpaceMeter()
            )
        assert pair.primary == solo_a
        assert pair.speculative == solo_b
        # The pair's physical sweeps cover both rounds in the sweeps of
        # (at most) the larger round alone.
        assert pair.sweeps_used <= max(solo_a[0].sweeps_used, solo_b[0].sweeps_used) + 2
        assert pair.sweeps_used < solo_a[0].sweeps_used + solo_b[0].sweeps_used
        assert pair.sweeps_wasted == 0
        pair.discard_speculative()
        assert pair.sweeps_committed + pair.sweeps_wasted == pair.sweeps_used

    def test_pair_meters_match_solo_meters(self):
        graph = wheel_graph(150)
        stream = _stream(graph)
        plan_a = _plan(graph, 300.0)
        plan_b = _plan(graph, 150.0)
        with engine.engine_overrides("chunked", 64, 1, False):
            meter_a_solo, meter_b_solo = SpaceMeter(), SpaceMeter()
            run_parallel_estimates(
                stream, plan_a, [random.Random(1)], meter=meter_a_solo
            )
            run_parallel_estimates(
                stream, plan_b, [random.Random(2)], meter=meter_b_solo
            )
            meter_a, meter_b = SpaceMeter(), SpaceMeter()
            run_speculative_pair(
                stream,
                plan_a,
                [random.Random(1)],
                meter_a,
                plan_b,
                [random.Random(2)],
                meter_b,
            )
        assert meter_a.peak_words == meter_a_solo.peak_words
        assert meter_b.peak_words == meter_b_solo.peak_words


class TestWindowRunner:
    """The k-deep generalization: one shared sweep set, ``k`` rounds."""

    @pytest.mark.parametrize("depth", [3, 4])
    def test_window_results_bit_identical_to_solo_rounds(self, depth):
        graph = barabasi_albert_graph(200, 4, random.Random(3))
        stream = _stream(graph)
        plans = [_plan(graph, 4.0 * graph.num_edges / (2.0 ** j)) for j in range(depth)]

        def rngs():
            return [random.Random(s) for s in (11, 12, 13)]

        with engine.engine_overrides("chunked", 64, 1, False):
            solo = [run_parallel_estimates(stream, plan, rngs()) for plan in plans]
            window = run_speculative_window(
                stream, plans, [rngs() for _ in plans], [SpaceMeter() for _ in plans]
            )
        assert window.depth == depth
        for j in range(depth):
            assert window.results[j] == solo[j]
        # The window's physical sweeps cover every round in (at most) the
        # sweeps of the largest round alone, plus stragglers.
        assert window.sweeps_used < sum(r[0].sweeps_used for r in solo)
        assert window.sweeps_wasted == 0

    def test_discard_from_books_suffix_only(self):
        graph = barabasi_albert_graph(150, 4, random.Random(5))
        stream = _stream(graph)
        plans = [_plan(graph, 2.0 * graph.num_edges / (2.0 ** j)) for j in range(3)]
        window = run_speculative_window(
            stream,
            plans,
            [[random.Random(40 + j)] for j in range(3)],
            [SpaceMeter() for _ in range(3)],
        )
        window.discard_from(1)
        window.discard_from(1)  # idempotent
        assert window.sweeps_committed + window.sweeps_wasted == window.sweeps_used
        # Every sweep the primary round rode stays committed.
        assert window.sweeps_committed >= window.results[0][0].sweeps_used

    def test_window_pass_budget_scales_with_depth(self):
        graph = wheel_graph(100)
        stream = _stream(graph)
        plans = [_plan(graph, 400.0 / (2.0 ** j)) for j in range(4)]
        window = run_speculative_window(
            stream,
            plans,
            [[random.Random(j + 1)] for j in range(4)],
            [SpaceMeter() for _ in range(4)],
        )
        for j in range(4):
            assert window.results[j][0].passes_used <= 6

    def test_window_validates_alignment(self):
        graph = wheel_graph(20)
        stream = _stream(graph)
        plan = _plan(graph, 40.0)
        with pytest.raises(ValueError, match="align"):
            run_speculative_window(stream, [plan], [], [SpaceMeter()])
        with pytest.raises(ValueError, match="at least one round"):
            run_speculative_window(stream, [], [], [])


def _first_discard_instance():
    """A (graph, kappa, seed) whose speculative run discards a round.

    Deterministic: seeds are fixed; the scan just documents that the case
    was found rather than hand-picking magic numbers silently.
    """
    for seed in range(12):
        for n in (80, 160, 240, 320):
            graph = barabasi_albert_graph(n, 4, random.Random(seed))
            stream = _stream(graph, seed)
            result = TriangleCountEstimator(
                EstimatorConfig(seed=seed, repetitions=3, speculate=True)
            ).estimate(stream, kappa=4)
            if result.passes_wasted:
                return graph, 4, seed
    raise AssertionError("no discard instance found in the scanned families")


class TestDriverCommitDiscard:
    def test_multi_round_commit_halves_sweeps(self):
        graph = barabasi_albert_graph(400, 5, random.Random(1))
        stream = _stream(graph)
        base = dict(seed=7, repetitions=3)
        sequential = TriangleCountEstimator(
            EstimatorConfig(speculate=False, **base)
        ).estimate(stream, kappa=5)
        speculative = TriangleCountEstimator(
            EstimatorConfig(speculate=True, **base)
        ).estimate(stream, kappa=5)
        assert speculative.estimate == sequential.estimate
        assert len(speculative.rounds) == len(sequential.rounds) > 2
        assert speculative.passes_total == sequential.passes_total
        physical = speculative.sweeps_total + speculative.sweeps_wasted
        assert physical < sequential.sweeps_total

    def test_throttle_skips_speculation_when_acceptance_predicted(self):
        # The throttle's precondition is a *predictable* acceptance: the
        # round before the accepting one already had a median clearing the
        # accepting round's bar.  On such trajectories nothing may be
        # discarded - the final round must have run solo.
        checked = 0
        for seed in range(10):
            graph = barabasi_albert_graph(300, 5, random.Random(seed))
            stream = _stream(graph, seed)
            sequential = TriangleCountEstimator(
                EstimatorConfig(seed=seed, repetitions=3, speculate=False)
            ).estimate(stream, kappa=5)
            if len(sequential.rounds) < 3 or not sequential.rounds[-1].accepted:
                continue
            predicted = (
                sequential.rounds[-2].median_estimate
                >= sequential.rounds[-1].t_guess / 2.0
            )
            if not predicted:
                continue
            speculative = TriangleCountEstimator(
                EstimatorConfig(seed=seed, repetitions=3, speculate=True)
            ).estimate(stream, kappa=5)
            assert speculative.estimate == sequential.estimate
            assert speculative.passes_wasted == 0, seed
            assert speculative.sweeps_wasted == 0, seed
            checked += 1
        assert checked > 0, "no predictable-acceptance trajectory in the scan"

    def test_surprise_acceptance_discards_and_stays_identical(self):
        graph, kappa, seed = _first_discard_instance()
        stream = _stream(graph, seed)
        base = dict(seed=seed, repetitions=3)
        sequential = TriangleCountEstimator(
            EstimatorConfig(speculate=False, **base)
        ).estimate(stream, kappa=kappa)
        speculative = TriangleCountEstimator(
            EstimatorConfig(speculate=True, **base)
        ).estimate(stream, kappa=kappa)
        # The discarded round leaves no trace in the committed outcome...
        assert speculative.estimate == sequential.estimate
        assert [r.t_guess for r in speculative.rounds] == [
            r.t_guess for r in sequential.rounds
        ]
        assert speculative.passes_total == sequential.passes_total
        # ...but its executed work is booked as waste.
        assert speculative.passes_wasted > 0
        assert (
            speculative.sweeps_total + speculative.sweeps_wasted
            <= sequential.sweeps_total
        )

    def test_speculation_disengages_under_space_budget(self):
        graph = wheel_graph(200)
        stream = _stream(graph)
        budget = 10_000_000  # generous: the run must succeed, sequentially
        result = TriangleCountEstimator(
            EstimatorConfig(
                seed=3, repetitions=3, speculate=True, space_budget_words=budget
            )
        ).estimate(stream, kappa=3)
        sequential = TriangleCountEstimator(
            EstimatorConfig(
                seed=3, repetitions=3, speculate=False, space_budget_words=budget
            )
        ).estimate(stream, kappa=3)
        assert result.estimate == sequential.estimate
        assert result.sweeps_total == sequential.sweeps_total  # no pairing
        assert result.sweeps_wasted == 0

    @pytest.mark.parametrize("depth", [3, 4])
    def test_deep_windows_stay_identical_and_save_sweeps(self, depth):
        graph = barabasi_albert_graph(400, 5, random.Random(1))
        stream = _stream(graph)
        base = dict(seed=7, repetitions=3)
        sequential = TriangleCountEstimator(
            EstimatorConfig(speculate=False, **base)
        ).estimate(stream, kappa=5)
        pair = TriangleCountEstimator(
            EstimatorConfig(speculate=True, speculate_depth=2, **base)
        ).estimate(stream, kappa=5)
        deep = TriangleCountEstimator(
            EstimatorConfig(speculate=True, speculate_depth=depth, **base)
        ).estimate(stream, kappa=5)
        assert deep.estimate == sequential.estimate
        assert [r.t_guess for r in deep.rounds] == [r.t_guess for r in sequential.rounds]
        assert [r.median_estimate for r in deep.rounds] == [
            r.median_estimate for r in sequential.rounds
        ]
        assert deep.passes_total == sequential.passes_total
        # Deeper windows commit the same rounds in fewer physical sweeps.
        deep_physical = deep.sweeps_total + deep.sweeps_wasted
        pair_physical = pair.sweeps_total + pair.sweeps_wasted
        assert deep_physical <= pair_physical < sequential.sweeps_total

    def test_depth_two_reproduces_the_pair_driver(self):
        # speculate_depth=2 must be today's round-pair driver bit-for-bit:
        # same committed outcome *and* same accounting split.
        graph = barabasi_albert_graph(300, 4, random.Random(2))
        stream = _stream(graph)
        base = dict(seed=11, repetitions=3, speculate=True)
        default = TriangleCountEstimator(EstimatorConfig(**base)).estimate(
            stream, kappa=4
        )
        explicit = TriangleCountEstimator(
            EstimatorConfig(speculate_depth=2, **base)
        ).estimate(stream, kappa=4)
        assert default.estimate == explicit.estimate
        assert default.sweeps_total == explicit.sweeps_total
        assert default.sweeps_wasted == explicit.sweeps_wasted
        assert default.passes_total == explicit.passes_total
        assert default.passes_wasted == explicit.passes_wasted

    def test_waste_cap_never_speculates_past_predicted_acceptance(self):
        # The expected-waste cap clips every window at the first upcoming
        # guess the previous median already clears.  On trajectories where
        # (a) the first, prediction-less window commits whole (at least
        # ``depth`` rejecting rounds before the acceptance) and (b) every
        # committed median clears the accepting round's bar, no window can
        # extend past the accepting round - nothing may be discarded.
        depth = 3
        checked = 0
        for seed, n, mdeg in ((1, 600, 6), (2, 500, 5), (6, 400, 4), (11, 300, 5)):
            graph = barabasi_albert_graph(n, mdeg, random.Random(seed))
            stream = _stream(graph, seed)
            sequential = TriangleCountEstimator(
                EstimatorConfig(seed=seed, repetitions=3, speculate=False)
            ).estimate(stream, kappa=mdeg)
            rounds = sequential.rounds
            if len(rounds) < depth + 1 or not rounds[-1].accepted:
                continue
            final_bar = rounds[-1].t_guess / 2.0
            if not all(r.median_estimate >= final_bar for r in rounds[:-1]):
                continue
            deep = TriangleCountEstimator(
                EstimatorConfig(
                    seed=seed, repetitions=3, speculate=True, speculate_depth=depth
                )
            ).estimate(stream, kappa=mdeg)
            assert deep.estimate == sequential.estimate
            assert deep.passes_wasted == 0, seed
            assert deep.sweeps_wasted == 0, seed
            checked += 1
        assert checked > 0, "no qualifying trajectory in the scan"

    def test_t_hint_single_round_never_speculates(self):
        graph = wheel_graph(120)
        stream = _stream(graph)
        t = float(count_triangles(graph))
        result = TriangleCountEstimator(
            EstimatorConfig(seed=1, repetitions=3, speculate=True, t_hint=t)
        ).estimate(stream, kappa=3)
        assert len(result.rounds) == 1
        assert result.sweeps_wasted == 0
        assert result.passes_wasted == 0


class TestKnobPlumbing:
    def test_env_initial_speculate(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECULATE", "1")
        assert engine._initial_speculate() is True
        monkeypatch.setenv("REPRO_SPECULATE", "off")
        assert engine._initial_speculate() is False
        monkeypatch.delenv("REPRO_SPECULATE")
        assert engine._initial_speculate() is False

    def test_engine_overrides_restores_speculate(self):
        before = engine.speculate()
        with engine.engine_overrides(speculative=True):
            assert engine.speculate() is True
            with engine.engine_overrides(speculative=False):
                assert engine.speculate() is False
            assert engine.speculate() is True
        assert engine.speculate() is before

    def test_set_engine_speculative(self):
        saved = (engine.engine_mode(), engine.speculate())
        try:
            engine.set_engine("python", speculative=True)
            assert engine.speculate() is True
        finally:
            engine.set_engine(saved[0], speculative=saved[1])

    def test_config_field_default_and_validation(self):
        assert EstimatorConfig().speculate is None
        assert EstimatorConfig(speculate=True).speculate is True

    def test_env_depth_alone_implies_speculation(self, monkeypatch):
        # Asking for a depth is asking to speculate - at the environment
        # entry point too.  An explicit REPRO_SPECULATE always wins.
        monkeypatch.delenv("REPRO_SPECULATE", raising=False)
        monkeypatch.setenv("REPRO_SPECULATE_DEPTH", "3")
        assert engine._initial_speculate() is True
        monkeypatch.setenv("REPRO_SPECULATE", "0")
        assert engine._initial_speculate() is False
        monkeypatch.setenv("REPRO_SPECULATE_DEPTH", "1")  # invalid depth
        monkeypatch.delenv("REPRO_SPECULATE")
        assert engine._initial_speculate() is False

    def test_config_depth_alone_implies_speculation(self):
        graph = barabasi_albert_graph(300, 4, random.Random(2))
        stream = _stream(graph)
        base = dict(seed=11, repetitions=3)
        sequential = TriangleCountEstimator(
            EstimatorConfig(speculate=False, **base)
        ).estimate(stream, kappa=4)
        implied = TriangleCountEstimator(
            EstimatorConfig(speculate_depth=3, **base)
        ).estimate(stream, kappa=4)
        assert implied.estimate == sequential.estimate
        implied_physical = implied.sweeps_total + implied.sweeps_wasted
        assert implied_physical < sequential.sweeps_total

    def test_env_initial_speculate_depth(self, monkeypatch):
        monkeypatch.setenv("REPRO_SPECULATE_DEPTH", "4")
        assert engine._initial_speculate_depth() == 4
        monkeypatch.setenv("REPRO_SPECULATE_DEPTH", "1")  # below the floor
        assert engine._initial_speculate_depth() == engine.DEFAULT_SPECULATE_DEPTH
        monkeypatch.setenv("REPRO_SPECULATE_DEPTH", "nope")
        assert engine._initial_speculate_depth() == engine.DEFAULT_SPECULATE_DEPTH
        monkeypatch.delenv("REPRO_SPECULATE_DEPTH")
        assert engine._initial_speculate_depth() == engine.DEFAULT_SPECULATE_DEPTH

    def test_engine_overrides_restores_speculate_depth(self):
        before = engine.speculate_depth()
        with engine.engine_overrides(speculate_depth=5):
            assert engine.speculate_depth() == 5
            with engine.engine_overrides(speculate_depth=3):
                assert engine.speculate_depth() == 3
            assert engine.speculate_depth() == 5
        assert engine.speculate_depth() == before

    def test_set_engine_depth_alone_implies_speculation(self):
        saved = (engine.engine_mode(), engine.speculate(), engine.speculate_depth())
        try:
            engine.set_engine("python", speculative=False)
            engine.set_engine("python", speculate_depth=3)
            assert engine.speculate() is True
            assert engine.speculate_depth() == 3
            # An explicit speculative argument always wins over the implication.
            engine.set_engine("python", speculative=False, speculate_depth=4)
            assert engine.speculate() is False
            assert engine.speculate_depth() == 4
        finally:
            engine.set_engine(saved[0], speculative=saved[1], speculate_depth=saved[2])

    def test_depth_validation(self):
        from repro.errors import ParameterError

        with pytest.raises(ParameterError, match="speculate_depth"):
            EstimatorConfig(speculate_depth=1)
        with pytest.raises(ParameterError, match="depth"):
            engine.set_engine("python", speculate_depth=0)
        # A rejected call leaves the policy untouched.
        assert engine.speculate_depth() >= 2

    def test_pass_budget_allows_the_fused_pair(self):
        # A pair charges both rounds' logical passes against one scheduler;
        # the 12-pass pair budget must admit two full 6-pass rounds.
        graph = wheel_graph(100)
        stream = _stream(graph)
        plan_a = _plan(graph, 200.0)
        plan_b = _plan(graph, 100.0)
        pair = run_speculative_pair(
            stream,
            plan_a,
            [random.Random(1)],
            SpaceMeter(),
            plan_b,
            [random.Random(2)],
            SpaceMeter(),
        )
        assert pair.primary[0].passes_used <= 6
        assert pair.speculative[0].passes_used <= 6


class TestOwnersTags:
    def test_pair_tags_are_the_module_constants(self):
        assert PRIMARY != SPECULATIVE

    def test_interleaved_pass_still_rejected(self):
        stream = InMemoryEdgeStream([(0, 1), (1, 2)])
        scheduler = PassScheduler(stream)
        it = scheduler.new_fused_pass(2, owners=["x", "y"])
        next(it)
        with pytest.raises(StreamError):
            scheduler.new_pass()
        it.close()
