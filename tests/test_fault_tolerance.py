"""Fault-tolerant execution layer: retry, recovery, and degradation.

Three layers under test, all driven by the deterministic injection
harness in :mod:`repro.core.faults`:

* **Plumbing** - `FaultPlan` spec parsing, `RetryPolicy` determinism,
  environment knobs (`REPRO_FAULTS`, `REPRO_MAX_RETRIES`,
  `REPRO_TASK_TIMEOUT`).
* **Recovery invariant** - an estimate that suffers injected faults but
  recovers (retries, pool rebuilds, transport fallbacks) returns results
  *bit-identical* to the fault-free run: estimates, guessing trajectory,
  logical-pass totals, and the root generator's final state.
* **Degradation ladder** - when retries exhaust, the run drops a tier
  (sharded->serial, shm->pickle, prefetch->sync, mmap tape->text twin,
  speculative->sequential)
  instead of failing, records each step on
  ``EstimateResult.degradations``, and still produces identical numbers.

The fast subset runs in tier 1 with one fault per site; the full
fault x engine product is behind the ``slow`` marker.
"""

from __future__ import annotations

import random

import pytest

import repro.core.driver as driver_module
from repro import EstimatorConfig, TriangleCountEstimator
from repro.core import faults
from repro.core.faults import FaultPlan, RetryPolicy
from repro.errors import ParameterError, StreamReadError
from repro.generators import barabasi_albert_graph
from repro.io import write_edgelist
from repro.streams import InMemoryEdgeStream, write_tape
from repro.streams.file import FileEdgeStream
from repro.streams.tape import MmapEdgeStream, mmap_enabled


# ---------------------------------------------------------------------------
# plumbing: FaultPlan / RetryPolicy / env knobs


class TestFaultPlan:
    def test_parse_bare_site_means_first_occurrence(self):
        plan = FaultPlan.parse("worker.crash")
        assert plan.fires(faults.WORKER_CRASH)
        assert not plan.fires(faults.WORKER_CRASH)

    def test_parse_indices_and_merging(self):
        plan = FaultPlan.parse("sweep.mid_stage@1,3;sweep.mid_stage@5")
        fired = [plan.fires(faults.SWEEP_MID_STAGE) for _ in range(7)]
        assert fired == [False, True, False, True, False, True, False]

    def test_parse_multiple_sites_count_independently(self):
        plan = FaultPlan.parse("worker.crash@0;shm.attach@1")
        assert plan.fires(faults.WORKER_CRASH)
        assert not plan.fires(faults.SHM_ATTACH)
        assert plan.fires(faults.SHM_ATTACH)

    def test_reset_rearms_consumed_events(self):
        plan = FaultPlan.parse("file.read@0")
        assert plan.fires(faults.FILE_READ)
        plan.reset()
        assert plan.fires(faults.FILE_READ)

    @pytest.mark.parametrize(
        "spec", ["bogus.site", "worker.crash@x", "worker.crash@-1"]
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ParameterError):
            FaultPlan.parse(spec)

    def test_config_validates_fault_spec_eagerly(self):
        with pytest.raises(ParameterError):
            EstimatorConfig(faults="no.such.site@1")


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_exponential(self):
        policy = RetryPolicy(max_attempts=4, backoff_base=0.01, jitter_seed=9)
        delays = [policy.backoff_delay(k) for k in (1, 2, 3)]
        assert delays == [policy.backoff_delay(k) for k in (1, 2, 3)]
        assert 0.01 <= delays[0] <= 0.0125
        assert 0.02 <= delays[1] <= 0.025
        assert 0.04 <= delays[2] <= 0.05

    def test_zero_base_means_no_sleeping(self):
        assert RetryPolicy(backoff_base=0.0).backoff_delay(3) == 0.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ParameterError):
            RetryPolicy(timeout=0.0)

    def test_policy_from_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "2.5")
        policy = faults.policy_from_env()
        assert policy.max_attempts == 6
        assert policy.retries == 5
        assert policy.timeout == 2.5

    def test_policy_from_env_rejects_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "many")
        with pytest.raises(ParameterError):
            faults.policy_from_env()
        monkeypatch.setenv("REPRO_MAX_RETRIES", "2")
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        with pytest.raises(ParameterError):
            faults.policy_from_env()

    def test_config_overrides_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        assert faults.policy_from_env(max_retries=1).max_attempts == 2


# ---------------------------------------------------------------------------
# shared fixtures: a file tape big enough for multiple tasks per sweep


@pytest.fixture(scope="module")
def tape(tmp_path_factory):
    graph = barabasi_albert_graph(250, 4, random.Random(1))
    path = tmp_path_factory.mktemp("faults") / "tape.edges"
    write_edgelist(graph, path)
    return str(path)


@pytest.fixture(scope="module")
def etape(tape, tmp_path_factory):
    """The binary twin of ``tape``: identical edge sequence, mmap path."""
    path = tmp_path_factory.mktemp("faults_bin") / "tape.etape"
    write_tape(tape, path)
    return str(path)


def _run(stream, cfg, kappa=4):
    """Estimate with the root generator's final state captured."""
    captured = []
    real_make_rng = driver_module.make_rng

    def recording_make_rng(seed):
        rng = real_make_rng(seed)
        captured.append(rng)
        return rng

    driver_module.make_rng = recording_make_rng
    try:
        result = TriangleCountEstimator(cfg).estimate(stream, kappa=kappa)
    finally:
        driver_module.make_rng = real_make_rng
    assert captured, "driver never built the root generator"
    return result, captured[-1].getstate()


def _trajectory(result):
    return [(r.t_guess, r.median_estimate, r.accepted) for r in result.rounds]


def _assert_bit_identical(clean, faulted):
    clean_result, clean_root = clean
    fault_result, fault_root = faulted
    assert fault_result.estimate == clean_result.estimate
    assert _trajectory(fault_result) == _trajectory(clean_result)
    assert fault_result.passes_total == clean_result.passes_total
    assert fault_root == clean_root


# ---------------------------------------------------------------------------
# the recovery invariant: injected faults, recovered, bit-identical


class TestRecoveryBitIdentity:
    def test_canonical_run_recovers_bit_identically(self, tape, monkeypatch):
        """The PR's acceptance scenario: a file-backed multi-round estimate
        at workers=2, fused, speculate_depth=3, with a worker crash, an shm
        attach failure, and a mid-sweep stream error injected in distinct
        places - completing without error and bit-identical to the clean
        run, with no tier degraded (retries recovered everything)."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=3,
            repetitions=3,
            engine_mode="sharded",
            workers=2,
            chunk_size=64,
            fuse=True,
            speculate=True,
            speculate_depth=3,
        )
        stream = FileEdgeStream(tape)
        stream.stats()  # prime the cache: the stats pass is not under test
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream,
            EstimatorConfig(
                **base, faults="worker.crash@1;shm.attach@3;sweep.mid_stage@2"
            ),
        )
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()

    def test_faults_env_knob_reaches_the_driver(self, tape, monkeypatch):
        stream = FileEdgeStream(tape)
        stream.stats()
        base = dict(seed=2, repetitions=3, engine_mode="chunked", workers=1)
        clean = _run(stream, EstimatorConfig(**base))
        monkeypatch.setenv("REPRO_FAULTS", "sweep.mid_stage@1")
        faulted = _run(stream, EstimatorConfig(**base))
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()

    @pytest.mark.parametrize(
        "fuse,depth,spec",
        [
            (False, 1, "sweep.mid_stage@1"),
            (True, 1, "file.read@2"),
            (True, 3, "sweep.mid_stage@2"),
            (False, 3, "file.read@3"),
        ],
    )
    def test_serial_parity_under_single_fault(self, tape, fuse, depth, spec):
        """Fast subset of the parity-under-failure matrix: serial engines,
        one fault per applicable site, retries recover, results identical."""
        stream = FileEdgeStream(tape)
        stream.stats()
        base = dict(
            seed=11,
            repetitions=3,
            engine_mode="chunked",
            workers=1,
            fuse=fuse,
            speculate=depth >= 2,
            speculate_depth=depth if depth >= 2 else None,
        )
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(stream, EstimatorConfig(**base, faults=spec))
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()

    def test_task_timeout_recovers_on_a_fresh_pool(self, tape, monkeypatch):
        """A hung worker (injected ``task.timeout``) trips the per-task
        deadline; the pool is killed and rebuilt and the task retried.
        Recovery may or may not need to drop the sharded tier depending on
        machine speed - either way the numbers must match the clean run."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 256)
        base = dict(
            seed=5, repetitions=3, engine_mode="sharded", workers=2, chunk_size=256
        )
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream,
            EstimatorConfig(**base, faults="task.timeout@0", task_timeout=5.0),
        )
        _assert_bit_identical(clean, faulted)

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("fuse", [False, True])
    @pytest.mark.parametrize("depth", [1, 3])
    @pytest.mark.parametrize(
        "spec",
        [
            "sweep.mid_stage@1",
            "file.read@2",
            "worker.crash@1",
            "shm.attach@2",
            "task.timeout@0",
        ],
    )
    def test_full_parity_matrix(self, tape, monkeypatch, workers, fuse, depth, spec):
        site = spec.split("@")[0]
        if workers == 1 and site in ("worker.crash", "shm.attach", "task.timeout"):
            pytest.skip("pool-only fault site")
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=13,
            repetitions=3,
            engine_mode="sharded" if workers > 1 else "chunked",
            workers=workers,
            chunk_size=64,
            fuse=fuse,
            speculate=depth >= 2,
            speculate_depth=depth if depth >= 2 else None,
            task_timeout=5.0 if site == "task.timeout" else None,
        )
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(stream, EstimatorConfig(**base, faults=spec))
        _assert_bit_identical(clean, faulted)


# ---------------------------------------------------------------------------
# the degradation ladder: retries exhausted, tier dropped, run completes


class TestDegradationLadder:
    def test_worker_crashes_degrade_to_serial(self, tape, monkeypatch):
        """With retries disabled every crash exhausts immediately: the
        sweep finishes in-process (sharded->serial), the result matches
        the clean run, and the report names the site and cause."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=7, repetitions=3, engine_mode="sharded", workers=2, chunk_size=64
        )
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream, EstimatorConfig(**base, faults="worker.crash@0", max_retries=0)
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_SERIAL]
        assert reports[0].site == faults.WORKER_CRASH
        assert reports[0].attempts == 1
        assert reports[0].cause

    def test_engine_survives_pool_poisoning(self, tape, monkeypatch):
        """Satellite bugfix: a BrokenProcessPool must not poison the cached
        pool.  After a crash-degraded estimate, the broken pool is out of
        the cache and the next sharded estimate runs clean."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=7, repetitions=3, engine_mode="sharded", workers=2, chunk_size=64
        )
        stream = FileEdgeStream(tape)
        stream.stats()
        broken = executor._get_pool(2)
        faulted = _run(
            stream, EstimatorConfig(**base, faults="worker.crash@0", max_retries=0)
        )
        assert faulted[0].degradations  # the crash really was injected
        assert executor._POOLS.get(2) is not broken
        clean_after = _run(stream, EstimatorConfig(**base))
        _assert_bit_identical(clean_after, faulted)
        assert clean_after[0].degradations == ()

    def test_shm_failure_degrades_to_pickled_blocks(self, tape, monkeypatch):
        pytest.importorskip("numpy")
        from repro.core import executor
        from repro.streams import shm

        if not shm.shm_enabled():
            pytest.skip("shared-memory transport disabled on this platform")
        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=7, repetitions=3, engine_mode="sharded", workers=2, chunk_size=64
        )
        stream = FileEdgeStream(tape)
        stream.stats()
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream, EstimatorConfig(**base, faults="shm.attach@0", max_retries=0)
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_PICKLE]
        assert reports[0].site == faults.SHM_ATTACH
        # The degradation was scoped to the failing estimate: the recovery
        # scope re-enabled the transport on exit.
        assert shm.shm_enabled()

    def test_file_read_failure_degrades_prefetch(self, tape):
        stream = FileEdgeStream(tape)
        stream.stats()
        base = dict(seed=9, repetitions=3, engine_mode="chunked", workers=1)
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream, EstimatorConfig(**base, faults="file.read@0", max_retries=0)
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_SYNC_READS]
        assert reports[0].site == faults.FILE_READ
        from repro.streams import file as file_module

        assert file_module.prefetch_enabled()

    def test_sweep_faults_degrade_speculation(self):
        """Three consecutive mid-sweep faults exhaust the default retry
        budget; the ladder falls back to the sequential guessing loop and
        the trajectory stays bit-identical (speculation invariant)."""
        graph = barabasi_albert_graph(220, 4, random.Random(2))
        stream = InMemoryEdgeStream.from_graph(graph)
        base = dict(
            seed=4,
            repetitions=3,
            engine_mode="chunked",
            speculate=True,
            speculate_depth=3,
        )
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream, EstimatorConfig(**base, faults="sweep.mid_stage@0,1,2")
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_SEQUENTIAL]
        assert reports[0].attempts == 3

    def test_persistent_faults_walk_multiple_tiers(self, tape):
        """One run can need several ladder steps; each is recorded in the
        order taken and the run still completes with clean-run numbers."""
        stream = FileEdgeStream(tape)
        stream.stats()
        base = dict(
            seed=6,
            repetitions=3,
            engine_mode="chunked",
            workers=1,
            speculate=True,
            speculate_depth=3,
        )
        clean = _run(stream, EstimatorConfig(**base))
        faulted = _run(
            stream,
            EstimatorConfig(
                **base, faults="file.read@0;sweep.mid_stage@1", max_retries=0
            ),
        )
        _assert_bit_identical(clean, faulted)
        actions = [r.action for r in faulted[0].degradations]
        assert actions == [faults.ACTION_SYNC_READS, faults.ACTION_SEQUENTIAL]

    def test_no_tier_left_propagates_the_failure(self):
        """A persistent serial failure with nothing to degrade must still
        fail loudly - the ladder never silently swallows a fault."""
        graph = barabasi_albert_graph(120, 4, random.Random(5))
        stream = InMemoryEdgeStream.from_graph(graph)
        spec = "sweep.mid_stage@" + ",".join(str(i) for i in range(64))
        cfg = EstimatorConfig(
            seed=1, repetitions=2, engine_mode="chunked", faults=spec, max_retries=0
        )
        with pytest.raises(StreamReadError, match="injected"):
            TriangleCountEstimator(cfg).estimate(stream, kappa=4)


# ---------------------------------------------------------------------------
# the mmap tape tier: file.read fires on the mapped path, and the ladder
# degrades mmap->text when the tape has a registered text twin


class TestMmapTapeFaults:
    def test_read_fault_on_mmap_path_recovers_bit_identically(self, tape, etape):
        """``file.read`` fires per yielded chunk on the mapped payload too;
        a transient fault retries and the estimate matches the clean tape
        run exactly, with no tier degraded."""
        base = dict(seed=9, repetitions=3, engine_mode="chunked", workers=1)
        clean = _run(MmapEdgeStream(etape), EstimatorConfig(**base))
        faulted = _run(
            MmapEdgeStream(etape), EstimatorConfig(**base, faults="file.read@1")
        )
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()

    def test_exhausted_read_fault_degrades_to_text_twin(self, tape, etape):
        """Retries disabled: the first fault exhausts the budget, the ladder
        drops the mmap tier, the pass replays against the registered text
        twin, and the numbers still match the clean run bit-for-bit."""
        base = dict(seed=9, repetitions=3, engine_mode="chunked", workers=1)
        clean = _run(MmapEdgeStream(etape), EstimatorConfig(**base))
        faulted = _run(
            MmapEdgeStream(etape, text_twin=tape),
            EstimatorConfig(**base, faults="file.read@0", max_retries=0),
        )
        _assert_bit_identical(clean, faulted)
        reports = faulted[0].degradations
        assert [r.action for r in reports] == [faults.ACTION_TEXT]
        assert reports[0].site == faults.FILE_READ
        # The degradation was scoped to the failing estimate: the recovery
        # scope restored the mmap tier on exit.
        assert mmap_enabled()

    def test_text_parity_with_degraded_and_clean_text_run(self, tape, etape):
        """The degraded run equals a straight text run too - the twin is
        read through the very same parser."""
        base = dict(seed=2, repetitions=3, engine_mode="chunked", workers=1)
        text = _run(FileEdgeStream(tape), EstimatorConfig(**base))
        degraded = _run(
            MmapEdgeStream(etape, text_twin=tape),
            EstimatorConfig(**base, faults="file.read@0", max_retries=0),
        )
        _assert_bit_identical(text, degraded)

    def test_truncated_tape_mid_run_degrades_to_twin(self, tape, etape, tmp_path):
        """A tape truncated underneath a running estimate surfaces as a
        typed TapeFormatError from the per-pass intactness check; with a
        twin registered the run completes bit-identically to the clean
        run instead of scanning garbage."""
        import shutil

        base = dict(seed=9, repetitions=3, engine_mode="chunked", workers=1)
        clean = _run(MmapEdgeStream(etape), EstimatorConfig(**base))
        import os

        local = tmp_path / "mutable.etape"
        shutil.copy(etape, local)
        stream = MmapEdgeStream(local, text_twin=tape)
        with open(local, "r+b") as handle:
            handle.truncate(os.path.getsize(local) - 16)
        faulted = _run(stream, EstimatorConfig(**base, max_retries=0))
        _assert_bit_identical(clean, faulted)
        assert faults.ACTION_TEXT in [r.action for r in faulted[0].degradations]
        assert mmap_enabled()

    def test_no_twin_leaves_nothing_to_degrade_to(self, etape):
        """Without a registered twin the mmap stream has no fallback tier:
        a persistent read fault must propagate, never be swallowed."""
        spec = "file.read@" + ",".join(str(i) for i in range(64))
        cfg = EstimatorConfig(
            seed=1, repetitions=2, engine_mode="chunked", faults=spec, max_retries=0
        )
        with pytest.raises(StreamReadError, match="injected"):
            TriangleCountEstimator(cfg).estimate(MmapEdgeStream(etape), kappa=4)
        assert mmap_enabled()

    def test_sharded_descriptor_transport_recovers_from_crash(
        self, tape, etape, monkeypatch
    ):
        """Sharded tasks over a tape ship ``(path, start, rows)`` descriptors;
        a worker crash retries on a rebuilt pool and the result stays
        bit-identical to the clean sharded tape run."""
        pytest.importorskip("numpy")
        from repro.core import executor

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        base = dict(
            seed=3, repetitions=3, engine_mode="sharded", workers=2, chunk_size=64
        )
        clean = _run(MmapEdgeStream(etape), EstimatorConfig(**base))
        faulted = _run(
            MmapEdgeStream(etape), EstimatorConfig(**base, faults="worker.crash@1")
        )
        _assert_bit_identical(clean, faulted)
        assert faulted[0].degradations == ()


# ---------------------------------------------------------------------------
# executor-level retry: partials bit-identical without the driver on top


class TestExecutorRetry:
    def test_retried_partials_match_first_try(self, tape, monkeypatch):
        pytest.importorskip("numpy")
        import numpy

        from repro.core import executor
        from repro.core.kernels import DegreeCountPlan
        from repro.streams.multipass import PassScheduler

        monkeypatch.setattr(executor, "TASK_ROWS_FLOOR", 64)
        stream = FileEdgeStream(tape)
        stream.stats()
        tracked = numpy.arange(120, dtype=numpy.int64)

        def degree_counts(spec):
            scheduler = PassScheduler(stream)
            return executor.run_plan(
                scheduler, DegreeCountPlan(tracked), chunk_size=64, workers=2
            )

        clean = degree_counts(None)
        with faults.fault_scope("worker.crash@1"):
            retried = degree_counts(None)
        assert numpy.array_equal(clean, retried)
