"""Tests for repro.graph.triangles: exact counters and the assignment rule."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    book_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_gnm,
    friendship_graph,
    triangulated_grid_graph,
    wheel_graph,
)
from repro.graph import (
    Graph,
    count_triangles,
    count_triangles_node_iterator,
    enumerate_triangles,
    min_te_assignment,
    per_edge_triangle_counts,
    per_vertex_triangle_counts,
    triangle_statistics,
    triangles_through_edge,
)
from repro.graph.validation import crosscheck_triangles
from repro.types import triangle_edges


def _comb3(n: int) -> int:
    return n * (n - 1) * (n - 2) // 6


class TestClosedForms:
    def test_empty(self):
        assert count_triangles(Graph()) == 0

    def test_triangle_free_cycle(self, c6):
        assert count_triangles(c6) == 0

    @pytest.mark.parametrize("n", [3, 4, 6, 9])
    def test_clique(self, n):
        assert count_triangles(complete_graph(n)) == _comb3(n)

    @pytest.mark.parametrize("n", [5, 10, 40])
    def test_wheel(self, n):
        assert count_triangles(wheel_graph(n)) == n - 1

    def test_wheel4_is_k4(self):
        assert count_triangles(wheel_graph(4)) == 4

    @pytest.mark.parametrize("pages", [1, 5, 20])
    def test_book(self, pages):
        assert count_triangles(book_graph(pages)) == pages

    @pytest.mark.parametrize("blades", [1, 4, 12])
    def test_friendship(self, blades):
        assert count_triangles(friendship_graph(blades)) == blades

    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 5), (6, 6)])
    def test_triangulated_grid(self, rows, cols):
        assert count_triangles(triangulated_grid_graph(rows, cols)) == 2 * (rows - 1) * (cols - 1)


class TestCrossChecks:
    def test_three_counters_agree(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            a = count_triangles(g)
            b = count_triangles_node_iterator(g)
            c = sum(1 for _ in enumerate_triangles(g))
            assert a == b == c, name

    def test_against_networkx(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            ours, theirs = crosscheck_triangles(g)
            assert ours == theirs, name

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_against_networkx(self, seed):
        g = erdos_renyi_gnm(50, 220, random.Random(seed))
        ours, theirs = crosscheck_triangles(g)
        assert ours == theirs

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)).filter(lambda p: p[0] != p[1]),
            max_size=40,
        )
    )
    def test_hypothesis_counters_agree(self, raw_edges):
        edges = list({(min(u, v), max(u, v)) for u, v in raw_edges})
        g = Graph(edges=edges)
        assert count_triangles(g) == count_triangles_node_iterator(g)
        assert count_triangles(g) == sum(1 for _ in enumerate_triangles(g))


class TestEnumeration:
    def test_yields_canonical_distinct(self, wheel10):
        triangles = list(enumerate_triangles(wheel10))
        assert len(triangles) == len(set(triangles))
        for a, b, c in triangles:
            assert a < b < c

    def test_all_enumerated_are_real(self, grid4):
        for t in enumerate_triangles(grid4):
            for u, v in triangle_edges(t):
                assert grid4.has_edge(u, v)


class TestPerElementCounts:
    def test_te_on_book(self, book8):
        te = per_edge_triangle_counts(book8)
        assert te[(0, 1)] == 8  # spine
        page_edges = [e for e in te if e != (0, 1)]
        assert all(te[e] == 1 for e in page_edges)

    def test_te_sums_to_3T(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            te = per_edge_triangle_counts(g)
            assert sum(te.values()) == 3 * count_triangles(g), name

    def test_te_matches_single_edge_query(self, grid4):
        te = per_edge_triangle_counts(grid4)
        for e in grid4.edges():
            assert te[e] == triangles_through_edge(grid4, e)

    def test_per_vertex_sums_to_3T(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            tv = per_vertex_triangle_counts(g)
            assert sum(tv.values()) == 3 * count_triangles(g), name

    def test_per_vertex_on_friendship(self, friendship6):
        tv = per_vertex_triangle_counts(friendship6)
        assert tv[0] == 6  # the shared center
        assert all(tv[v] == 1 for v in friendship6.vertices() if v != 0)


class TestAssignmentRule:
    def test_every_triangle_assigned_to_own_edge(self, wheel10):
        assignment = min_te_assignment(wheel10)
        assert len(assignment) == count_triangles(wheel10)
        for t, e in assignment.items():
            assert e in triangle_edges(t)

    def test_book_assigns_to_page_edges(self, book8):
        # The spine has t_e = 8, pages have t_e = 1: the rule must avoid the
        # spine entirely - the exact property that tames the variance.
        assignment = min_te_assignment(book8)
        assert all(e != (0, 1) for e in assignment.values())

    def test_assignment_deterministic(self, grid4):
        assert min_te_assignment(grid4) == min_te_assignment(grid4)

    def test_statistics_consistency(self, all_fixture_graphs):
        for name, g in all_fixture_graphs.items():
            stats = triangle_statistics(g)
            assert stats.triangle_count == count_triangles(g), name
            assert stats.total_assigned == stats.triangle_count, name
            assert stats.max_te == max(stats.per_edge.values(), default=0), name
            assert stats.max_assigned <= stats.max_te, name

    def test_book_max_assigned_is_one(self, book8):
        # Pages absorb one triangle each; tau_max = 1 despite max t_e = 8.
        stats = triangle_statistics(book8)
        assert stats.max_te == 8
        assert stats.max_assigned == 1

    def test_assigned_tau_max_bounded_by_kappa_like_quantity(self, ba_small):
        # Eden et al. / paper Section 1.2: the min-t_e rule keeps tau_max
        # O(kappa).  Empirically check a generous 3*kappa + 3 envelope.
        from repro.graph import degeneracy

        stats = triangle_statistics(ba_small)
        assert stats.max_assigned <= 3 * degeneracy(ba_small) + 3
