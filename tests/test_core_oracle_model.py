"""Tests for Section 4: DegreeOracle and Algorithm 1 (IdealEstimator)."""

from __future__ import annotations

import random

import pytest

from repro.analysis.variance import empirical_moments, ideal_estimator_variance_bound
from repro.core import DegreeOracle, IdealEstimator
from repro.core.oracle_model import min_degree_edge_assignment
from repro.errors import ParameterError
from repro.generators import book_graph, complete_graph, cycle_graph, wheel_graph
from repro.graph import count_triangles, edge_degree_sum
from repro.streams import InMemoryEdgeStream
from repro.types import triangle_edges


class TestDegreeOracle:
    def test_degrees(self, wheel10):
        oracle = DegreeOracle(wheel10)
        assert oracle.degree(0) == 9
        assert oracle.degree(1) == 3

    def test_unknown_vertex_is_isolated(self, triangle):
        assert DegreeOracle(triangle).degree(77) == 0

    def test_query_counter(self, triangle):
        oracle = DegreeOracle(triangle)
        oracle.degree(0)
        oracle.edge_degree((0, 1))
        assert oracle.queries == 3

    def test_edge_degree(self, wheel10):
        assert DegreeOracle(wheel10).edge_degree((0, 1)) == 3

    def test_neighborhood_owner_tie_breaks_to_second(self, triangle):
        assert DegreeOracle(triangle).neighborhood_owner((1, 2)) == 2


class TestMinDegreeAssignment:
    def test_assigns_to_contained_edge(self, wheel10):
        oracle = DegreeOracle(wheel10)
        t = (0, 1, 2)
        assert min_degree_edge_assignment(oracle, t) in triangle_edges(t)

    def test_wheel_assigns_to_rim(self, wheel10):
        # Rim edge (1,2) has d_e = 3; spokes have d_e = 3 as well; the
        # canonical tie-break picks the lexicographically first edge.
        oracle = DegreeOracle(wheel10)
        assert min_degree_edge_assignment(oracle, (0, 1, 2)) == (0, 1)

    def test_deterministic(self, k4):
        oracle = DegreeOracle(k4)
        a1 = min_degree_edge_assignment(oracle, (0, 1, 2))
        a2 = min_degree_edge_assignment(oracle, (0, 1, 2))
        assert a1 == a2


class TestIdealEstimatorValidation:
    def test_copies_positive(self, triangle):
        with pytest.raises(ParameterError):
            IdealEstimator(DegreeOracle(triangle), copies=0, rng=random.Random(0))

    def test_groups_divide_copies(self, triangle):
        with pytest.raises(ParameterError, match="divide"):
            IdealEstimator(DegreeOracle(triangle), copies=10, rng=random.Random(0), median_groups=3)


class TestIdealEstimatorBehaviour:
    def test_triangle_free_estimates_zero(self, c6):
        stream = InMemoryEdgeStream.from_graph(c6)
        est = IdealEstimator(DegreeOracle(c6), copies=30, rng=random.Random(1))
        result = est.estimate(stream)
        assert result.estimate == 0.0

    def test_three_passes(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = IdealEstimator(DegreeOracle(wheel10), copies=10, rng=random.Random(1)).estimate(stream)
        assert result.passes_used == 3

    def test_d_e_sum_exact(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = IdealEstimator(DegreeOracle(wheel10), copies=5, rng=random.Random(1)).estimate(stream)
        assert result.d_e_sum == edge_degree_sum(wheel10)

    def test_raw_estimates_are_zero_or_d_e(self, wheel10):
        # Each copy outputs d_E * Y with Y in {0, 1}.
        stream = InMemoryEdgeStream.from_graph(wheel10)
        result = IdealEstimator(DegreeOracle(wheel10), copies=40, rng=random.Random(2)).estimate(stream)
        d_e = result.d_e_sum
        assert set(result.raw_estimates) <= {0.0, d_e}

    @pytest.mark.parametrize(
        "graph_factory,n_copies",
        [
            (lambda: wheel_graph(60), 1200),
            (lambda: book_graph(40), 1200),
            (lambda: complete_graph(12), 800),
        ],
    )
    def test_unbiasedness(self, graph_factory, n_copies):
        # The copy-mean should approach T within a few standard errors.
        graph = graph_factory()
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        est = IdealEstimator(DegreeOracle(graph), copies=n_copies, rng=random.Random(5))
        result = est.estimate(stream)
        moments = empirical_moments(result.raw_estimates)
        standard_error = moments.std / (n_copies ** 0.5)
        assert abs(moments.mean - t) <= 4 * standard_error + 1e-9

    def test_variance_bound(self):
        # Empirical variance must respect Var[X] <= d_E * T (Section 4),
        # with slack for sampling noise.
        graph = book_graph(40)
        stream = InMemoryEdgeStream.from_graph(graph)
        est = IdealEstimator(DegreeOracle(graph), copies=2000, rng=random.Random(8))
        result = est.estimate(stream)
        bound = ideal_estimator_variance_bound(graph)
        moments = empirical_moments(result.raw_estimates)
        assert moments.variance <= 1.3 * bound

    def test_median_of_means_estimate(self):
        graph = wheel_graph(40)
        t = count_triangles(graph)
        stream = InMemoryEdgeStream.from_graph(graph)
        est = IdealEstimator(
            DegreeOracle(graph), copies=3000, rng=random.Random(3), median_groups=5
        )
        result = est.estimate(stream)
        assert abs(result.estimate - t) / t < 0.35

    def test_deterministic_given_seed(self, wheel10):
        stream = InMemoryEdgeStream.from_graph(wheel10)
        r1 = IdealEstimator(DegreeOracle(wheel10), copies=20, rng=random.Random(9)).estimate(stream)
        r2 = IdealEstimator(DegreeOracle(wheel10), copies=20, rng=random.Random(9)).estimate(stream)
        assert r1.estimate == r2.estimate
        assert r1.raw_estimates == r2.raw_estimates
